"""Shared fixtures and builders for the benchmark suite.

Every benchmark prints the paper-shaped artifact it reproduces (run
pytest with ``-s`` to see the tables) and asserts the qualitative shape
the paper claims, so a regression in any algorithm fails the bench run
even before timings are compared.
"""

from __future__ import annotations

import random

from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.workload import WorkloadSpec, random_schema, random_transaction

__all__ = ["make_pair", "make_system"]


def make_pair(
    n_entities: int,
    seed: int = 0,
    n_sites: int = 4,
    cross_arc_p: float = 0.15,
) -> tuple[Transaction, Transaction]:
    """A random pair of distributed transactions over a shared pool.

    Both transactions access every entity of the pool so that the pair
    test's work grows with ``n_entities`` (node count = 2 entities per
    transaction per entity: 2·n nodes each).
    """
    rng = random.Random(seed)
    schema = random_schema(rng, n_entities, n_sites)
    spec = WorkloadSpec(
        entities_per_txn=(n_entities, n_entities),
        actions_per_entity=(0, 0),
        cross_arc_p=cross_arc_p,
    )
    pool = sorted(schema.entities)
    t1 = random_transaction("T1", rng, schema, spec, entities=pool)
    t2 = random_transaction("T2", rng, schema, spec, entities=pool)
    return t1, t2


def make_system(
    n_transactions: int,
    n_entities: int,
    seed: int = 0,
    shape: str = "random",
) -> TransactionSystem:
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=n_transactions,
        n_entities=n_entities,
        n_sites=3,
        entities_per_txn=(2, 3),
        actions_per_entity=(0, 0),
        shape=shape,
    )
    from repro.sim.workload import random_system

    return random_system(rng, spec)
