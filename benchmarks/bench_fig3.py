"""EXP-F3 — Figure 3: deadlock-freedom does not reduce to linear
extensions.

Reproduces: the Figure 3 pair of partial orders is deadlock-free while
a pair of their linear extensions deadlocks (so — unlike safety, cf.
Corollary 1 — deadlock-freedom cannot be checked extension-by-
extension). Benchmarks the exhaustive searches on both systems.
"""

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.pairs import check_pair
from repro.analysis.theorem1 import find_deadlock_prefix
from repro.paper.figures import figure3, figure3_extensions


def test_figure3_shape():
    partial = figure3()
    extensions = figure3_extensions()

    assert find_deadlock(partial) is None
    assert find_deadlock_prefix(partial) is None
    assert find_deadlock(extensions) is not None

    # Safety-and-DF together *is* extension-reducible; consistently, the
    # pair already fails Theorem 3 (no common first lock).
    assert not check_pair(partial[0], partial[1])

    print()
    print("[EXP-F3] partial orders: deadlock-free")
    print("[EXP-F3] extensions t1, t2: deadlock "
          f"({find_deadlock(extensions).describe()})")


def test_partial_orders_benchmark(benchmark):
    system = figure3()
    assert benchmark(find_deadlock, system) is None


def test_extensions_benchmark(benchmark):
    system = figure3_extensions()
    assert benchmark(find_deadlock, system) is not None
