"""EXP-COMMIT — atomic-commit protocols x policies x failure rates.

Gray & Lamport frame atomic commit as the defining coordination
problem of distributed transactions; this bench measures what the
commit path costs on a contended distributed workload:

* ``instant`` — the lock-conflict-only model: zero messages, zero
  commit latency, and (at failure rate 0) bit-identical results to the
  pre-subsystem simulator;
* ``two-phase`` — commit costs one round trip of messages per
  participant, and retained PREPARED locks convert contention into
  blocked-on-coordinator time;
* ``presumed-abort`` — same decisions at the same times, strictly
  fewer messages whenever rounds abort (the abort path is silent);
* ``paxos-commit`` — Gray & Lamport's non-blocking commit: the 2F+1
  acceptor bank doubles the message bill but masks coordinator
  crashes, so prepared holders stop stalling on a dead coordinator.

Crashes (failure injection) add abort cascades, blocked participants,
and coordinator-recovery delays on top.

Two matrices are declared as :class:`repro.experiments.SweepSpec`
grids and executed by the sweep runner — the same machinery `repro
sweep` exposes on the command line:

* EXP-COMMIT — protocol x failure-rate x policy x seed on a
  moderately contended workload (message bills, commit latency);
* EXP-FAILOVER — protocol x failure-rate on a hot, slow-network
  workload with long repairs, where coordinator crashes strand
  prepared holders with waiters queued behind them. This is the
  stall curve: paxos-commit's mean blocked-on-coordinator time sits
  strictly below two-phase and presumed-abort at every nonzero
  failure rate, flattening as takeovers absorb the stalls;
* EXP-RECOVERY — flush-cost x tail-loss on the failover workload
  under the durability model: retained-lock time per commit grows
  with both knobs, presumed-abort undercuts 2PC on reliable disks
  (no abort-decision forces), and Paxos Commit undercuts it on
  faulty ones (takeovers beat in-doubt inquiry stalls).
"""

import dataclasses
import random

import pytest

from repro.experiments import SweepSpec, run_sweep
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

POLICIES = ["wound-wait", "wait-die"]
PROTOCOLS = ["instant", "two-phase", "presumed-abort", "paxos-commit"]
FAILURE_RATES = [0.0, 0.02]
SEEDS = range(6)

WORKLOAD = WorkloadSpec(
    n_transactions=8,
    n_entities=6,
    n_sites=3,
    entities_per_txn=(2, 4),
    actions_per_entity=(0, 1),
    hotspot_skew=1.2,
    shape="random",
)

SPEC = SweepSpec(
    policies=tuple(POLICIES),
    protocols=tuple(PROTOCOLS),
    arrival_rates=(0.0,),  # closed batch: every cell drains WORKLOAD
    failure_rates=tuple(FAILURE_RATES),
    seeds=tuple(SEEDS),
    workload=WORKLOAD,
    base=SimulationConfig(
        network_delay=0.5,
        commit_timeout=6.0,
        repair_time=8.0,
        workload_seed=5,
    ),
)


def _workload(seed: int = 5):
    return random_system(random.Random(seed), WORKLOAD)


def _config(protocol: str, rate: float, seed: int) -> SimulationConfig:
    """A single cell's config — same base the sweep runs under."""
    return dataclasses.replace(
        SPEC.base, seed=seed, commit_protocol=protocol, failure_rate=rate
    )


def test_commit_report():
    system = _workload()
    total = len(system) * len(SEEDS)

    results = run_sweep(SPEC)  # parallel pool, deterministic per cell
    aggregates: dict[tuple[str, float, str], dict] = {}
    for cell, r in zip(SPEC.cells(), results):
        assert not r.truncated
        if r.committed == len(system):
            assert r.serializable is True
        agg = aggregates.setdefault(
            (cell.protocol, cell.failure_rate, cell.policy),
            dict(
                committed=0, aborts=0, crashes=0, msgs=0,
                exec_lat=0.0, commit_lat=0.0, blocked=0.0,
            ),
        )
        agg["committed"] += r.committed
        agg["aborts"] += r.aborts
        agg["crashes"] += r.crashes
        agg["msgs"] += r.commit_messages
        agg["exec_lat"] += r.mean_exec_latency / len(SEEDS)
        agg["commit_lat"] += r.mean_commit_latency / len(SEEDS)
        agg["blocked"] += r.prepared_block_time

    rows = [
        (protocol, rate, policy, aggregates[(protocol, rate, policy)])
        for protocol in PROTOCOLS
        for rate in FAILURE_RATES
        for policy in POLICIES
    ]

    print()
    print(f"[EXP-COMMIT] protocol x failure-rate x policy "
          f"({len(SEEDS)} seeds, committed out of {total}):")
    print(f"  {'protocol':15s} {'f-rate':6s} {'policy':11s} "
          f"{'commit':7s} {'aborts':6s} {'crash':5s} {'msgs':5s} "
          f"{'x-lat':>6s} {'c-lat':>6s} {'blocked':>8s}")
    for protocol, rate, policy, a in rows:
        print(f"  {protocol:15s} {rate:<6g} {policy:11s} "
              f"{a['committed']:3d}/{total:<3d} {a['aborts']:6d} "
              f"{a['crashes']:5d} {a['msgs']:5d} {a['exec_lat']:6.1f} "
              f"{a['commit_lat']:6.1f} {a['blocked']:8.1f}")

    by_key = {(p, r, pol): a for p, r, pol, a in rows}

    # Instant commit is free: no messages, no commit phase, no
    # blocked-on-coordinator time — and reproduces the plain simulator.
    for rate in FAILURE_RATES:
        for policy in POLICIES:
            a = by_key[("instant", rate, policy)]
            assert a["msgs"] == 0
            assert a["commit_lat"] == 0.0
            assert a["blocked"] == 0.0
    for policy in POLICIES:
        for seed in SEEDS:
            plain = simulate(
                system, policy,
                SimulationConfig(seed=seed, network_delay=0.5),
            )
            instant = simulate(
                system, policy, _config("instant", 0.0, seed)
            )
            assert plain.latencies == instant.latencies
            assert plain.end_time == instant.end_time

    # Two-phase commit pays messages, a commit phase, and (with site
    # crashes) nonzero prepared-blocked time.
    for policy in POLICIES:
        no_fail = by_key[("two-phase", 0.0, policy)]
        crashed = by_key[("two-phase", 0.02, policy)]
        assert no_fail["msgs"] > 0
        assert no_fail["commit_lat"] > 0.0
        assert crashed["crashes"] > 0
        assert crashed["blocked"] > 0.0
        assert crashed["commit_lat"] > 0.0

    # Presumed-abort never sends more messages than presumed-nothing.
    for rate in FAILURE_RATES:
        for policy in POLICIES:
            pa = by_key[("presumed-abort", rate, policy)]
            tp = by_key[("two-phase", rate, policy)]
            assert pa["msgs"] <= tp["msgs"]
            assert pa["committed"] == tp["committed"]

    # Paxos Commit at F=1 pays the acceptor bank in messages, not in
    # latency: with the coordinator up, majority is learned the moment
    # 2PC's coordinator would have collected the direct vote.
    for rate in FAILURE_RATES:
        for policy in POLICIES:
            px = by_key[("paxos-commit", rate, policy)]
            tp = by_key[("two-phase", rate, policy)]
            assert px["msgs"] > tp["msgs"]
            assert px["committed"] == tp["committed"]
    for policy in POLICIES:
        px0 = by_key[("paxos-commit", 0.0, policy)]
        tp0 = by_key[("two-phase", 0.0, policy)]
        assert px0["commit_lat"] == pytest.approx(tp0["commit_lat"])
        assert px0["blocked"] == pytest.approx(tp0["blocked"])


def test_commit_attribution_report():
    """Where the commit protocols spend the latency they charge.

    One representative cell per protocol under the latency-attribution
    engine: the conserved segment decomposition pins *which* segment a
    protocol's cost lands in — instant commit has no coordinator or
    commit-round time by construction, the voting protocols pay a
    commit round, and under crashes 2PC's stalls surface as
    blocked-on-coordinator time.
    """
    from repro.sim.observe import ObserveConfig
    from repro.sim.runtime import Simulator

    system = _workload()
    decompositions = {}
    for protocol in PROTOCOLS:
        for rate in FAILURE_RATES:
            config = dataclasses.replace(
                _config(protocol, rate, seed=0),
                observe=ObserveConfig(attribution=True),
            )
            sim = Simulator(system, "wound-wait", config)
            result = sim.run()
            summary = result.attribution
            assert summary["conservation"]["exact"] is True
            decompositions[(protocol, rate)] = summary["segments"]

    print()
    print("[EXP-COMMIT/attribution] latency segments by protocol "
          "(wound-wait, seed 0, totals over commits):")
    print(f"  {'protocol':15s} {'f-rate':6s} {'lock-wait':>9s} "
          f"{'coord':>7s} {'fanout':>7s} {'service':>8s} {'commit':>7s}")
    for (protocol, rate), seg in decompositions.items():
        print(f"  {protocol:15s} {rate:<6g} {seg['lock_wait']:9.1f} "
              f"{seg['coordinator']:7.1f} {seg['fanout']:7.1f} "
              f"{seg['service']:8.1f} {seg['commit']:7.1f}")

    for rate in FAILURE_RATES:
        # Instant commit: no commit round, no coordinator to wait on.
        instant = decompositions[("instant", rate)]
        assert instant["commit"] == 0.0
        assert instant["coordinator"] == 0.0
        # Every voting protocol pays a commit round.
        for protocol in ("two-phase", "presumed-abort", "paxos-commit"):
            assert decompositions[(protocol, rate)]["commit"] > 0.0
    # Crashes convert 2PC waits into blocked-on-coordinator time.
    assert (
        decompositions[("two-phase", 0.02)]["coordinator"]
        > decompositions[("two-phase", 0.0)]["coordinator"]
    )


# ----------------------------------------------------------------------
# EXP-FAILOVER — the stall curve: blocked-on-coordinator time and
# availability vs failure rate, all four protocols.
# ----------------------------------------------------------------------

# A hot workload over a slow network with long repairs: prepared
# windows are wide, waiters queue behind retained locks, and a
# crashed coordinator strands them for ~repair_time under 2PC but
# only ~commit_timeout + one phase-1 round trip under Paxos Commit.
FAILOVER_WORKLOAD = WorkloadSpec(
    n_transactions=10,
    n_entities=4,
    n_sites=3,
    entities_per_txn=(2, 4),
    actions_per_entity=(0, 1),
    hotspot_skew=2.0,
    shape="random",
)
FAILOVER_RATES = (0.0, 0.03, 0.06)
FAILOVER_SEEDS = tuple(range(10))

FAILOVER_SPEC = SweepSpec(
    policies=("wound-wait",),
    protocols=tuple(PROTOCOLS),
    arrival_rates=(0.0,),
    failure_rates=FAILOVER_RATES,
    seeds=FAILOVER_SEEDS,
    workload=FAILOVER_WORKLOAD,
    base=SimulationConfig(
        network_delay=1.0,
        commit_timeout=3.0,
        repair_time=25.0,
        workload_seed=5,
    ),
)


def test_commit_failover_sweep():
    results = run_sweep(FAILOVER_SPEC)
    n = len(FAILOVER_SEEDS)
    agg: dict[tuple[str, float], dict] = {}
    for cell, r in zip(FAILOVER_SPEC.cells(), results):
        assert not r.truncated
        a = agg.setdefault(
            (cell.protocol, cell.failure_rate),
            dict(blocked=0.0, avail=0.0, takeovers=0, committed=0,
                 msgs=0, acceptor=0),
        )
        a["blocked"] += r.prepared_block_time / n
        a["avail"] += r.availability / n
        a["takeovers"] += r.coordinator_takeovers
        a["committed"] += r.committed
        a["msgs"] += r.commit_messages
        a["acceptor"] += r.acceptor_messages

    print()
    print(f"[EXP-FAILOVER] stall curve ({n} seeds, wound-wait, "
          f"repair 25 >> commit timeout 3):")
    print(f"  {'protocol':15s} {'f-rate':6s} {'blocked':>8s} "
          f"{'avail':>6s} {'t-over':>6s} {'msgs':>5s} {'acc':>5s}")
    for rate in FAILOVER_RATES:
        for protocol in PROTOCOLS:
            a = agg[(protocol, rate)]
            print(f"  {protocol:15s} {rate:<6g} {a['blocked']:8.1f} "
                  f"{a['avail']:6.3f} {a['takeovers']:6d} "
                  f"{a['msgs']:5d} {a['acceptor']:5d}")

    for rate in FAILOVER_RATES:
        # Instant commit has no prepared window at any rate.
        assert agg[("instant", rate)]["blocked"] == 0.0
        # Every protocol drains the batch even under heavy crashing.
        for protocol in PROTOCOLS:
            expected = FAILOVER_WORKLOAD.n_transactions * n
            assert agg[(protocol, rate)]["committed"] == expected

    # Without failures the three voting protocols coincide exactly.
    assert agg[("paxos-commit", 0.0)]["blocked"] == pytest.approx(
        agg[("two-phase", 0.0)]["blocked"]
    )
    assert agg[("paxos-commit", 0.0)]["takeovers"] == 0

    # The headline: at every nonzero failure rate, takeovers fire and
    # paxos-commit's mean blocked-on-coordinator time sits strictly
    # below both 2PC variants — the stall curve flattens.
    for rate in FAILOVER_RATES:
        if rate == 0.0:
            continue
        px = agg[("paxos-commit", rate)]
        assert px["takeovers"] > 0
        assert px["blocked"] < agg[("two-phase", rate)]["blocked"]
        assert px["blocked"] < agg[("presumed-abort", rate)]["blocked"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_protocol_run_benchmark(benchmark, protocol):
    system = _workload()

    def run():
        return simulate(system, "wound-wait", _config(protocol, 0.0, 3))

    result = benchmark(run)
    assert result.committed == len(system)


@pytest.mark.parametrize(
    "protocol", ["two-phase", "presumed-abort", "paxos-commit"]
)
def test_protocol_crash_benchmark(benchmark, protocol):
    system = _workload()

    def run():
        return simulate(
            system, "wound-wait", _config(protocol, 0.02, 3)
        )

    result = benchmark(run)
    assert result.committed == len(system)


# ----------------------------------------------------------------------
# EXP-PARTITION — availability vs partition duration: committed
# throughput of 2PC/rowa vs Paxos Commit/quorum through a network cut.
# ----------------------------------------------------------------------

# A replicated workload over five sites with one site scripted out of
# the network for a varying window. ROWA writes need every replica, so
# the cut stalls them until the heal; a majority-quorum system keeps
# writing on the big side, and Paxos Commit's acceptor bank keeps
# deciding — committed throughput degrades gracefully instead of
# cratering for the whole episode.
PARTITION_WORKLOAD = WorkloadSpec(
    n_transactions=25,
    n_entities=10,
    n_sites=5,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.5,
    read_fraction=0.1,
    replication_factor=3,
)
PARTITION_DURATIONS = (0.0, 40.0, 80.0)
PARTITION_SEEDS = tuple(range(8))
PARTITION_CONFIGS = (
    ("two-phase", "rowa"),
    ("presumed-abort", "rowa"),
    ("paxos-commit", "rowa"),
    ("paxos-commit", "quorum"),
)


def _partition_config(protocol, replica, duration, seed):
    from repro.sim.network import NetworkConfig

    network = None
    if duration > 0:
        # A snappy failure detector: rounds touching the cut-off site
        # suspect it after ~one retry and reroute, instead of stalling
        # for a large fraction of the episode.
        network = NetworkConfig(
            partition_schedule=((10.0, duration, ("s0",)),),
            retransmit_timeout=1.0,
            suspect_timeout=4.0,
        )
    return SimulationConfig(
        seed=seed,
        workload=PARTITION_WORKLOAD,
        commit_protocol=protocol,
        replica_protocol=replica,
        network_delay=0.5,
        commit_timeout=3.0,
        workload_seed=5,
        network=network,
    )


def test_partition_availability_report():
    from repro.sim.runtime import Simulator

    system = random_system(random.Random(5), PARTITION_WORKLOAD)
    expected = len(system)
    start = 10.0

    throughput: dict[tuple[str, str, float], float] = {}
    in_window: dict[tuple[str, str, float], float] = {}
    for protocol, replica in PARTITION_CONFIGS:
        for duration in PARTITION_DURATIONS:
            committed = end_time = window = 0.0
            for seed in PARTITION_SEEDS:
                sim = Simulator(
                    system, "wound-wait",
                    _partition_config(protocol, replica, duration, seed),
                )
                r = sim.run()
                assert not r.truncated
                # Post-heal convergence: the full batch always commits.
                assert r.committed == expected
                if duration > 0:
                    assert r.partitions == 1
                committed += r.committed
                end_time += r.end_time
                window += sum(
                    1 for inst in sim._instances
                    if start <= inst.commit_time <= start + duration
                )
            throughput[(protocol, replica, duration)] = (
                committed / end_time
            )
            in_window[(protocol, replica, duration)] = (
                window / (duration * len(PARTITION_SEEDS))
                if duration > 0 else 0.0
            )

    print()
    print(f"[EXP-PARTITION] availability vs partition duration "
          f"({len(PARTITION_SEEDS)} seeds, factor-3 replication, one "
          f"site cut off at t=10; whole-run and in-window committed "
          f"throughput):")
    header = " ".join(
        f"{d:>8g} {'in-win':>7s}" for d in PARTITION_DURATIONS
    )
    print(f"  {'protocol':15s} {'replica':8s} {header}")
    for protocol, replica in PARTITION_CONFIGS:
        row = " ".join(
            f"{throughput[(protocol, replica, d)]:8.4f} "
            f"{in_window[(protocol, replica, d)]:7.4f}"
            for d in PARTITION_DURATIONS
        )
        print(f"  {protocol:15s} {replica:8s} {row}")

    # The headline: while the cut is up, the majority-quorum Paxos
    # Commit system keeps committing at a strictly higher rate than
    # either all-replica 2PC variant — ROWA writes need the cut-off
    # replica and 2PC cannot decide without every participant, so
    # their in-window availability craters; graceful degradation.
    for duration in PARTITION_DURATIONS:
        if duration == 0.0:
            continue
        quorum = in_window[("paxos-commit", "quorum", duration)]
        assert quorum > 0.0
        assert quorum > in_window[("two-phase", "rowa", duration)]
        assert quorum > in_window[("presumed-abort", "rowa", duration)]

    # Longer cuts hurt the ROWA stacks\' whole-run throughput
    # monotonically.
    for protocol, replica in (("two-phase", "rowa"),
                              ("presumed-abort", "rowa")):
        t0 = throughput[(protocol, replica, PARTITION_DURATIONS[1])]
        t1 = throughput[(protocol, replica, PARTITION_DURATIONS[2])]
        assert t1 <= t0


# ----------------------------------------------------------------------
# EXP-RECOVERY — lock retention under durability faults: how long
# prepared holders sit on their locks when forces cost real time and
# crashed disks lose log records.
# ----------------------------------------------------------------------

# The failover workload again (hot, slow network, repairs 25 >> commit
# timeout 3), now with a durability model: every force point stretches
# the prepared window by flush_time, and a crash that eats the newest
# log record (tail loss) turns a would-be fast replay into an in-doubt
# inquiry round — or re-executes the attempt outright. The metric is
# retained-lock time per committed transaction: the price waiters pay
# for the holder's durability.
RECOVERY_FLUSHES = (0.5, 2.0)
RECOVERY_TAIL_RATES = (0.0, 0.3)
RECOVERY_PROTOCOLS = ("two-phase", "presumed-abort", "paxos-commit")
RECOVERY_SEEDS = tuple(range(10))


def _recovery_spec(flush: float, tail: float) -> SweepSpec:
    from repro.sim.durability import DurabilityConfig

    return SweepSpec(
        policies=("wound-wait",),
        protocols=RECOVERY_PROTOCOLS,
        arrival_rates=(0.0,),
        failure_rates=(0.03,),
        seeds=RECOVERY_SEEDS,
        workload=FAILOVER_WORKLOAD,
        base=SimulationConfig(
            network_delay=1.0,
            commit_timeout=3.0,
            repair_time=25.0,
            workload_seed=5,
            durability=DurabilityConfig(
                flush_time=flush, tail_loss_rate=tail
            ),
        ),
    )


def test_commit_recovery_sweep():
    n = len(RECOVERY_SEEDS)
    retention: dict[tuple[str, float, float], float] = {}
    replays = resolved = 0
    for flush in RECOVERY_FLUSHES:
        for tail in RECOVERY_TAIL_RATES:
            spec = _recovery_spec(flush, tail)
            agg = {p: dict(retained=0.0, committed=0) for p in
                   RECOVERY_PROTOCOLS}
            for cell, r in zip(spec.cells(), run_sweep(spec)):
                assert not r.truncated
                # Crashes, bad disks, slow flushes: the batch still
                # drains — recovery always converges.
                assert r.committed == r.total
                assert r.log_forces > 0
                a = agg[cell.protocol]
                a["retained"] += r.retained_lock_time
                a["committed"] += r.committed
                replays += r.log_replays
                resolved += r.in_doubt_resolved
            for protocol, a in agg.items():
                retention[(protocol, flush, tail)] = (
                    a["retained"] / a["committed"]
                )

    print()
    print(f"[EXP-RECOVERY] retained-lock time per commit ({n} seeds, "
          f"failure rate 0.03, repair 25; flush x tail-loss grid):")
    header = " ".join(
        f"f={f:g}/t={t:g}"
        for f in RECOVERY_FLUSHES for t in RECOVERY_TAIL_RATES
    )
    print(f"  {'protocol':15s} {header}")
    for protocol in RECOVERY_PROTOCOLS:
        row = " ".join(
            f"{retention[(protocol, f, t)]:9.2f}"
            for f in RECOVERY_FLUSHES for t in RECOVERY_TAIL_RATES
        )
        print(f"  {protocol:15s} {row}")

    # The battery actually exercised crash recovery, not just forces.
    assert replays > 0
    assert resolved > 0

    for protocol in RECOVERY_PROTOCOLS:
        # Slower disks stretch the prepared window: retention grows
        # with flush_time at every tail-loss rate...
        for tail in RECOVERY_TAIL_RATES:
            assert (
                retention[(protocol, RECOVERY_FLUSHES[1], tail)]
                > retention[(protocol, RECOVERY_FLUSHES[0], tail)]
            )
        # ...and a disk that loses its newest record on crash turns
        # cheap replays into inquiry rounds and re-executions.
        for flush in RECOVERY_FLUSHES:
            assert (
                retention[(protocol, flush, RECOVERY_TAIL_RATES[1])]
                > retention[(protocol, flush, RECOVERY_TAIL_RATES[0])]
            )

    # Presumed-abort's silent aborts skip the abort-decision force, so
    # on a reliable disk it strictly undercuts plain 2PC at every
    # flush cost (with tail loss the executions diverge too much for a
    # stable per-cell ordering).
    for flush in RECOVERY_FLUSHES:
        assert (
            retention[("presumed-abort", flush, 0.0)]
            < retention[("two-phase", flush, 0.0)]
        )

    # Paxos Commit wins exactly where the disk is the problem: with
    # tail loss, a crashed 2PC coordinator strands in-doubt holders on
    # inquiry rounds while takeovers keep deciding — but on a reliable
    # slow disk its acceptor-bank force bill can outweigh the stalls
    # it saves.
    for flush in RECOVERY_FLUSHES:
        assert (
            retention[("paxos-commit", flush, RECOVERY_TAIL_RATES[1])]
            < retention[("two-phase", flush, RECOVERY_TAIL_RATES[1])]
        )

    # The combined headline: at every grid point at least one of the
    # optimised protocols beats plain 2PC — each one where its
    # optimisation targets the dominant durability cost.
    for flush in RECOVERY_FLUSHES:
        for tail in RECOVERY_TAIL_RATES:
            assert min(
                retention[("presumed-abort", flush, tail)],
                retention[("paxos-commit", flush, tail)],
            ) < retention[("two-phase", flush, tail)]
