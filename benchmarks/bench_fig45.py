"""EXP-F45 — Figures 4 and 5: the Theorem 2 reduction, live.

Reproduces: SAT <=> deadlock on the Figure 5 example and the smallest
UNSAT instance; certificate construction and verification in both
directions; encoder size scaling (linear in the formula). Benchmarks
the encoder and both certificate directions.
"""

import random

import pytest

from repro.analysis.bipartite import find_lock_only_deadlock_prefix
from repro.core.reduction import reduction_graph
from repro.paper.figures import figure5_formula
from repro.reductions.cnf import CnfFormula, random_three_sat_prime
from repro.reductions.encoding import (
    assignment_to_prefix,
    decode_assignment,
    encode_formula,
    expected_cycle,
    verify_cycle,
)
from repro.reductions.solvers import brute_force_satisfiable, dpll_solve


def test_equivalence_shape():
    """SAT <=> deadlock prefix on both polarity cases."""
    sat_formula = figure5_formula()
    unsat_formula = CnfFormula.from_lists([["a"], ["a"], ["~a"]])

    # SAT side: certificate + independent scan.
    assignment = brute_force_satisfiable(sat_formula)
    assert assignment is not None
    system = encode_formula(sat_formula)
    prefix = assignment_to_prefix(sat_formula, system, assignment)
    cycle = expected_cycle(sat_formula, system, assignment)
    assert verify_cycle(reduction_graph(prefix), cycle)
    decoded = decode_assignment(sat_formula, system, cycle)
    assert sat_formula.evaluate(decoded)
    assert find_lock_only_deadlock_prefix(system) is not None

    # UNSAT side: no deadlock prefix at all.
    assert brute_force_satisfiable(unsat_formula) is None
    unsat_system = encode_formula(unsat_formula)
    assert find_lock_only_deadlock_prefix(unsat_system) is None

    print()
    print(f"[EXP-F45] {sat_formula}: SAT -> deadlock prefix verified")
    print(f"[EXP-F45] {unsat_formula}: UNSAT -> deadlock-free verified")


def test_random_sat_instances_certificates():
    """Certificates verify on random satisfiable 3SAT' instances."""
    rng = random.Random(99)
    checked = 0
    for _ in range(10):
        formula = random_three_sat_prime(rng.randint(3, 6), rng)
        assignment = dpll_solve(formula)
        if assignment is None:
            continue
        system = encode_formula(formula)
        prefix = assignment_to_prefix(formula, system, assignment)
        cycle = expected_cycle(formula, system, assignment)
        assert verify_cycle(reduction_graph(prefix), cycle)
        assert formula.evaluate(decode_assignment(formula, system, cycle))
        checked += 1
    assert checked >= 5
    print(f"\n[EXP-F45] verified forward+backward certificates on "
          f"{checked} random instances")


@pytest.mark.parametrize("n", [3, 6, 9, 12])
def test_encoder_scaling(benchmark, n):
    """Encoder output is linear in the formula: 2(2n + 3n) nodes/txn."""
    formula = random_three_sat_prime(n, random.Random(n))
    system = benchmark(encode_formula, formula)
    assert system[0].node_count == 2 * (2 * n + 3 * n)


def test_forward_certificate_benchmark(benchmark):
    formula = figure5_formula()
    system = encode_formula(formula)
    assignment = brute_force_satisfiable(formula)

    def forward():
        prefix = assignment_to_prefix(formula, system, assignment)
        cycle = expected_cycle(formula, system, assignment)
        assert verify_cycle(reduction_graph(prefix), cycle)
        return cycle

    cycle = benchmark(forward)
    assert cycle


def test_decode_benchmark(benchmark):
    formula = figure5_formula()
    system = encode_formula(formula)
    assignment = brute_force_satisfiable(formula)
    cycle = expected_cycle(formula, system, assignment)
    decoded = benchmark(decode_assignment, formula, system, cycle)
    assert formula.evaluate(decoded)
