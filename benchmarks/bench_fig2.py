"""EXP-F2 — Figure 2: Tirri's polynomial test misses a real deadlock.

Reproduces: two transactions with identical syntax and no two-entity
wait pattern (so Tirri's algorithm declares them deadlock-free) that
nevertheless deadlock through a four-entity reduction cycle. Benchmarks
the (fast, wrong) Tirri test against the (exhaustive, right) searches.
"""

from repro.analysis.bipartite import find_lock_only_deadlock_prefix
from repro.analysis.exhaustive import find_deadlock
from repro.analysis.tirri import find_two_entity_pattern, tirri_check_pair
from repro.core.reduction import reduction_graph
from repro.paper.figures import figure2, figure2_prefix


def test_figure2_shape():
    system = figure2()
    t1, t2 = system[0], system[1]
    assert t1.ops == t2.ops and t1.dag == t2.dag

    tirri = tirri_check_pair(t1, t2)
    assert tirri  # Tirri: "deadlock-free"
    assert find_two_entity_pattern(t1, t2) is None

    truth = find_deadlock(system)
    assert truth is not None  # reality: deadlock

    prefix = figure2_prefix(system)
    cycle = reduction_graph(prefix).find_cycle()
    entities = {system[g.txn].ops[g.node].entity for g in cycle}
    assert entities == {"v", "t", "z", "w"}

    print()
    print("[EXP-F2] Tirri verdict: deadlock-free (WRONG)")
    print(
        "[EXP-F2] actual 4-entity cycle: "
        + " -> ".join(system.describe_node(g) for g in cycle)
    )


def test_tirri_test_benchmark(benchmark):
    system = figure2()
    verdict = benchmark(tirri_check_pair, system[0], system[1])
    assert verdict  # fast but unsound


def test_exhaustive_truth_benchmark(benchmark):
    system = figure2()
    witness = benchmark(find_deadlock, system)
    assert witness is not None


def test_lock_only_scan_benchmark(benchmark):
    system = figure2()
    witness = benchmark(find_lock_only_deadlock_prefix, system)
    assert witness is not None
