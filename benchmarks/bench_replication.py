"""EXP-REPL — replication: throughput, abort rate, and availability.

Two questions, one grid:

1. **What does replication cost when nothing fails?** Throughput and
   abort rate vs replication factor: every extra copy adds exclusive
   write locks (more conflict surface), so write-heavy workloads pay
   for fault tolerance even at failure rate 0.

2. **What does each replica-control protocol buy when sites crash?**
   The availability metric (fraction of time an entity's read *and*
   write rule were satisfiable, entity-averaged) separates the three
   regimes the literature predicts (Gray & Lamport, *Consensus on
   Transaction Commit*; Sutra & Shapiro, *Fault-Tolerant Partial
   Replication*):

   * ``rowa`` — write-all collapses: one crashed replica blocks every
     writer of its entities;
   * ``rowa-available`` — writes route around crashes, but recovering
     sites must catch up before serving reads (the anti-entropy window
     here is deliberately slow, ``catchup_time = 3 x repair_time``), so
     read availability pays for the write availability;
   * ``quorum`` — majority quorums mask every minority failure without
     reconfiguration: the highest full-service availability, bought
     with majority-sized read locking.

The CI assertion pins exactly the ordering above:
``quorum > rowa-available > rowa`` under failures, and everything at
1.0 without them.
"""

import pytest

from repro.experiments import SweepSpec, run_cell, run_sweep
from repro.experiments.sweep import SweepCell
from repro.sim.runtime import SimulationConfig
from repro.sim.workload import WorkloadSpec

PROTOCOLS = ("rowa", "rowa-available", "quorum")
FACTORS = (1, 2, 3)
FAILURE_RATES = (0.0, 0.04)
SEEDS = (0, 1, 2)


def _spec(factor: int, failure_rate: float) -> SweepSpec:
    return SweepSpec(
        policies=("wound-wait",),
        protocols=("instant",),
        replica_protocols=PROTOCOLS,
        arrival_rates=(0.5,),
        failure_rates=(failure_rate,),
        seeds=SEEDS,
        workload=WorkloadSpec(
            n_entities=18,
            n_sites=6,
            entities_per_txn=(2, 3),
            read_fraction=0.7,
            replication_factor=factor,
        ),
        base=SimulationConfig(
            max_transactions=150,
            warmup_time=40.0,
            workload_seed=5,
            network_delay=0.5,
            repair_time=10.0,
            catchup_time=30.0,
        ),
    )


def _aggregate(spec: SweepSpec) -> dict[str, dict[str, float]]:
    results = run_sweep(spec, parallel=True)
    agg: dict[str, dict[str, float]] = {}
    for cell, r in zip(spec.cells(), results):
        a = agg.setdefault(
            cell.replica_protocol,
            dict(avail=0.0, thruput=0.0, aborts=0.0, committed=0.0,
                 p95=0.0),
        )
        a["avail"] += r.availability / len(SEEDS)
        a["thruput"] += r.steady_throughput / len(SEEDS)
        a["aborts"] += r.aborts / len(SEEDS)
        a["committed"] += r.committed / len(SEEDS)
        a["p95"] += r.latency_percentiles("total")["p95"] / len(SEEDS)
    return agg


def test_replication_report():
    print()
    print(
        "[EXP-REPL] protocol x replication factor x failure rate "
        f"({len(SEEDS)} seeds, 150 arrivals per cell):"
    )
    print(
        f"  {'protocol':15s} {'factor':>6s} {'f-rate':>6s} "
        f"{'committed':>9s} {'thruput':>8s} {'abort/commit':>12s} "
        f"{'p95':>7s} {'avail':>6s}"
    )
    table: dict[tuple[str, int, float], dict[str, float]] = {}
    for factor in FACTORS:
        for failure_rate in FAILURE_RATES:
            agg = _aggregate(_spec(factor, failure_rate))
            for protocol in PROTOCOLS:
                a = agg[protocol]
                table[(protocol, factor, failure_rate)] = a
                rate = a["aborts"] / max(a["committed"], 1.0)
                print(
                    f"  {protocol:15s} {factor:6d} {failure_rate:6.2f} "
                    f"{a['committed']:9.0f} {a['thruput']:8.3f} "
                    f"{rate:12.1f} {a['p95']:7.1f} {a['avail']:6.3f}"
                )

    # Without failures every protocol is fully available (up to float
    # accumulation in the time integral)...
    for protocol in PROTOCOLS:
        for factor in FACTORS:
            assert table[(protocol, factor, 0.0)]["avail"] >= 1.0 - 1e-9
    # ...and at factor 1 all protocols degenerate to the same single
    # copy runs (identical cells, identical metrics).
    for failure_rate in FAILURE_RATES:
        base = table[("rowa", 1, failure_rate)]
        for protocol in PROTOCOLS[1:]:
            other = table[(protocol, 1, failure_rate)]
            assert other["thruput"] == base["thruput"]
            assert other["aborts"] == base["aborts"]
            assert other["p95"] == base["p95"]

    # Replication is not free: at failure rate 0 the write fan-out to
    # 3 copies pays extra network hops, so write-all latency rises with
    # the replication factor.
    assert (
        table[("rowa", 3, 0.0)]["p95"]
        > table[("rowa", 1, 0.0)]["p95"]
    )

    # The headline: under failures, full-service availability orders
    # quorum > rowa-available > rowa at replication factor 3.
    rowa = table[("rowa", 3, 0.04)]["avail"]
    rowa_a = table[("rowa-available", 3, 0.04)]["avail"]
    quorum = table[("quorum", 3, 0.04)]["avail"]
    print(
        f"  availability @ factor 3, f-rate 0.04: quorum={quorum:.3f} "
        f"> rowa-available={rowa_a:.3f} > rowa={rowa:.3f}"
    )
    assert quorum > rowa_a > rowa


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_replication_benchmark(benchmark, protocol):
    spec = _spec(3, 0.04)
    cell = SweepCell("wound-wait", "instant", 0.5, 0.04, 0, protocol)

    def run():
        return run_cell(spec, cell)

    result = benchmark(run)
    assert result.total == 150
    # Heavy failure injection can strand the last few readers past the
    # horizon; the bulk must still commit.
    assert result.committed >= 140
