"""EXP-OPEN — throughput vs offered load in the open-system engine.

The closed-batch experiments answer "how fast does this batch drain";
an open system answers the capacity question instead: keep Poisson
arrivals coming and watch steady-state throughput track the offered
load until contention saturates the lock tables (cf. *Coordination
Avoidance in Database Systems* on throughput collapse under
contention). The curve per policy:

* below saturation, throughput ~= arrival rate and p50 latency sits
  near the uncontended service time;
* past saturation, throughput flattens while latency and the abort
  rate blow up — wound-wait and wait-die pay the overload in aborts
  rather than deadlock.
"""

import pytest

from repro.experiments import SweepSpec, run_sweep
from repro.sim.runtime import SimulationConfig
from repro.sim.workload import WorkloadSpec

POLICIES = ("wound-wait", "wait-die")
RATES = (0.2, 0.4, 1.6)  # stable, near-capacity, overloaded
SEEDS = (0, 1)

SPEC = SweepSpec(
    policies=POLICIES,
    protocols=("instant",),
    arrival_rates=RATES,
    failure_rates=(0.0,),
    seeds=SEEDS,
    workload=WorkloadSpec(
        n_entities=24,
        n_sites=4,
        entities_per_txn=(2, 3),
        actions_per_entity=(0, 1),
        hotspot_skew=0.6,
    ),
    base=SimulationConfig(
        max_transactions=250, warmup_time=60.0, workload_seed=7
    ),
)


def test_open_system_report():
    results = run_sweep(SPEC, parallel=False)
    cells = SPEC.cells()

    curve: dict[tuple[str, float], dict[str, float]] = {}
    for cell, r in zip(cells, results):
        # Every cell drains completely: arrivals stop at the budget and
        # the backlog commits before the horizon.
        assert not r.truncated
        assert r.committed == r.total == 250
        p = r.latency_percentiles("total")
        assert p["p50"] <= p["p95"] <= p["p99"]
        agg = curve.setdefault(
            (cell.policy, cell.arrival_rate),
            dict(thruput=0.0, p50=0.0, p95=0.0, aborts=0),
        )
        agg["thruput"] += r.steady_throughput / len(SEEDS)
        agg["p50"] += p["p50"] / len(SEEDS)
        agg["p95"] += p["p95"] / len(SEEDS)
        agg["aborts"] += r.aborts

    print()
    print(f"[EXP-OPEN] throughput vs offered load "
          f"({len(SEEDS)} seeds, 250 arrivals per cell):")
    print(f"  {'policy':11s} {'rate':>5s} {'thruput':>8s} "
          f"{'p50':>7s} {'p95':>7s} {'aborts':>7s}")
    for (policy, rate), agg in curve.items():
        print(f"  {policy:11s} {rate:5.1f} {agg['thruput']:8.3f} "
              f"{agg['p50']:7.1f} {agg['p95']:7.1f} {agg['aborts']:7d}")

    for policy in POLICIES:
        low = curve[(policy, 0.2)]
        mid = curve[(policy, 0.4)]
        high = curve[(policy, 1.6)]
        # Below saturation throughput tracks the offered load...
        assert mid["thruput"] > low["thruput"]
        # ...past saturation it cannot (the overloaded cell commits at
        # well under half its offered rate)...
        assert high["thruput"] < 0.5 * 1.6
        # ...and the overload is paid in latency and aborts.
        assert high["p50"] > 4 * low["p50"]
        assert high["aborts"] > 10 * low["aborts"]


def test_open_system_attribution_report():
    """How the latency mix shifts as offered load crosses capacity.

    The attribution engine decomposes the same curve the report above
    prints: at a stable rate, latency is mostly service; overloaded,
    lock-wait and admission queueing dominate and wasted (aborted)
    work blows up — with the hotspot named.
    """
    import dataclasses

    from repro.core.system import TransactionSystem
    from repro.sim.observe import ObserveConfig
    from repro.sim.runtime import Simulator

    shares = {}
    for rate in (0.2, 1.6):
        config = dataclasses.replace(
            SPEC.base,
            seed=0,
            arrival_rate=rate,
            workload=SPEC.workload,
            observe=ObserveConfig(attribution=True),
        )
        sim = Simulator(TransactionSystem([]), "wound-wait", config)
        summary = sim.run().attribution
        assert summary["conservation"]["exact"] is True
        segments = summary["segments"]
        total = sum(segments.values())
        shares[rate] = {
            "queueing": (
                (segments["admission"] + segments["lock_wait"]) / total
            ),
            "wasted": summary["aborts"]["wasted_fraction"],
            "hotspot": summary["hotspot"],
        }

    print()
    print("[EXP-OPEN/attribution] latency mix vs offered load "
          "(wound-wait, seed 0):")
    print(f"  {'rate':>5s} {'queueing':>9s} {'wasted':>7s}  hotspot")
    for rate, entry in shares.items():
        hot = entry["hotspot"]
        label = (
            f"{hot['entity']} ({hot['share']:.0%})" if hot else "-"
        )
        print(f"  {rate:5.1f} {entry['queueing']:9.1%} "
              f"{entry['wasted']:7.1%}  {label}")

    # Overload shows up as queueing share and wasted work, not as
    # slower service.
    assert shares[1.6]["queueing"] > shares[0.2]["queueing"]
    assert shares[1.6]["wasted"] > shares[0.2]["wasted"]
    assert shares[1.6]["hotspot"] is not None


@pytest.mark.parametrize("policy", POLICIES)
def test_open_system_benchmark(benchmark, policy):
    from repro.experiments import run_cell
    from repro.experiments.sweep import SweepCell

    cell = SweepCell(policy, "instant", 0.8, 0.0, 0)

    def run():
        return run_cell(SPEC, cell)

    result = benchmark(run)
    assert result.committed == result.total == 250
