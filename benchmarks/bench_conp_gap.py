"""EXP-CONP — the Theorem 2 complexity gap, measured.

Deciding deadlock-freedom of an encoded pair requires exponential work
(the lock-only scan over holder assignments), while *verifying* a
deadlock certificate — the NP side of the coNP-completeness — is
polynomial. The benchmark shows certificate verification staying flat
as the scan blows up.
"""

import random

import pytest

from repro.analysis.bipartite import find_lock_only_deadlock_prefix
from repro.core.reduction import reduction_graph
from repro.reductions.cnf import CnfFormula, random_three_sat_prime
from repro.reductions.encoding import (
    assignment_to_prefix,
    encode_formula,
    expected_cycle,
    verify_cycle,
)
from repro.reductions.solvers import dpll_solve


def _sat_formula(n: int):
    rng = random.Random(n * 17 + 1)
    for _ in range(50):
        formula = random_three_sat_prime(n, rng)
        if dpll_solve(formula) is not None:
            return formula
    raise RuntimeError("no satisfiable instance found")


@pytest.mark.parametrize("n", [3, 5, 8, 12])
def test_certificate_verification_polynomial(benchmark, n):
    formula = _sat_formula(n)
    system = encode_formula(formula)
    assignment = dpll_solve(formula)

    def verify():
        prefix = assignment_to_prefix(formula, system, assignment)
        cycle = expected_cycle(formula, system, assignment)
        assert verify_cycle(reduction_graph(prefix), cycle)

    benchmark(verify)


def test_decision_scan_exponential_unsat(benchmark):
    """The UNSAT side must scan everything: the honest coNP cost."""
    formula = CnfFormula.from_lists([["a"], ["a"], ["~a"]])
    system = encode_formula(formula)
    witness = benchmark.pedantic(
        find_lock_only_deadlock_prefix, args=(system,),
        rounds=3, iterations=1,
    )
    assert witness is None


def test_decision_scan_sat_side(benchmark):
    """On SAT instances the scan exits at the first cyclic assignment
    (still vastly slower than certificate checking)."""
    from repro.paper.figures import figure5_formula

    formula = figure5_formula()
    system = encode_formula(formula)
    witness = benchmark.pedantic(
        find_lock_only_deadlock_prefix, args=(system,),
        rounds=1, iterations=1,
    )
    assert witness is not None
