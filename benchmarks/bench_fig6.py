"""EXP-F6 — Figure 6: three copies deadlock, two copies cannot.

Reproduces: the boundary showing Theorem 5 (d copies <=> 2 copies) is
specific to safety-AND-deadlock-freedom — for deadlock-freedom alone
the equivalence fails at d = 3. Benchmarks the exhaustive search on
both copy counts.
"""

from repro.analysis.copies import check_copies
from repro.analysis.exhaustive import find_deadlock
from repro.core.reduction import is_deadlock_partial_schedule
from repro.core.system import TransactionSystem
from repro.paper.figures import figure6


def test_figure6_shape():
    t = figure6()
    two = TransactionSystem.of_copies(t, 2)
    three = TransactionSystem.of_copies(t, 3)

    assert find_deadlock(two) is None
    witness = find_deadlock(three)
    assert witness is not None
    assert is_deadlock_partial_schedule(witness)

    # Theorem 5 is about safe+DF, which already fails at two copies —
    # no contradiction.
    assert not check_copies(t, 2)

    print()
    print("[EXP-F6] 2 copies: deadlock-free")
    print(f"[EXP-F6] 3 copies: {witness.describe()}")


def test_two_copies_benchmark(benchmark):
    system = TransactionSystem.of_copies(figure6(), 2)
    assert benchmark(find_deadlock, system) is None


def test_three_copies_benchmark(benchmark):
    system = TransactionSystem.of_copies(figure6(), 3)
    assert benchmark(find_deadlock, system) is not None
