"""EXP-T4 — Theorem 4 / Corollary 4: fixed k is polynomial, the
constant is exponential in k.

Benchmarks the Theorem 4 checker for k = 3..6 transactions (input size
held proportional) and the exhaustive Lemma 1 oracle at k = 3 for the
gap. Correctness is cross-validated against the oracle at small sizes.
"""

import pytest

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.fixed_k import check_system

from conftest import make_system


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_fixed_k_scaling(benchmark, k):
    system = make_system(k, n_entities=k + 2, seed=k)
    benchmark(check_system, system)


@pytest.mark.parametrize("n_entities", [6, 12, 24, 48])
def test_fixed_k_input_scaling(benchmark, n_entities):
    """k fixed at 4; the input (entities per transaction) grows."""
    system = make_system(4, n_entities=n_entities, seed=11)
    benchmark(check_system, system)


def test_exhaustive_baseline_k3(benchmark):
    system = make_system(3, n_entities=5, seed=3)
    verdict = benchmark.pedantic(
        is_safe_and_deadlock_free,
        args=(system, 500_000),
        rounds=2,
        iterations=1,
    )
    assert bool(verdict) == bool(check_system(system))


def test_correctness_sweep():
    mismatches = []
    for seed in range(12):
        system = make_system(3, n_entities=5, seed=seed)
        fast = bool(check_system(system))
        truth = bool(is_safe_and_deadlock_free(system, 500_000))
        if fast != truth:
            mismatches.append(seed)
    assert not mismatches
    print("\n[EXP-T4] Theorem 4 = oracle on 12 random k=3 systems")
