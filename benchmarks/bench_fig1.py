"""EXP-F1 — Figure 1: the three-transaction deadlock prefix.

Reproduces: the prefix of Fig. 1d is a deadlock prefix whose reduction
graph (Fig. 1e) contains the quoted cycle through L1z, U1y, L2y, U2x,
L3x, U3z. Benchmarks the reduction-graph construction + cycle test —
the core Theorem 1 machinery.
"""

from repro.analysis.exhaustive import find_deadlock
from repro.core.reduction import (
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.paper.figures import figure1, figure1_prefix


def test_figure1_shape():
    """The paper's asserted properties, end to end."""
    system = figure1()
    prefix = figure1_prefix(system)

    schedule = prefix_has_schedule(prefix)
    assert schedule is not None
    assert schedule.lock_sequence("x") == [0, 1]  # Fig 1d arc U1x->L2x

    graph = reduction_graph(prefix)
    cycle = graph.find_cycle()
    assert cycle is not None
    labels = {system.describe_node(g) for g in cycle}
    assert {"L1z", "U1y", "L2y", "L3x", "U3z"} <= labels
    assert is_deadlock_prefix(prefix)
    assert find_deadlock(system) is not None

    print()
    print("[EXP-F1] Figure 1 reduction-graph cycle:")
    print("  " + " -> ".join(system.describe_node(g) for g in cycle))


def test_reduction_graph_cycle_benchmark(benchmark):
    system = figure1()
    prefix = figure1_prefix(system)

    def build_and_check():
        return reduction_graph(prefix).find_cycle()

    cycle = benchmark(build_and_check)
    assert cycle is not None


def test_theorem1_search_benchmark(benchmark):
    """Full deadlock-prefix search over the reachable state space."""
    from repro.analysis.theorem1 import find_deadlock_prefix

    system = figure1()
    witness = benchmark(find_deadlock_prefix, system)
    assert witness is not None
