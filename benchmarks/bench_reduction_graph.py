"""EXP-RED — reduction-graph construction cost (Theorem 1 machinery).

R(A') is the workhorse of every deadlock argument in the paper; this
bench measures its construction + cycle test across growing system
sizes and prefix depths.
"""

import random

import pytest

from repro.core.prefix import SystemPrefix
from repro.core.reduction import reduction_graph

from conftest import make_system


def _random_consistent_prefix(system, seed: int) -> SystemPrefix:
    """A random lock-consistent prefix obtained by simulating a legal
    partial execution."""
    rng = random.Random(seed)
    from repro.analysis.exhaustive import _enabled_moves, _holders

    masks = tuple([0] * len(system))
    for _ in range(system.total_nodes() // 2):
        holders = _holders(system, masks)
        moves = _enabled_moves(system, masks, holders)
        if not moves:
            break
        gnode = rng.choice(moves)
        updated = list(masks)
        updated[gnode.txn] |= 1 << gnode.node
        masks = tuple(updated)
    return SystemPrefix(system, masks)


@pytest.mark.parametrize("k,n_entities", [(3, 6), (5, 10), (8, 16),
                                          (12, 24)])
def test_reduction_graph_scaling(benchmark, k, n_entities):
    system = make_system(k, n_entities, seed=k)
    prefix = _random_consistent_prefix(system, seed=k)

    def build():
        return reduction_graph(prefix)

    graph = benchmark(build)
    assert len(graph) <= system.total_nodes()


def test_cycle_check_on_deep_prefix(benchmark):
    system = make_system(6, 10, seed=42)
    prefix = _random_consistent_prefix(system, seed=1)
    graph = reduction_graph(prefix)
    benchmark(graph.find_cycle)
