"""EXP-T5 — Theorem 5 and Corollary 3: copies of one transaction.

Reproduces: the d-copies verdict equals the 2-copies verdict (which
Corollary 3 decides in linear time), validated against the exhaustive
oracle for d = 2, 3. Benchmarks the Corollary 3 test against oracle
costs that grow explosively with d.
"""

import random

import pytest

from repro.analysis.copies import check_copies, check_two_copies
from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.core.system import TransactionSystem
from repro.sim.workload import WorkloadSpec, random_schema, random_transaction


def _random_txn(seed: int, n_entities: int = 4):
    rng = random.Random(seed)
    schema = random_schema(rng, n_entities, 2)
    spec = WorkloadSpec(
        entities_per_txn=(n_entities, n_entities),
        actions_per_entity=(0, 0),
    )
    return random_transaction(
        "T", rng, schema, spec, entities=sorted(schema.entities)
    )


def test_theorem5_shape():
    """d copies <=> 2 copies, against the oracle for d = 2 and 3."""
    agree = 0
    for seed in range(6):
        t = _random_txn(seed, n_entities=3)
        two_verdict = bool(check_two_copies(t))
        for d in (2, 3):
            oracle = bool(
                is_safe_and_deadlock_free(
                    TransactionSystem.of_copies(t, d), 500_000
                )
            )
            assert oracle == two_verdict, f"seed {seed} d={d}"
        agree += 1
    print(f"\n[EXP-T5] Theorem 5 validated on {agree} transactions "
          f"for d in {{2, 3}}")


@pytest.mark.parametrize("n_entities", [4, 8, 16, 32])
def test_corollary3_scaling(benchmark, n_entities):
    t = _random_txn(1, n_entities=n_entities)
    benchmark(check_two_copies, t)


@pytest.mark.parametrize("d", [2, 3])
def test_oracle_cost_grows_with_copies(benchmark, d):
    t = _random_txn(2, n_entities=3)
    system = TransactionSystem.of_copies(t, d)
    verdict = benchmark.pedantic(
        is_safe_and_deadlock_free,
        args=(system, 500_000),
        rounds=2,
        iterations=1,
    )
    assert bool(verdict) == bool(check_copies(t, d))
