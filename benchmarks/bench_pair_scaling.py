"""EXP-T3 — Corollary 2: the pair test is quadratic.

Reproduces the complexity claims of Section 5 for two transactions:

* Theorem 3 test — O(n²) given the transitive closure;
* minimal-prefix algorithm — O(n³);
* exhaustive Lemma 1 oracle — exponential (run only at toy sizes).

The two polynomial algorithms must agree at every size; the benchmark
timings exhibit the polynomial-vs-exponential gap the paper's
complexity matrix asserts.
"""

import pytest

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.minimal_prefix import check_pair_minimal_prefix
from repro.analysis.pairs import check_pair

from conftest import make_pair

SIZES = [10, 20, 40, 80, 160]


@pytest.mark.parametrize("n_entities", SIZES)
def test_theorem3_scaling(benchmark, n_entities):
    t1, t2 = make_pair(n_entities, seed=n_entities)
    verdict = benchmark(check_pair, t1, t2)
    # cross-validate against the cubic algorithm at every size
    assert bool(verdict) == bool(check_pair_minimal_prefix(t1, t2))


@pytest.mark.parametrize("n_entities", SIZES)
def test_minimal_prefix_scaling(benchmark, n_entities):
    t1, t2 = make_pair(n_entities, seed=n_entities)
    verdict = benchmark(check_pair_minimal_prefix, t1, t2)
    assert bool(verdict) == bool(check_pair(t1, t2))


@pytest.mark.parametrize("n_entities", [2, 3, 4])
def test_exhaustive_baseline(benchmark, n_entities):
    """The oracle works only at toy sizes — that is the point.

    Run pedantically (few rounds): each call explores an exponential
    state space, which is precisely what the bench demonstrates.
    """
    t1, t2 = make_pair(n_entities, seed=7)
    from repro.core.system import TransactionSystem

    system = TransactionSystem([t1, t2])
    verdict = benchmark.pedantic(
        is_safe_and_deadlock_free,
        args=(system, 500_000),
        rounds=2,
        iterations=1,
    )
    assert bool(verdict) == bool(check_pair(t1, t2))


def test_agreement_sweep():
    """Verdict agreement across a size sweep (pure correctness)."""
    rows = []
    for n in SIZES:
        for seed in range(3):
            t1, t2 = make_pair(n, seed=seed)
            a = bool(check_pair(t1, t2))
            b = bool(check_pair_minimal_prefix(t1, t2))
            assert a == b, f"n={n} seed={seed}"
            rows.append((n, seed, a))
    print()
    print("[EXP-T3] verdict agreement (Theorem 3 vs minimal-prefix):")
    for n, seed, verdict in rows:
        print(f"  n={n:4d} seed={seed}: safe+DF={verdict}")
