"""EXP-TAB1 — the complexity matrix of Sections 1 and 6, empirically.

The paper's summary table (prose form):

| problem                      | 2 txns, centralized | 2 txns, distributed | fixed k | arbitrary |
|------------------------------|---------------------|---------------------|---------|-----------|
| safety                       | P [LP]              | coNP-complete [KP2] | —       | coNP-c    |
| deadlock-freedom             | P [LP]              | coNP-complete (Thm 2)| P [SM] | coNP-c    |
| safety AND deadlock-freedom  | P (Lemma 2)         | P, O(n²) (Thm 3)    | P (Thm 4)| coNP-c   |

This bench measures the diagonal we implement: the polynomial
algorithms stay polynomial as input grows, while the exact deciders for
the coNP-complete cells (exhaustive searches) blow up even at toy
sizes. Measured ratios are printed for EXPERIMENTS.md.
"""

import time

from repro.analysis.centralized import check_centralized_pair
from repro.analysis.fixed_k import check_system
from repro.analysis.minimal_prefix import check_pair_minimal_prefix
from repro.analysis.pairs import check_pair

from conftest import make_pair, make_system


def _time(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_polynomial_cells_scale_polynomially():
    """Doubling the input must not square the runtime of the P cells
    (allow generous noise: ratio < 16 for a doubling)."""
    rows = []
    for n in (40, 80, 160):
        t1, t2 = make_pair(n, seed=n)
        rows.append(("Thm3 pair", n, _time(check_pair, t1, t2)))
        rows.append(
            ("min-prefix", n, _time(check_pair_minimal_prefix, t1, t2))
        )
    for n in (10, 20, 40):
        system = make_system(4, n, seed=n)
        rows.append(("Thm4 k=4", n, _time(check_system, system)))

    print()
    print("[EXP-TAB1] polynomial cells:")
    for name, n, seconds in rows:
        print(f"  {name:11s} n={n:4d}: {seconds * 1000:8.2f} ms")

    by_name: dict = {}
    for name, n, seconds in rows:
        by_name.setdefault(name, []).append(seconds)
    for name, series in by_name.items():
        for a, b in zip(series, series[1:]):
            if a > 1e-4:  # below that, timer noise dominates
                assert b / a < 16, f"{name} grew too fast: {series}"


def test_centralized_pair_cell():
    """Lemma 2 on total orders — the centralized P cell."""
    import random

    from repro.sim.workload import (
        WorkloadSpec,
        random_schema,
        random_transaction,
    )

    timings = []
    for n in (50, 100, 200):
        rng = random.Random(n)
        schema = random_schema(rng, n, 1)
        spec = WorkloadSpec(
            entities_per_txn=(n, n),
            actions_per_entity=(0, 0),
            shape="sequential",
        )
        pool = sorted(schema.entities)
        t1 = random_transaction("T1", rng, schema, spec, entities=pool)
        t2 = random_transaction("T2", rng, schema, spec, entities=pool)
        timings.append((n, _time(check_centralized_pair, t1, t2)))
    print()
    print("[EXP-TAB1] Lemma 2 (centralized pair):")
    for n, seconds in timings:
        print(f"  n={n:4d}: {seconds * 1000:8.2f} ms")


def test_conp_cells_blow_up():
    """The exact decider for the coNP cells explodes at toy sizes."""
    from repro.analysis.exhaustive import (
        SearchBudgetExceeded,
        is_safe_and_deadlock_free,
    )
    from repro.core.system import TransactionSystem

    timings = []
    for n in (3, 4, 5):
        t1, t2 = make_pair(n, seed=n, cross_arc_p=0.05)
        system = TransactionSystem([t1, t2])
        start = time.perf_counter()
        try:
            is_safe_and_deadlock_free(system, max_states=400_000)
            outcome = "finished"
        except SearchBudgetExceeded:
            outcome = "BUDGET EXCEEDED"
        timings.append((n, time.perf_counter() - start, outcome))
    print()
    print("[EXP-TAB1] exhaustive decider (coNP cells):")
    for n, seconds, outcome in timings:
        print(f"  n={n:2d} entities: {seconds * 1000:9.2f} ms  {outcome}")
    # strictly increasing cost with n
    assert timings[-1][1] > timings[0][1]
