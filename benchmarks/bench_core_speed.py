"""Core simulator speed benchmark — the repo's perf trajectory anchor.

Times the simulator hot path over five deterministic scenarios and
writes ``BENCH_core.json``:

* ``closed`` — a closed batch under wound-wait (the seed simulator's
  regime: one transient burst of contention, instant commit);
* ``open`` — a long open-system run under the ``detect`` policy, the
  classical DBMS configuration (blocked requests park; a periodic
  detector breaks cycles). This is the scenario the ≥3x tentpole
  target of the fast-path PR is measured on: thousands of arrivals
  make the instance list grow all run, which is exactly where the
  historical per-tick full rescans and per-abort full-table scans
  degraded;
* ``open-long`` — the arrival-to-verdict stress: a closed seed batch
  plus sustained arrivals of *larger* transactions under wound-wait,
  producing a committed trace ~5x the ``open`` scenario's. Per-arrival
  workload generation, the end-of-run schedule replay, and the final
  D(S') verdict dominate here — the fast path of the
  trusted-construction PR is measured on this scenario;
* ``replicated`` — an open system under wound-wait at replication
  factor 3 under ``rowa-available`` with site failures and a read mix
  (replica fan-out, staleness tracking, availability integration);
* ``detection`` — a deliberately *saturated* detector (arrivals faster
  than the detect policy can clear): deep queues, constant cycles, the
  worst case for waits-for bookkeeping.

Every scenario is seeded and deterministic, so besides the timings the
harness records a *behaviour digest* over the simulation result —
comparing digests across code versions proves the optimized core is
bit-identical, not just faster.

Usage:
    python benchmarks/bench_core_speed.py                # full mode
    python benchmarks/bench_core_speed.py --quick        # CI smoke
    python benchmarks/bench_core_speed.py --check BASE   # regression gate
    python benchmarks/bench_core_speed.py --merge BASE   # keep BASE's
                                                         # other runs/modes
    python benchmarks/bench_core_speed.py --overhead     # observability
                                                         # cost report

``--overhead`` measures the observability layer instead of recording a
baseline: each probed scenario runs plain, with a disabled
``ObserveConfig`` (must be free — same digest, ops/sec delta within
``--overhead-tolerance``), fully instrumented (tracer + sampler +
attribution; same digest, overhead reported as a percentage), and
sampled (``sample_every=8``; same digest, must not cost more than the
fully traced mode plus the tolerance). Exit code 1 if the disabled
mode costs anything beyond noise, the sampled mode exceeds the traced
mode, or any digest diverges.

``--check`` compares the fresh numbers against the same mode of the
``current`` run recorded in the baseline file: behaviour digests must
match exactly, and ``ops_per_sec`` must not regress more than
``--tolerance`` (default 0.25). Exit code 1 on violation — this is the
CI gate against perf regressions.

BENCH_core.json schema::

    {
      "schema_version": 1,
      "runs": {
        "pre_pr":  {"quick": {...}, "full": {...}},   # pre-fast-path core
        "pr4":     {"quick": {...}, "full": {...}},   # PR 4 core (pre
                                                      # arrival-to-verdict
                                                      # fast path)
        "current": {"quick": {...}, "full": {...}}    # this tree
      },
      "speedup_vs_pre_pr": {"open": 3.4, ...},        # full-mode ratio
      "speedup_vs_pr4": {"open-long": 2.1, ...}       # full-mode ratio
    }

where each scenario entry records ``wall_s``, ``events`` (simulator
events processed), ``events_per_sec``, ``ops`` (committed-attempt trace
operations), ``ops_per_sec``, ``committed``, ``aborts``, ``end_time``,
and ``digest``.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
# No recursion-limit escape hatch: wound cascades run on an explicit
# worklist, so even extreme-contention scenarios stay within the
# default interpreter stack.

from repro.core.system import TransactionSystem  # noqa: E402
from repro.sim.runtime import SimulationConfig, Simulator  # noqa: E402
from repro.sim.workload import WorkloadSpec, random_system  # noqa: E402
import random  # noqa: E402

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_core.json"

# Fields of SimulationResult folded into the behaviour digest: the
# seed-era surface plus the open-system steady-state fields.
DIGEST_FIELDS = (
    "policy", "commit_protocol", "replica_protocol", "replication_factor",
    "committed", "total", "end_time", "aborts", "wounds", "deaths",
    "timeouts", "detected", "crash_aborts", "unavailable_aborts",
    "commit_aborts", "crashes", "deadlocked", "deadlock_cycle", "waits",
    "wait_time", "commit_messages", "prepared_blocks",
    "prepared_block_time", "latencies", "exec_latencies",
    "commit_latencies", "serializable", "truncated", "injected",
    "measured_committed", "inflight_area",
)


def result_digest(result) -> str:
    blob = ";".join(f"{f}={getattr(result, f)!r}" for f in DIGEST_FIELDS)
    return hashlib.md5(blob.encode()).hexdigest()[:12]


def _scenarios(quick: bool) -> dict[str, tuple]:
    """(system_builder, policy, config) per scenario name."""
    scale = 1 if quick else 0  # tuples below are (full, quick)

    def closed():
        n = (600, 120)[scale]
        spec = WorkloadSpec(
            n_transactions=n, n_entities=32, n_sites=8,
            entities_per_txn=(2, 4), actions_per_entity=(0, 2),
            hotspot_skew=0.5,
        )
        system = random_system(random.Random(7), spec)
        return system, "wound-wait", SimulationConfig(
            arrival_spread=n / 2.0, seed=1,
        )

    def open_system():
        # Sustained contention at a load the detector can just about
        # keep up with: the blocked set stays bounded while the total
        # instance list keeps growing — the regime where retiring
        # finished transactions from the scan loops matters.
        spec = WorkloadSpec(
            n_entities=32, n_sites=8, entities_per_txn=(2, 4),
            actions_per_entity=(0, 2), hotspot_skew=0.6,
        )
        return TransactionSystem([]), "detect", SimulationConfig(
            arrival_rate=0.35, max_transactions=(6000, 800)[scale],
            warmup_time=50.0, workload=spec, seed=1,
        )

    def open_long():
        # Arrival-to-verdict at ~5x the `open` trace length: a closed
        # seed batch (its transactions carry their own schema object,
        # so freezing the run exercises the batch+arrival schema
        # path) plus sustained arrivals of larger transactions. The
        # load sits below saturation, so the run drains fully and the
        # committed trace — and with it generation, replay, and the
        # final D(S') verdict — grows with every arrival.
        spec = WorkloadSpec(
            n_transactions=200, n_entities=64, n_sites=8,
            entities_per_txn=(3, 5), actions_per_entity=(1, 3),
            hotspot_skew=0.4,
        )
        batch = random_system(random.Random(9), spec)
        return batch, "wound-wait", SimulationConfig(
            arrival_rate=0.3, max_transactions=(20000, 1500)[scale],
            arrival_spread=200.0, warmup_time=50.0, workload=spec,
            seed=5, max_time=400_000.0,
        )

    def replicated():
        spec = WorkloadSpec(
            n_entities=24, n_sites=6, entities_per_txn=(2, 3),
            actions_per_entity=(0, 1), hotspot_skew=0.4,
            read_fraction=0.3, replication_factor=3,
        )
        return TransactionSystem([]), "wound-wait", SimulationConfig(
            arrival_rate=0.8, max_transactions=(3500, 500)[scale],
            warmup_time=50.0, workload=spec, seed=2,
            replica_protocol="rowa-available", failure_rate=0.002,
            repair_time=8.0,
        )

    def detection():
        # Deliberately saturated: the detect policy cannot keep up, so
        # the instance list keeps growing while the detector scans it
        # every interval — the worst case for waits-for bookkeeping.
        spec = WorkloadSpec(
            n_entities=24, n_sites=6, entities_per_txn=(2, 4),
            actions_per_entity=(0, 2), hotspot_skew=0.8,
        )
        return TransactionSystem([]), "detect", SimulationConfig(
            arrival_rate=0.4, max_transactions=(800, 120)[scale],
            warmup_time=50.0, workload=spec, seed=3,
            detection_interval=4.0, max_time=(20_000.0, 6_000.0)[scale],
        )

    return {
        "closed": closed,
        "open": open_system,
        "open-long": open_long,
        "replicated": replicated,
        "detection": detection,
    }


def run_scenario(builder, repeats: int) -> dict:
    """Run one scenario ``repeats`` times; keep the best wall time."""
    best = None
    for _ in range(repeats):
        system, policy, config = builder()
        sim = Simulator(system, policy, config)
        # Collect the previous scenario's garbage now: the big runs
        # retire millions of objects, and without this the gen-2 pass
        # fires mid-measurement and is charged to whichever scenario
        # happens to be running.
        gc.collect()
        start = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - start
        events = sim._events_processed
        ops = len(sim._trace)
        entry = {
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_sec": round(events / wall, 1),
            "ops": ops,
            "ops_per_sec": round(ops / wall, 1),
            "committed": result.committed,
            "aborts": result.aborts,
            "end_time": round(result.end_time, 6),
            "digest": result_digest(result),
        }
        if best is None or entry["wall_s"] < best["wall_s"]:
            if best is not None and best["digest"] != entry["digest"]:
                raise AssertionError(
                    "non-deterministic scenario: digest changed between "
                    "repeats"
                )
            best = entry
    return best


def run_mode(quick: bool, repeats: int) -> dict[str, dict]:
    results = {}
    for name, builder in _scenarios(quick).items():
        results[name] = run_scenario(builder, repeats)
        print(
            f"  {name:<10} {results[name]['wall_s']:>8.3f}s "
            f"{results[name]['ops_per_sec']:>10.0f} ops/s "
            f"{results[name]['events_per_sec']:>10.0f} ev/s "
            f"digest={results[name]['digest']}"
        )
    return results


def run_overhead(quick: bool, repeats: int, tolerance: float) -> list[str]:
    """Measure the observability layer's cost; returns violations.

    Four runs per scenario: plain, observability *configured but
    disabled* (the zero-cost claim: nothing attaches, so the delta is
    pure timing noise), fully instrumented (tracer + sampler +
    attribution, the honest price of turning everything on), and
    *sampled* (the same instrumentation at ``sample_every=8`` — the
    escape hatch for traced production runs, which must cost no more
    than the fully traced mode plus noise). All four must produce the
    same behaviour digest.
    """
    import dataclasses

    from repro.sim.observe import ObserveConfig

    def with_observe(builder, observe):
        def build():
            system, policy, config = builder()
            return system, policy, dataclasses.replace(
                config, observe=observe
            )
        return build

    errors = []
    scenarios = _scenarios(quick)
    for name in ("closed", "open"):
        builder = scenarios[name]
        plain = run_scenario(builder, repeats)
        disabled = run_scenario(
            with_observe(builder, ObserveConfig()), repeats
        )
        traced = run_scenario(
            with_observe(
                builder,
                ObserveConfig(
                    trace=True, metrics_window=25.0, attribution=True
                ),
            ),
            repeats,
        )
        sampled = run_scenario(
            with_observe(
                builder,
                ObserveConfig(
                    trace=True, metrics_window=25.0, attribution=True,
                    sample_every=8,
                ),
            ),
            repeats,
        )
        checks = (
            ("disabled", disabled), ("traced", traced),
            ("sampled", sampled),
        )
        for label, entry in checks:
            if entry["digest"] != plain["digest"]:
                errors.append(
                    f"{name}/{label}: behaviour digest diverged from the "
                    f"plain run ({plain['digest']} -> {entry['digest']})"
                )
        disabled_delta = 1.0 - disabled["ops_per_sec"] / plain["ops_per_sec"]
        traced_overhead = plain["ops_per_sec"] / traced["ops_per_sec"] - 1.0
        sampled_overhead = (
            plain["ops_per_sec"] / sampled["ops_per_sec"] - 1.0
        )
        print(
            f"  {name:<10} plain {plain['ops_per_sec']:>10.0f} ops/s | "
            f"disabled delta {disabled_delta:+7.1%} | "
            f"traced overhead {traced_overhead:+7.1%} | "
            f"sampled overhead {sampled_overhead:+7.1%}"
        )
        if disabled_delta > tolerance:
            errors.append(
                f"{name}: disabled observability cost "
                f"{disabled_delta:.1%} > {tolerance:.0%} — the disabled "
                f"path is supposed to be free"
            )
        if sampled_overhead > traced_overhead + tolerance:
            errors.append(
                f"{name}: sampled tracing cost {sampled_overhead:.1%} "
                f"exceeds full tracing ({traced_overhead:.1%}) by more "
                f"than {tolerance:.0%} — sampling is supposed to bound "
                f"overhead, not add it"
            )
    return errors


def check_regression(
    fresh: dict[str, dict], baseline_path: Path, mode: str, tolerance: float
) -> list[str]:
    """Compare fresh numbers to the baseline's ``current`` run."""
    baseline = json.loads(baseline_path.read_text())
    pinned = baseline.get("runs", {}).get("current", {}).get(mode)
    if pinned is None:
        return [f"baseline {baseline_path} has no current/{mode} run"]
    errors = []
    for name, entry in fresh.items():
        base = pinned.get(name)
        if base is None:
            errors.append(f"{name}: missing from baseline")
            continue
        if base["digest"] != entry["digest"]:
            errors.append(
                f"{name}: behaviour digest changed "
                f"({base['digest']} -> {entry['digest']}) — the simulator "
                f"is no longer bit-identical to the pinned baseline"
            )
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if entry["ops_per_sec"] < floor:
            errors.append(
                f"{name}: ops/sec regressed beyond {tolerance:.0%}: "
                f"{entry['ops_per_sec']:.0f} < {floor:.0f} "
                f"(baseline {base['ops_per_sec']:.0f})"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scenarios (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per scenario, best kept "
                             "(default: 2 quick, 1 full)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--run-label", default="current",
                        choices=("current", "pre_pr", "pr4"),
                        help="which run slot to record under")
    parser.add_argument("--merge", type=Path, default=None,
                        help="seed the output with this JSON's other "
                             "runs/modes before recording")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to compare against (CI gate)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed ops/sec regression (default 0.25)")
    parser.add_argument("--overhead", action="store_true",
                        help="measure observability cost instead of "
                             "recording a baseline")
    parser.add_argument("--overhead-tolerance", type=float, default=0.30,
                        help="allowed disabled-observability ops/sec "
                             "delta — generous, it's timing noise "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeats = args.repeats or (2 if args.quick else 1)

    if args.overhead:
        print(
            f"bench_core_speed: observability overhead, mode={mode} "
            f"repeats={repeats}"
        )
        errors = run_overhead(args.quick, repeats, args.overhead_tolerance)
        if errors:
            for err in errors:
                print(f"OVERHEAD: {err}", file=sys.stderr)
            return 1
        print(
            "overhead gate: ok (disabled observability within "
            f"{args.overhead_tolerance:.0%} noise)"
        )
        return 0

    print(f"bench_core_speed: mode={mode} repeats={repeats}")
    fresh = run_mode(args.quick, repeats)

    doc = {"schema_version": 1, "runs": {}}
    if args.merge and args.merge.exists():
        doc = json.loads(args.merge.read_text())
    doc.setdefault("runs", {}).setdefault(args.run_label, {})[mode] = fresh

    cur = doc["runs"].get("current", {}).get("full")
    for base_label, key in (
        ("pre_pr", "speedup_vs_pre_pr"),
        ("pr4", "speedup_vs_pr4"),
    ):
        base = doc["runs"].get(base_label, {}).get("full")
        if base and cur:
            doc[key] = {
                name: round(
                    cur[name]["ops_per_sec"] / base[name]["ops_per_sec"], 2
                )
                for name in cur
                if name in base and base[name]["ops_per_sec"] > 0
            }

    args.output.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check is not None:
        errors = check_regression(fresh, args.check, mode, args.tolerance)
        if errors:
            for err in errors:
                print(f"REGRESSION: {err}", file=sys.stderr)
            return 1
        print(f"regression gate: ok (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
