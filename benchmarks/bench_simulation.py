"""EXP-SIM — prevention-by-certification vs runtime schemes.

The paper's motivation (Section 1): deciding deadlock-freedom in
advance removes the need for runtime machinery. The bench measures, on
a contended distributed workload:

* certified workloads under pure blocking — no aborts, no deadlocks;
* uncertified workloads under blocking — deadlock rate > 0;
* wound-wait / wait-die / timeout / detection — live but paying aborts.
"""

import random

import pytest

from repro.analysis.fixed_k import check_system
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

POLICIES = ["blocking", "wound-wait", "wait-die", "timeout", "detect"]


def _workload(shape: str, seed: int = 5):
    return random_system(
        random.Random(seed),
        WorkloadSpec(
            n_transactions=8,
            n_entities=6,
            n_sites=3,
            entities_per_txn=(2, 4),
            actions_per_entity=(0, 1),
            hotspot_skew=1.2,
            shape=shape,
        ),
    )


def test_shape_report():
    contended = _workload("random")
    certified = _workload("ordered_2pl")
    assert not check_system(contended)
    assert check_system(certified)

    rows = []
    for name, system in (("uncertified", contended),
                         ("certified", certified)):
        for policy in POLICIES:
            deadlocks = aborts = 0
            for seed in range(20):
                result = simulate(
                    system, policy, SimulationConfig(seed=seed)
                )
                deadlocks += result.deadlocked
                aborts += result.aborts
            rows.append((name, policy, deadlocks, aborts))
            if name == "certified":
                if policy == "blocking":
                    assert deadlocks == 0 and aborts == 0
                else:
                    assert deadlocks == 0

    print()
    print("[EXP-SIM] workload x policy (20 runs each): "
          "deadlock-runs / total-aborts")
    for name, policy, deadlocks, aborts in rows:
        print(f"  {name:12s} {policy:11s} {deadlocks:2d} / {aborts}")
    contended_blocking = next(
        r for r in rows if r[0] == "uncertified" and r[1] == "blocking"
    )
    assert contended_blocking[2] > 0  # blocking deadlocks without cert


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_run_benchmark(benchmark, policy):
    system = _workload("random")

    def run():
        return simulate(system, policy, SimulationConfig(seed=3))

    result = benchmark(run)
    if policy in ("wound-wait", "wait-die"):
        assert not result.deadlocked


def test_certified_blocking_benchmark(benchmark):
    system = _workload("ordered_2pl")

    def run():
        return simulate(system, "blocking", SimulationConfig(seed=3))

    result = benchmark(run)
    assert result.committed == len(system)
    assert result.aborts == 0
