"""Legacy setup shim: enables editable installs on environments whose
setuptools predates PEP 660 editable wheels (no `wheel` package)."""

from setuptools import setup

setup()
