"""Tests for repro.analysis.tirri — including the demonstration of the
published algorithm's unsoundness (the paper's §3 refutation)."""

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.tirri import find_two_entity_pattern, tirri_check_pair
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem

from tests.helpers import seq


class TestPattern:
    def test_classic_pair_has_pattern(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        pattern = find_two_entity_pattern(t1, t2)
        assert pattern is not None
        assert set(pattern) == {"x", "y"}

    def test_ordered_pair_no_pattern(self):
        t1 = seq("T1", ["Lx", "Ly", "Uy", "Ux"])
        t2 = seq("T2", ["Lx", "Ly", "Ux", "Uy"])
        assert find_two_entity_pattern(t1, t2) is None

    def test_verdicts(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        assert not tirri_check_pair(t1, t2)
        assert tirri_check_pair(t1, t1.renamed("T1b"))


class TestFigure2Refutation:
    """The heart of §3: Tirri's premise misses the Figure 2 deadlock."""

    def test_tirri_wrongly_says_deadlock_free(self):
        from repro.paper.figures import figure2

        system = figure2()
        verdict = tirri_check_pair(system[0], system[1])
        assert verdict  # Tirri: "deadlock-free"
        assert find_deadlock(system) is not None  # reality: deadlock

    def test_pattern_absent_in_figure2(self):
        from repro.paper.figures import figure2

        system = figure2()
        assert find_two_entity_pattern(system[0], system[1]) is None

    def test_centralized_identical_syntax_never_deadlocks(self):
        """For contrast: in a centralized DB, identical total orders are
        always deadlock-free, so Tirri-style reasoning is safe there."""
        schema = DatabaseSchema.single_site(["v", "t", "z", "w"])
        t = seq(
            "T1",
            ["Lv", "Lt", "Lz", "Lw", "Uv", "Ut", "Uz", "Uw"],
            schema,
        )
        system = TransactionSystem([t, t.renamed("T2")])
        assert find_deadlock(system) is None
