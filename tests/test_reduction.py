"""Unit tests for repro.core.reduction (reduction graphs, Theorem 1
machinery)."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.prefix import SystemPrefix
from repro.core.reduction import (
    is_deadlock_partial_schedule,
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.core.schedule import Schedule
from repro.core.system import GlobalNode, TransactionSystem

from tests.helpers import seq


def deadlocking_pair() -> TransactionSystem:
    """Classic 2PL pair that can deadlock: opposite lock orders."""
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


class TestReductionGraph:
    def test_empty_prefix_graph_is_transactions(self):
        system = deadlocking_pair()
        graph = reduction_graph(SystemPrefix.empty(system))
        assert len(graph) == system.total_nodes()
        assert graph.is_acyclic()

    def test_cross_arcs_present(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], []])
        graph = reduction_graph(prefix)
        u1x = GlobalNode(0, system[0].unlock_node("x"))
        l2x = GlobalNode(1, system[1].lock_node("x"))
        assert graph.has_arc(u1x, l2x)
        assert "x" in graph.arc_labels(u1x, l2x)

    def test_classic_deadlock_prefix_cycle(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Ly"]])
        graph = reduction_graph(prefix)
        cycle = graph.find_cycle()
        assert cycle is not None
        labels = {system.describe_node(g) for g in cycle}
        assert {"L1y", "U2y", "L2x", "U1x"} <= labels

    def test_inconsistent_prefix_raises(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Lx"]])
        with pytest.raises(ValueError):
            reduction_graph(prefix)

    def test_executed_nodes_excluded(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], []])
        graph = reduction_graph(prefix)
        assert GlobalNode(0, 0) not in graph


class TestPrefixHasSchedule:
    def test_empty_prefix(self):
        system = deadlocking_pair()
        schedule = prefix_has_schedule(SystemPrefix.empty(system))
        assert schedule is not None
        assert len(schedule) == 0

    def test_reachable_prefix(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Ly"]])
        schedule = prefix_has_schedule(prefix)
        assert schedule is not None
        assert schedule.prefix() == prefix

    def test_unreachable_prefix(self):
        """T1 done, T2 holds x: impossible — T1 needed x after T2 locked
        it but T2 never released, and T2 locking x before T1 ran would
        block T1's Lx, yet T1 finished."""
        schema = DatabaseSchema.single_site(["x"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ux"], schema),
                seq("T2", ["Lx", "Ux"], schema),
            ]
        )
        # Both locked x, neither unlocked: lock-inconsistent.
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Lx"]])
        assert prefix_has_schedule(prefix) is None


class TestIsDeadlockPrefix:
    def test_classic(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Ly"]])
        assert is_deadlock_prefix(prefix)

    def test_empty_is_not(self):
        system = deadlocking_pair()
        assert not is_deadlock_prefix(SystemPrefix.empty(system))

    def test_inconsistent_is_not(self):
        system = deadlocking_pair()
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Lx"]])
        assert not is_deadlock_prefix(prefix)


class TestIsDeadlockPartialSchedule:
    def test_classic_blocked_state(self):
        system = deadlocking_pair()
        s = Schedule(system, [(0, 0), (1, 0)])  # L1x, L2y
        assert is_deadlock_partial_schedule(s)

    def test_progressable_state(self):
        system = deadlocking_pair()
        s = Schedule(system, [(0, 0)])
        assert not is_deadlock_partial_schedule(s)

    def test_complete_schedule_is_not_deadlock(self):
        system = deadlocking_pair()
        s = Schedule.serial(system)
        assert not is_deadlock_partial_schedule(s)
