"""Unit tests for repro.core.schedule."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.prefix import SystemPrefix
from repro.core.schedule import IllegalScheduleError, Schedule
from repro.core.system import GlobalNode, TransactionSystem

from tests.helpers import seq


def system2() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ux", "Ly", "Uy"], schema),
            seq("T2", ["Lx", "Ux"], schema),
        ]
    )


class TestValidation:
    def test_valid_interleaving(self):
        system = system2()
        s = Schedule(
            system,
            [(0, 0), (0, 1), (1, 0), (1, 1), (0, 2), (0, 3)],
        )
        assert s.is_complete()

    def test_lock_conflict_rejected(self):
        system = system2()
        with pytest.raises(IllegalScheduleError) as info:
            Schedule(system, [(0, 0), (1, 0)])
        assert "holds" in str(info.value)

    def test_precedence_violation_rejected(self):
        system = system2()
        with pytest.raises(IllegalScheduleError):
            Schedule(system, [(0, 1)])  # Ux before Lx

    def test_repeat_rejected(self):
        system = system2()
        with pytest.raises(IllegalScheduleError):
            Schedule(system, [(0, 0), (0, 0)])

    def test_bad_indices_rejected(self):
        system = system2()
        with pytest.raises(IllegalScheduleError):
            Schedule(system, [(5, 0)])
        with pytest.raises(IllegalScheduleError):
            Schedule(system, [(0, 99)])

    def test_relock_after_unlock_allowed(self):
        system = system2()
        s = Schedule(system, [(0, 0), (0, 1), (1, 0)])
        assert s.lock_sequence("x") == [0, 1]


class TestConstructors:
    def test_serial(self):
        system = system2()
        s = Schedule.serial(system)
        assert s.is_complete()
        assert s.is_serial()

    def test_serial_order(self):
        system = system2()
        s = Schedule.serial(system, [1, 0])
        assert s.steps[0].txn == 1

    def test_serial_prefixes(self):
        system = system2()
        prefix = SystemPrefix(system, [0b0011, 0b01])
        s = Schedule.serial_prefixes(prefix)
        assert len(s) == 3
        assert s.prefix() == prefix


class TestQueries:
    def test_prefix_roundtrip(self):
        system = system2()
        s = Schedule(system, [(0, 0), (0, 1), (1, 0)])
        prefix = s.prefix()
        assert prefix.masks == (0b0011, 0b01)

    def test_is_serial_false_for_interleaved(self):
        system = system2()
        s = Schedule(
            system, [(0, 0), (0, 1), (1, 0), (0, 2), (0, 3), (1, 1)]
        )
        assert not s.is_serial()

    def test_subsequence(self):
        system = system2()
        s = Schedule(system, [(0, 0), (0, 1), (1, 0), (0, 2), (1, 1)])
        assert s.subsequence_of(0) == [0, 1, 2]
        assert s.subsequence_of(1) == [0, 1]

    def test_extended(self):
        system = system2()
        s = Schedule(system, [(0, 0)])
        s2 = s.extended([(0, 1)])
        assert len(s2) == 2
        assert len(s) == 1  # original untouched

    def test_extended_validates(self):
        system = system2()
        s = Schedule(system, [(0, 0)])
        with pytest.raises(IllegalScheduleError):
            s.extended([(1, 0)])

    def test_describe(self):
        system = system2()
        s = Schedule(system, [(0, 0)])
        assert s.describe() == "L1x"

    def test_iteration_yields_global_nodes(self):
        system = system2()
        s = Schedule(system, [(0, 0), (0, 1)])
        assert list(s) == [GlobalNode(0, 0), GlobalNode(0, 1)]
