"""Unit tests for repro.sim.locks (shared/exclusive modes)."""

import pytest

from repro.sim.locks import EXCLUSIVE, SHARED, SiteLockManager


class TestRequestRelease:
    def test_grant_free(self):
        mgr = SiteLockManager("s1")
        assert mgr.request(0, "x")
        assert mgr.holder("x") == 0
        assert mgr.holders("x") == [0]
        assert mgr.mode("x") == EXCLUSIVE

    def test_queue_when_held(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        assert not mgr.request(1, "x")
        assert mgr.waiters("x") == [1]

    def test_release_grants_fifo(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        mgr.request(2, "x")
        assert mgr.release(0, "x") == [1]
        assert mgr.holder("x") == 1
        assert mgr.waiters("x") == [2]

    def test_release_empty_queue(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        assert mgr.release(0, "x") == []
        assert mgr.holder("x") is None
        assert mgr.mode("x") is None

    def test_double_request_rejected(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        with pytest.raises(ValueError):
            mgr.request(0, "x")

    def test_double_wait_rejected(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        with pytest.raises(ValueError):
            mgr.request(1, "x")

    def test_release_not_held_rejected(self):
        mgr = SiteLockManager("s1")
        with pytest.raises(ValueError):
            mgr.release(0, "x")

    def test_unknown_mode_rejected(self):
        mgr = SiteLockManager("s1")
        with pytest.raises(ValueError):
            mgr.request(0, "x", "IX")


class TestSharedMode:
    def test_shared_holders_coexist(self):
        mgr = SiteLockManager("s1")
        assert mgr.request(0, "x", SHARED)
        assert mgr.request(1, "x", SHARED)
        assert mgr.holders("x") == [0, 1]
        assert mgr.mode("x") == SHARED
        assert mgr.holder("x") is None  # not unique

    def test_exclusive_queues_behind_shared(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        assert not mgr.request(2, "x", EXCLUSIVE)
        assert mgr.release(0, "x") == []  # one reader left
        assert mgr.release(1, "x") == [2]  # writer takes over
        assert mgr.mode("x") == EXCLUSIVE

    def test_late_reader_does_not_starve_writer(self):
        # S S | X queued | S must queue behind the writer, not sneak in.
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", EXCLUSIVE)
        assert not mgr.request(2, "x", SHARED)
        assert mgr.waiters("x") == [1, 2]
        assert mgr.release(0, "x") == [1]
        assert mgr.release(1, "x") == [2]

    def test_release_grants_shared_batch(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", EXCLUSIVE)
        mgr.request(1, "x", SHARED)
        mgr.request(2, "x", SHARED)
        mgr.request(3, "x", EXCLUSIVE)
        assert mgr.release(0, "x") == [1, 2]  # the read batch
        assert mgr.mode("x") == SHARED
        assert mgr.waiters("x") == [3]
        assert mgr.release(1, "x") == []
        assert mgr.release(2, "x") == [3]

    def test_shared_after_shared_with_empty_queue(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", EXCLUSIVE)
        mgr.cancel_wait(1, "x")
        # Queue drained again: new readers join immediately.
        assert mgr.request(2, "x", SHARED)
        assert mgr.holders("x") == [0, 2]


class TestUpgrade:
    def test_sole_holder_upgrades_immediately(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        assert mgr.request(0, "x", EXCLUSIVE)
        assert mgr.mode("x") == EXCLUSIVE

    def test_upgrade_waits_for_other_readers(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        assert not mgr.request(0, "x", EXCLUSIVE)
        assert mgr.waiters("x") == [0]
        assert mgr.release(1, "x") == [0]
        assert mgr.mode("x") == EXCLUSIVE
        assert mgr.holders("x") == [0]

    def test_upgrade_jumps_the_queue(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        mgr.request(2, "x", EXCLUSIVE)  # plain waiter
        assert not mgr.request(0, "x", EXCLUSIVE)  # upgrade, goes first
        assert mgr.waiters("x") == [0, 2]
        assert mgr.release(1, "x") == [0]
        assert mgr.mode("x") == EXCLUSIVE

    def test_concurrent_upgrades_rejected(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        mgr.request(0, "x", EXCLUSIVE)
        with pytest.raises(ValueError):
            mgr.request(1, "x", EXCLUSIVE)

    def test_exclusive_holder_cannot_rerequest(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", EXCLUSIVE)
        with pytest.raises(ValueError):
            mgr.request(0, "x", EXCLUSIVE)

    def test_releasing_upgrader_drops_its_upgrade(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        mgr.request(0, "x", EXCLUSIVE)
        assert mgr.release(0, "x") == []  # abort path: S grant + upgrade go
        assert mgr.waiters("x") == []
        assert mgr.holders("x") == [1]


class TestCancelAndBulk:
    def test_cancel_wait(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        mgr.cancel_wait(1, "x")
        assert mgr.waiters("x") == []
        assert mgr.release(0, "x") == []

    def test_cancel_wait_noop(self):
        mgr = SiteLockManager("s1")
        mgr.cancel_wait(1, "x")  # no error

    def test_release_all(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(0, "y")
        mgr.request(1, "x")
        released = dict(mgr.release_all(0))
        assert released == {"x": [1], "y": []}
        assert mgr.holder("x") == 1

    def test_release_all_shared(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        assert dict(mgr.release_all(0)) == {"x": []}
        assert mgr.holders("x") == [1]

    def test_held_by_and_waiting_for(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(0, "y")
        mgr.request(1, "y")
        assert mgr.held_by(0) == ["x", "y"]
        assert mgr.waiting_for(1) == ["y"]

    def test_involved_spans_modes(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x", SHARED)
        mgr.request(1, "x", SHARED)
        mgr.request(2, "x", EXCLUSIVE)
        assert mgr.involved() == [0, 1, 2]
