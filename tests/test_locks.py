"""Unit tests for repro.sim.locks."""

import pytest

from repro.sim.locks import SiteLockManager


class TestRequestRelease:
    def test_grant_free(self):
        mgr = SiteLockManager("s1")
        assert mgr.request(0, "x")
        assert mgr.holder("x") == 0

    def test_queue_when_held(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        assert not mgr.request(1, "x")
        assert mgr.waiters("x") == [1]

    def test_release_grants_fifo(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        mgr.request(2, "x")
        assert mgr.release(0, "x") == 1
        assert mgr.holder("x") == 1
        assert mgr.waiters("x") == [2]

    def test_release_empty_queue(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        assert mgr.release(0, "x") is None
        assert mgr.holder("x") is None

    def test_double_request_rejected(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        with pytest.raises(ValueError):
            mgr.request(0, "x")

    def test_double_wait_rejected(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        with pytest.raises(ValueError):
            mgr.request(1, "x")

    def test_release_not_held_rejected(self):
        mgr = SiteLockManager("s1")
        with pytest.raises(ValueError):
            mgr.release(0, "x")


class TestCancelAndBulk:
    def test_cancel_wait(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(1, "x")
        mgr.cancel_wait(1, "x")
        assert mgr.waiters("x") == []
        assert mgr.release(0, "x") is None

    def test_cancel_wait_noop(self):
        mgr = SiteLockManager("s1")
        mgr.cancel_wait(1, "x")  # no error

    def test_release_all(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(0, "y")
        mgr.request(1, "x")
        released = dict(mgr.release_all(0))
        assert released == {"x": 1, "y": None}
        assert mgr.holder("x") == 1

    def test_held_by_and_waiting_for(self):
        mgr = SiteLockManager("s1")
        mgr.request(0, "x")
        mgr.request(0, "y")
        mgr.request(1, "y")
        assert mgr.held_by(0) == ["x", "y"]
        assert mgr.waiting_for(1) == ["y"]
