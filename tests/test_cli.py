"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io.textfmt import format_system
from repro.paper import figures

SAFE_SYSTEM = """
schema s1: x y

txn T1
  seq Lx Ly Uy Ux
end

txn T2
  seq Lx Ly Ux Uy
end
"""

UNSAFE_SYSTEM = """
schema s1: x y

txn T1
  seq Lx Ly Ux Uy
end

txn T2
  seq Ly Lx Uy Ux
end
"""


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.txn"
    path.write_text(SAFE_SYSTEM)
    return str(path)


@pytest.fixture
def unsafe_file(tmp_path):
    path = tmp_path / "unsafe.txn"
    path.write_text(UNSAFE_SYSTEM)
    return str(path)


class TestAnalyze:
    def test_safe(self, safe_file, capsys):
        assert main(["analyze", safe_file]) == 0
        out = capsys.readouterr().out
        assert "SAFE AND DEADLOCK-FREE" in out

    def test_unsafe(self, unsafe_file, capsys):
        assert main(["analyze", unsafe_file]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out


class TestDeadlock:
    def test_deadlock_found(self, unsafe_file, capsys):
        assert main(["deadlock", unsafe_file]) == 1
        out = capsys.readouterr().out
        assert "DEADLOCK" in out
        assert "cycle" in out

    def test_deadlock_free(self, safe_file, capsys):
        assert main(["deadlock", safe_file]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out
        assert "Theorem 1 agrees" in out


class TestSimulate:
    def test_table_printed(self, unsafe_file, capsys):
        code = main(
            [
                "simulate", unsafe_file,
                "--policies", "wound-wait", "wait-die",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wound-wait" in out and "wait-die" in out


class TestSat:
    def test_satisfiable_formula(self, capsys):
        code = main(["sat", "x1 x2, x1 ~x2, ~x1 x2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAT" in out
        assert "deadlock prefix" in out
        assert "decoded back" in out

    def test_unsat_formula(self, capsys):
        code = main(["sat", "a, a, ~a"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UNSAT" in out


class TestFigures:
    def test_runs(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Tirri" in out
        assert "Figure 6" in out


class TestRoundTripThroughCli:
    def test_figure_file_analyzable(self, tmp_path, capsys):
        path = tmp_path / "fig1.txn"
        path.write_text(format_system(figures.figure1()))
        main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert "T3" in out
