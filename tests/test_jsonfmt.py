"""Tests for JSON serialization (repro.io.jsonfmt)."""

import json

import pytest

from repro.io.jsonfmt import system_from_json, system_to_json
from repro.paper import figures

from tests.helpers import small_random_system


class TestRoundTrip:
    def test_figures(self):
        for system in (
            figures.figure1(),
            figures.figure2(),
            figures.figure3(),
        ):
            restored = system_from_json(system_to_json(system))
            assert len(restored) == len(system)
            for a, b in zip(system.transactions, restored.transactions):
                assert a.name == b.name
                assert a.ops == b.ops
                assert a.dag == b.dag
                assert a.schema == b.schema

    def test_random(self):
        for seed in range(10):
            system = small_random_system(seed, n_transactions=3)
            restored = system_from_json(system_to_json(system))
            for a, b in zip(system.transactions, restored.transactions):
                assert a.ops == b.ops and a.dag == b.dag


class TestValidation:
    def test_version_mismatch(self):
        payload = json.loads(system_to_json(figures.figure3()))
        payload["version"] = 99
        with pytest.raises(ValueError):
            system_from_json(json.dumps(payload))

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            system_from_json("[1, 2, 3]")

    def test_compact_output(self):
        text = system_to_json(figures.figure3(), indent=None)
        assert "\n" not in text
