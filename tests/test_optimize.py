"""Tests for repro.analysis.optimize (early unlocking, [W2] idea)."""

import random

import pytest

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.fixed_k import check_system
from repro.analysis.optimize import (
    OptimizationReport,
    early_unlock,
    holding_span,
)
from repro.analysis.policies import repair_system
from repro.core.system import TransactionSystem
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import seq


def certified_pair() -> TransactionSystem:
    t1 = seq("T1", ["Lx", "A.x", "Ly", "A.y", "Uy", "Ux"])
    t2 = seq("T2", ["Lx", "Ly", "A.y", "Uy", "Ux"])
    return TransactionSystem([t1, t2])


class TestHoldingSpan:
    def test_simple(self):
        t = seq("T", ["Lx", "A.x", "Ux"])
        assert holding_span(t) == 2

    def test_two_entities(self):
        t = seq("T", ["Lx", "Ly", "Uy", "Ux"])
        assert holding_span(t) == 3 + 1

    def test_rejects_partial_orders(self):
        from repro.paper.figures import figure3

        with pytest.raises(ValueError):
            holding_span(figure3()[0])


class TestEarlyUnlock:
    def test_reduces_span_and_stays_certified(self):
        report = early_unlock(certified_pair())
        assert report.after < report.before
        assert report.moves > 0
        assert check_system(report.system)
        assert is_safe_and_deadlock_free(report.system)

    def test_discovers_guard_pattern(self):
        """The optimizer should release x right after Ly (the
        Corollary 3 guard), not keep it until the end."""
        report = early_unlock(certified_pair())
        t1 = report.system[0]
        order = t1.dag.topological_order()
        pos = {node: i for i, node in enumerate(order)}
        assert pos[t1.unlock_node("x")] < pos[t1.unlock_node("y")]

    def test_rejects_uncertified_input(self):
        bad = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"]),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"]),
            ]
        )
        with pytest.raises(ValueError):
            early_unlock(bad)

    def test_rejects_partial_orders(self):
        from repro.paper.figures import figure3

        with pytest.raises(ValueError):
            early_unlock(figure3())

    def test_idempotent_at_fixpoint(self):
        report = early_unlock(certified_pair())
        again = early_unlock(report.system)
        assert again.moves == 0
        assert again.after == report.after

    def test_report_improvement(self):
        report = OptimizationReport(certified_pair(), 10, 5, 3)
        assert report.improvement == 0.5
        empty = OptimizationReport(certified_pair(), 0, 0, 0)
        assert empty.improvement == 0.0

    def test_on_repaired_random_workloads(self):
        for seed in (3, 11, 29):
            system = random_system(
                random.Random(seed),
                WorkloadSpec(
                    n_transactions=3,
                    n_entities=4,
                    entities_per_txn=(2, 3),
                    actions_per_entity=(1, 2),
                ),
            )
            repaired, _ = repair_system(system)
            report = early_unlock(repaired)
            assert report.after <= report.before
            assert check_system(report.system), f"seed {seed}"
            assert is_safe_and_deadlock_free(
                report.system, max_states=400_000
            ), f"seed {seed}"
