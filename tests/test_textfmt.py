"""Tests for the text format (repro.io.textfmt)."""

import pytest

from repro.io.textfmt import ParseError, format_system, parse_system

EXAMPLE = """
# Figure-1-like system
schema site1: x y
schema site2: z

txn T1
  seq Lx Ux Ly Uy
  seq Lz Uz
  arc Ly -> Lz
  arc Lz -> Uy
end

txn T2
  seq Lx Ly Uy Ux
end
"""


class TestParse:
    def test_example(self):
        system = parse_system(EXAMPLE)
        assert len(system) == 2
        assert system.schema.site_of("x") == "site1"
        assert system.schema.site_of("z") == "site2"
        t1 = system[0]
        assert t1.precedes(t1.lock_node("z"), t1.unlock_node("y"))

    def test_default_placement(self):
        system = parse_system("txn T\n  seq Lq Uq\nend\n")
        assert system.schema.site_of("q") == "site[q]"

    def test_comments_and_blank_lines(self):
        system = parse_system(
            "# top\n\ntxn T # named T\n  seq Lx Ux\nend\n"
        )
        assert system[0].name == "T"

    def test_actions_with_occurrence_index(self):
        text = (
            "txn T\n"
            "  seq Lx A.x A.x Ux\n"
            "  arc A.x#1 -> A.x#2\n"
            "end\n"
        )
        system = parse_system(text)
        assert len(system[0].action_nodes("x")) == 2

    @pytest.mark.parametrize(
        "bad,fragment",
        [
            ("txn T\n  seq Lx Ux\n", "not closed"),
            ("end\n", "outside"),
            ("txn T\ntxn S\n", "nested"),
            ("txn T\n  seq Lx Ux\n  arc Lq -> Ux\nend\n", "unknown step"),
            ("schema : x\ntxn T\n  seq Lx Ux\nend\n", "expected"),
            ("txn T\n  bogus Lx\nend\n", "unknown keyword"),
            ("txn T\n  arc Lx Ux\nend\n", "expected 'arc"),
            ("arc Lx -> Ux\n", "outside txn"),
            ("schema s1: x\nschema s2: x\n", "two sites"),
            ("txn T\n  seq Lx A.x A.x Ux\n  arc A.x -> Ux\nend\n",
             "ambiguous"),
            ("txn T\n  seq Lx A.x A.x Ux\n  arc A.x#7 -> Ux\nend\n",
             "occurrence"),
            ("", "no transactions"),
        ],
    )
    def test_errors(self, bad, fragment):
        with pytest.raises(ParseError) as info:
            parse_system(bad)
        assert fragment in str(info.value)

    def test_arc_inside_needs_block(self):
        with pytest.raises(ParseError):
            parse_system("arc Lx -> Ux\n")


class TestRoundTrip:
    def test_example_roundtrip(self):
        system = parse_system(EXAMPLE)
        text = format_system(system)
        reparsed = parse_system(text)
        assert len(reparsed) == len(system)
        for a, b in zip(system.transactions, reparsed.transactions):
            assert a.name == b.name
            assert a.entities == b.entities
            # same partial order on the Lock/Unlock labels
            assert _label_order(a) == _label_order(b)

    def test_figures_roundtrip(self):
        from repro.paper import figures

        for system in (
            figures.figure1(),
            figures.figure2(),
            figures.figure3(),
        ):
            reparsed = parse_system(format_system(system))
            for a, b in zip(system.transactions, reparsed.transactions):
                assert _label_order(a) == _label_order(b)

    def test_random_systems_roundtrip(self):
        from tests.helpers import small_random_system

        for seed in range(20):
            system = small_random_system(seed, n_transactions=3)
            reparsed = parse_system(format_system(system))
            for a, b in zip(system.transactions, reparsed.transactions):
                assert _label_order(a) == _label_order(b), f"seed {seed}"


def _label_order(transaction) -> set[tuple[str, str]]:
    """The strict order on node labels (labels are unique per L/U)."""
    pairs = set()
    for u, v in transaction.dag.transitive_closure_arcs():
        pairs.add((str(transaction.ops[u]), str(transaction.ops[v])))
    return pairs
