"""End-to-end integration: workload -> audit -> repair -> optimize ->
simulate -> verify, plus round trips through every I/O format."""

import random

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.optimize import early_unlock
from repro.analysis.policies import repair_system
from repro.analysis.reporting import audit_system
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.io.jsonfmt import system_from_json, system_to_json
from repro.io.textfmt import format_system, parse_system
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system


def make_messy_workload(seed: int):
    return random_system(
        random.Random(seed),
        WorkloadSpec(
            n_transactions=4,
            n_entities=5,
            n_sites=2,
            entities_per_txn=(2, 4),
            actions_per_entity=(1, 1),
            shape="sequential",
            hotspot_skew=1.0,
        ),
    )


class TestFullPipeline:
    def test_audit_repair_optimize_simulate(self):
        for seed in (1, 2, 3):
            system = make_messy_workload(seed)
            report = audit_system(system)

            if not report.ok:
                system, _order = repair_system(system)
                report = audit_system(system)
            assert report.ok, f"seed {seed}"

            # early unlocking keeps the certificate
            optimized = early_unlock(system).system
            assert audit_system(optimized).ok, f"seed {seed}"

            # dynamic validation: never deadlocks, always serializable
            for sim_seed in range(8):
                sim = Simulator(
                    optimized, "blocking",
                    SimulationConfig(seed=sim_seed),
                )
                result = sim.run()
                assert not result.deadlocked, f"{seed}/{sim_seed}"
                assert result.committed == len(optimized)
                schedule = sim.committed_schedule()
                assert is_serializable(schedule), f"{seed}/{sim_seed}"

    def test_optimized_system_agrees_with_oracle(self):
        system = make_messy_workload(5)
        repaired, _ = repair_system(system)
        optimized = early_unlock(repaired).system
        assert is_safe_and_deadlock_free(optimized, max_states=400_000)


class TestFormatInteroperability:
    def test_text_json_text(self):
        system = make_messy_workload(7)
        via_text = parse_system(format_system(system))
        via_json = system_from_json(system_to_json(via_text))
        assert len(via_json) == len(system)
        for a, b in zip(via_text.transactions, via_json.transactions):
            assert a.ops == b.ops
            assert a.dag == b.dag

    def test_witness_schedules_survive_reserialization(self):
        """A deadlock witness found on the original system replays on
        the reparsed system (node ids are preserved by the formats)."""
        from repro.analysis.exhaustive import find_deadlock

        text = (
            "schema s1: x\nschema s2: y\n"
            "txn T1\n  seq Lx Ly Ux Uy\nend\n"
            "txn T2\n  seq Ly Lx Uy Ux\nend\n"
        )
        system = parse_system(text)
        witness = find_deadlock(system)
        assert witness is not None
        reparsed = system_from_json(system_to_json(system))
        Schedule(reparsed, witness.steps)  # must validate
