"""Tests for repro.sim.metrics and repro.util.render."""

from repro.sim.metrics import SimulationResult
from repro.util.render import bullet_list, format_table, indent_block


class TestSimulationResult:
    def test_throughput(self):
        r = SimulationResult(policy="blocking", committed=4, end_time=2.0)
        assert r.throughput == 2.0

    def test_throughput_zero_time(self):
        r = SimulationResult(policy="blocking")
        assert r.throughput == 0.0

    def test_mean_latency_ignores_uncommitted(self):
        r = SimulationResult(
            policy="blocking", latencies=[2.0, -1.0, 4.0]
        )
        assert r.mean_latency == 3.0

    def test_mean_latency_empty(self):
        assert SimulationResult(policy="x").mean_latency == 0.0

    def test_summary_table(self):
        rows = [
            SimulationResult(
                policy="blocking", committed=1, total=2, deadlocked=True
            ),
            SimulationResult(
                policy="wound-wait", committed=2, total=2,
                serializable=True,
            ),
        ]
        table = SimulationResult.summary_table(rows)
        assert "blocking" in table
        assert "wound-wait" in table
        assert "yes" in table


class TestRender:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "n"], [["a", 1], ["bbb", 22]],
            align_right=[False, True],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert lines[2].endswith("1")

    def test_indent_block(self):
        assert indent_block("a\nb", "  ") == "  a\n  b"

    def test_bullet_list(self):
        assert bullet_list(["x", "y"]) == "  - x\n  - y"
