"""Tests for repro.sim.metrics and repro.util.render."""

import pytest

from repro.sim.metrics import SimulationResult, percentile, percentiles
from repro.util.render import bullet_list, format_table, indent_block


class TestSimulationResult:
    def test_throughput(self):
        r = SimulationResult(policy="blocking", committed=4, end_time=2.0)
        assert r.throughput == 2.0

    def test_throughput_zero_time(self):
        r = SimulationResult(policy="blocking")
        assert r.throughput == 0.0

    def test_mean_latency_ignores_uncommitted(self):
        r = SimulationResult(
            policy="blocking", latencies=[2.0, -1.0, 4.0]
        )
        assert r.mean_latency == 3.0

    def test_mean_latency_empty(self):
        assert SimulationResult(policy="x").mean_latency == 0.0

    def test_summary_table(self):
        rows = [
            SimulationResult(
                policy="blocking", committed=1, total=2, deadlocked=True
            ),
            SimulationResult(
                policy="wound-wait", committed=2, total=2,
                serializable=True,
            ),
        ]
        table = SimulationResult.summary_table(rows)
        assert "blocking" in table
        assert "wound-wait" in table
        assert "yes" in table


class TestRender:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "n"], [["a", 1], ["bbb", 22]],
            align_right=[False, True],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert lines[2].endswith("1")

    def test_indent_block(self):
        assert indent_block("a\nb", "  ") == "  a\n  b"

    def test_bullet_list(self):
        assert bullet_list(["x", "y"]) == "  - x\n  - y"


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank(self):
        values = list(map(float, range(1, 101)))  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestPercentiles:
    """The sort-once batch variant used by latency_percentiles."""

    def test_matches_percentile_per_quantile(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
        qs = (0, 10, 25, 50, 75, 90, 95, 99, 100)
        assert percentiles(values, qs) == [
            percentile(values, q) for q in qs
        ]

    def test_empty_yields_zero_per_quantile(self):
        assert percentiles([], (50, 95, 99)) == [0.0, 0.0, 0.0]

    def test_empty_quantile_list_yields_empty(self):
        # No quantiles requested -> nothing to compute, with or
        # without data (mirrors the docstrings of both functions).
        assert percentiles([], ()) == []
        assert percentiles([1.0, 2.0, 3.0], ()) == []
        assert percentiles([], []) == []

    def test_input_not_mutated(self):
        values = [3.0, 1.0, 2.0]
        percentiles(values, (50,))
        assert values == [3.0, 1.0, 2.0]

    def test_latency_percentiles_consistency(self):
        result = SimulationResult(policy="blocking")
        result.latencies = [4.0, 2.0, -1.0, 8.0, 6.0]
        result.exec_latencies = [1.0, 1.0, -1.0, 2.0, 3.0]
        result.commit_latencies = [3.0, 1.0, -1.0, 6.0, 3.0]
        got = result.latency_percentiles("total")
        done = [4.0, 2.0, 8.0, 6.0]
        assert got == {
            "p50": percentile(done, 50),
            "p95": percentile(done, 95),
            "p99": percentile(done, 99),
        }


class TestSteadyStateMetrics:
    def test_steady_throughput_and_inflight(self):
        r = SimulationResult(
            policy="x", end_time=110.0, warmup_time=10.0,
            measured_committed=50, inflight_area=400.0,
        )
        assert r.measured_duration == 100.0
        assert r.steady_throughput == 0.5
        assert r.mean_inflight == 4.0

    def test_zero_window_is_safe(self):
        r = SimulationResult(policy="x", end_time=5.0, warmup_time=10.0)
        assert r.measured_duration == 0.0
        assert r.steady_throughput == 0.0
        assert r.mean_inflight == 0.0

    def test_latency_percentiles_filter_warmup_starts(self):
        r = SimulationResult(
            policy="x",
            warmup_time=10.0,
            latencies=[100.0, 2.0, 4.0, -1.0],
            start_times=[1.0, 11.0, 12.0, 13.0],
        )
        p = r.latency_percentiles("total")
        assert p == {"p50": 2.0, "p95": 4.0, "p99": 4.0}

    def test_latency_percentiles_without_start_times(self):
        r = SimulationResult(policy="x", latencies=[5.0, -1.0, 3.0])
        assert r.latency_percentiles("total")["p99"] == 5.0

    def test_latency_percentiles_kinds(self):
        r = SimulationResult(
            policy="x",
            latencies=[6.0],
            exec_latencies=[4.0],
            commit_latencies=[2.0],
            start_times=[0.0],
        )
        assert r.latency_percentiles("exec")["p50"] == 4.0
        assert r.latency_percentiles("commit")["p50"] == 2.0
        with pytest.raises(ValueError, match="unknown latency kind"):
            r.latency_percentiles("bogus")

    def test_open_summary_table(self):
        r = SimulationResult(
            policy="wound-wait", committed=3, total=3, injected=3,
            end_time=30.0, measured_committed=3,
            latencies=[1.0, 2.0, 3.0],
            exec_latencies=[1.0, 2.0, 3.0],
            commit_latencies=[0.0, 0.0, 0.0],
            start_times=[0.0, 1.0, 2.0],
        )
        table = SimulationResult.open_summary_table([r])
        assert "wound-wait" in table
        assert "thruput" in table
