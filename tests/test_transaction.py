"""Unit tests for repro.core.transaction."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.operations import Operation, OpKind
from repro.core.transaction import (
    MalformedTransactionError,
    Transaction,
    TransactionBuilder,
)


def simple_sequential() -> Transaction:
    return Transaction.sequential(
        "T", ["Lx", "A.x", "Ly", "Ux", "A.y", "Uy"]
    )


class TestWellFormedness:
    def test_sequential_valid(self):
        t = simple_sequential()
        assert t.entities == {"x", "y"}
        assert t.node_count == 6

    def test_missing_unlock_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Lx", "A.x"])

    def test_missing_lock_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["A.x", "Ux"])

    def test_double_lock_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Lx", "Lx", "Ux"])

    def test_double_unlock_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Lx", "Ux", "Ux"])

    def test_unlock_before_lock_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Ux", "Lx"])

    def test_action_outside_lock_window_rejected(self):
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Lx", "Ux", "A.x"])
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["A.x", "Lx", "Ux"])

    def test_same_site_must_be_ordered(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        ops = [
            Operation.lock("x"),
            Operation.unlock("x"),
            Operation.lock("y"),
            Operation.unlock("y"),
        ]
        # Only L->U arcs: x-nodes unordered against y-nodes at one site.
        with pytest.raises(MalformedTransactionError):
            Transaction("T", ops, [(0, 1), (2, 3)], schema)

    def test_different_sites_may_be_unordered(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        ops = [
            Operation.lock("x"),
            Operation.unlock("x"),
            Operation.lock("y"),
            Operation.unlock("y"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3)], schema)
        assert not t.dag.comparable(0, 2)

    def test_entity_missing_from_schema_rejected(self):
        schema = DatabaseSchema({"x": "s1"})
        with pytest.raises(MalformedTransactionError):
            Transaction.sequential("T", ["Lx", "Ux", "Ly", "Uy"], schema)

    def test_cyclic_arcs_rejected(self):
        ops = [Operation.lock("x"), Operation.unlock("x")]
        with pytest.raises(MalformedTransactionError):
            Transaction("T", ops, [(0, 1), (1, 0)])


class TestQueries:
    def test_lock_unlock_nodes(self):
        t = simple_sequential()
        assert t.ops[t.lock_node("x")] == Operation.lock("x")
        assert t.ops[t.unlock_node("y")] == Operation.unlock("y")

    def test_action_nodes(self):
        t = simple_sequential()
        assert len(t.action_nodes("x")) == 1
        assert len(t.action_nodes("y")) == 1

    def test_unknown_entity_raises(self):
        with pytest.raises(KeyError):
            simple_sequential().lock_node("nope")

    def test_precedes(self):
        t = simple_sequential()
        assert t.precedes(t.lock_node("x"), t.unlock_node("x"))

    def test_describe_node(self):
        t = simple_sequential()
        assert t.describe_node(t.lock_node("x")) == "Lx"

    def test_nodes_at_site_ordered(self):
        t = simple_sequential()
        site = t.schema.site_of("x")
        nodes = t.nodes_at_site(site)
        # chain order along the sequence
        positions = [t.dag.ancestors(u).bit_count() for u in nodes]
        assert positions == sorted(positions)


class TestPredicates:
    def test_sequential_is_sequential(self):
        assert simple_sequential().is_sequential()

    def test_partial_order_not_sequential(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        ops = [
            Operation.lock("x"),
            Operation.unlock("x"),
            Operation.lock("y"),
            Operation.unlock("y"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3)], schema)
        assert not t.is_sequential()

    def test_two_phase_true(self):
        t = Transaction.sequential("T", ["Lx", "Ly", "Ux", "Uy"])
        assert t.is_two_phase()

    def test_two_phase_false(self):
        t = Transaction.sequential("T", ["Lx", "Ux", "Ly", "Uy"])
        assert not t.is_two_phase()


class TestDerived:
    def test_lock_skeleton_strips_actions(self):
        t = simple_sequential()
        skeleton = t.lock_skeleton()
        assert skeleton.node_count == 4
        assert all(op.kind is not OpKind.ACTION for op in skeleton.ops)
        # order induced: Lx before Ly before Ux before Uy
        assert skeleton.precedes(
            skeleton.lock_node("x"), skeleton.lock_node("y")
        )
        assert skeleton.precedes(
            skeleton.lock_node("y"), skeleton.unlock_node("x")
        )

    def test_lock_skeleton_identity_when_no_actions(self):
        t = Transaction.sequential("T", ["Lx", "Ux"])
        assert t.lock_skeleton() is t

    def test_renamed(self):
        t = simple_sequential().renamed("T9")
        assert t.name == "T9"
        assert t.entities == {"x", "y"}

    def test_relabeled(self):
        t = simple_sequential().relabeled({"x": "a"})
        assert t.entities == {"a", "y"}
        assert t.schema.site_of("a") == simple_sequential().schema.site_of("x")

    def test_linear_extensions_of_total_order(self):
        t = Transaction.sequential("T", ["Lx", "Ux"])
        assert len(list(t.linear_extensions())) == 1

    def test_linear_extensions_of_partial_order(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        ops = [
            Operation.lock("x"),
            Operation.unlock("x"),
            Operation.lock("y"),
            Operation.unlock("y"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3)], schema)
        extensions = list(t.linear_extensions())
        assert len(extensions) == 6  # interleavings of two 2-chains
        for ext in extensions:
            assert ext.is_sequential()


class TestBuilder:
    def test_builder_basic(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        b = TransactionBuilder("T", schema)
        lx, ux = b.lock("x"), b.unlock("x")
        ly, uy = b.lock("y"), b.unlock("y")
        b.chain(lx, ux)
        b.chain(ly, uy)
        t = b.build()
        assert t.entities == {"x", "y"}

    def test_builder_sequence(self):
        b = TransactionBuilder("T")
        nodes = b.sequence(["Lx", "A.x", "Ux"])
        t = b.build()
        assert len(nodes) == 3
        assert t.precedes(nodes[0], nodes[2])

    def test_auto_close(self):
        b = TransactionBuilder("T")
        b.lock("x")
        b.action("x")
        b.unlock("x")
        b.chain(0, 1)
        b.chain(1, 2)
        b.auto_close()
        t = b.build()
        assert t.precedes(t.lock_node("x"), t.unlock_node("x"))


class TestEquality:
    def test_equal(self):
        assert simple_sequential() == simple_sequential()

    def test_name_matters(self):
        assert simple_sequential() != simple_sequential().renamed("Z")

    def test_repr(self):
        assert "Lx" in repr(simple_sequential())
