"""Conformance battery: invariants every commit protocol must hold.

Parametrized over ``protocol_names()`` — a protocol added to the
registry is automatically under test here, with no edits. Each
invariant is checked across policies, seeds, and failure rates:

* a finished run leaves every site's lock tables empty (retained
  locks drain; nothing leaks across aborts, crashes, or takeovers);
* the final states partition: every instance is committed, none is
  half-aborted, and the ledger (``committed``/``total``/latency list
  lengths) agrees with the instance states;
* ``aborts_by_cause`` partitions ``aborts`` exactly;
* message accounting: ``instant`` is message-free, the voting
  protocols pay for every committed multi-site round, acceptor
  traffic is a subset of the commit ledger and exists only for
  ``paxos-commit``.
"""

import random

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.commit import protocol_names
from repro.sim.runtime import _COMMITTED, SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import seq

TWO_SITE_SCHEMA = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})

SPEC = WorkloadSpec(
    n_transactions=6,
    n_entities=6,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=1.0,
)


def workloads():
    yield "deadlock-pair", TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], TWO_SITE_SCHEMA),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], TWO_SITE_SCHEMA),
        ]
    )
    yield "generated", random_system(random.Random(7), SPEC)


def finished_runs(protocol):
    """Yield (sim, result) for every completed cell of the matrix."""
    for _name, system in workloads():
        for policy in ("wound-wait", "timeout"):
            for failure_rate in (0.0, 0.02):
                for s in range(3):
                    sim = Simulator(
                        system,
                        policy,
                        SimulationConfig(
                            seed=s,
                            commit_protocol=protocol,
                            network_delay=0.5,
                            commit_timeout=6.0,
                            failure_rate=failure_rate,
                            repair_time=8.0,
                        ),
                    )
                    result = sim.run()
                    assert not result.truncated
                    assert not result.deadlocked
                    yield sim, result


@pytest.mark.parametrize("protocol", protocol_names())
class TestConformance:
    def test_locks_drain_at_end(self, protocol):
        for sim, _result in finished_runs(protocol):
            for name, site in sim._sites.items():
                assert site.involved() == [], (protocol, name)

    def test_final_states_partition(self, protocol):
        for sim, result in finished_runs(protocol):
            statuses = [inst.status for inst in sim._instances]
            assert all(status is _COMMITTED for status in statuses)
            assert result.committed == result.total == len(statuses)
            assert len(result.latencies) == result.committed
            assert len(result.exec_latencies) == result.committed
            assert len(result.commit_latencies) == result.committed
            # No instance still holds or waits for anything.
            for inst in sim._instances:
                assert inst.retained == set()
                assert inst.waiting == {}

    def test_aborts_by_cause_partition(self, protocol):
        for _sim, result in finished_runs(protocol):
            assert sum(result.aborts_by_cause.values()) == result.aborts
            assert result.unavailable_aborts <= result.crash_aborts

    def test_message_accounting(self, protocol):
        for _sim, result in finished_runs(protocol):
            if protocol == "instant":
                assert result.commit_messages == 0
                assert result.acceptor_messages == 0
                assert all(c == 0.0 for c in result.commit_latencies)
                continue
            # Every workload above spans sites, so committed rounds
            # paid messages (at least PREPARE+VOTE per remote
            # participant of every committed transaction).
            assert result.commit_messages > 0
            assert result.acceptor_messages <= result.commit_messages
            if protocol == "paxos-commit":
                assert result.acceptor_messages > 0
            else:
                assert result.acceptor_messages == 0
                assert result.coordinator_takeovers == 0
