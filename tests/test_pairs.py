"""Unit tests for repro.analysis.pairs (Theorem 3)."""

from repro.analysis.pairs import (
    check_pair,
    common_first_locked_entity,
    is_pair_safe_deadlock_free,
)
from repro.analysis.witnesses import PairViolation
from repro.core.entity import DatabaseSchema

from tests.helpers import seq


class TestCommonFirstLockedEntity:
    def test_simple_agreement(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        assert common_first_locked_entity(t1, t2) == "x"

    def test_disagreement(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        assert common_first_locked_entity(t1, t2) is None

    def test_private_entities_ignored(self):
        t1 = seq("T1", ["Lp", "Up", "Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        assert common_first_locked_entity(t1, t2) == "x"


class TestCheckPair:
    def test_no_common_entities(self):
        t1 = seq("T1", ["Lx", "Ux"])
        t2 = seq("T2", ["Ly", "Uy"])
        assert check_pair(t1, t2)

    def test_classic_deadlock_pair_fails_condition_1(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        verdict = check_pair(t1, t2)
        assert not verdict
        assert isinstance(verdict.witness, PairViolation)
        assert verdict.witness.condition == 1

    def test_early_unlock_fails_condition_2(self):
        """Lock order agrees (condition 1 holds via x) but T1 releases x
        before taking y — nothing guards y."""
        t1 = seq("T1", ["Lx", "Ux", "Ly", "Uy"])
        t2 = seq("T2", ["Lx", "Ux", "Ly", "Uy"])
        verdict = check_pair(t1, t2)
        assert not verdict
        assert verdict.witness.condition == 2
        assert verdict.witness.entities == ("y",)

    def test_two_phase_same_order_passes(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        verdict = check_pair(t1, t2)
        assert verdict
        assert verdict.details["x"] == "x"

    def test_single_common_entity_passes(self):
        t1 = seq("T1", ["Lx", "Ux", "La", "Ua"])
        t2 = seq("T2", ["Lb", "Lx", "Ub", "Ux"])
        assert check_pair(t1, t2)

    def test_actions_ignored(self):
        t1 = seq("T1", ["Lx", "A.x", "Ly", "Ux", "A.y", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "A.y", "Ux", "Uy"])
        assert bool(check_pair(t1, t2)) == bool(
            check_pair(t1.lock_skeleton(), t2.lock_skeleton())
        )

    def test_boolean_wrapper(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        assert not is_pair_safe_deadlock_free(t1, t2)

    def test_figure3_pair_fails(self):
        """The Figure 3 pair is deadlock-free but NOT safe+DF (no common
        first lock: Lx, Ly incomparable in both)."""
        from repro.paper.figures import figure3

        system = figure3()
        assert not check_pair(system[0], system[1])

    def test_distributed_pair_passes(self):
        schema = DatabaseSchema.from_groups(
            {"s1": ["x"], "s2": ["y"]}
        )
        # Both lock x first, hold x across Ly (condition 2 witness z=x).
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema)
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"], schema)
        assert check_pair(t1, t2)
