"""Unit tests for repro.analysis.centralized (Lemma 2)."""

import pytest

from repro.analysis.centralized import (
    check_centralized_pair,
    sequence_l_set,
    sequence_r_set,
)
from repro.analysis.pairs import check_pair
from repro.core.entity import DatabaseSchema
from repro.core.operations import Operation
from repro.core.transaction import Transaction

from tests.helpers import seq


class TestSequenceSets:
    def test_r_set_scan(self):
        ops = [Operation.parse(s) for s in ["Lx", "Ly", "Ux", "Lz"]]
        assert sequence_r_set(ops, 3) == {"x", "y"}
        assert sequence_r_set(ops, 0) == set()

    def test_l_set_scan(self):
        ops = [Operation.parse(s) for s in ["Lx", "Ly", "Ux", "Lz"]]
        assert sequence_l_set(ops, 3) == {"y"}
        assert sequence_l_set(ops, 2) == {"x", "y"}


class TestCheckCentralizedPair:
    def test_requires_total_order(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        ops = [
            Operation.lock("x"), Operation.unlock("x"),
            Operation.lock("y"), Operation.unlock("y"),
        ]
        partial = Transaction("T1", ops, [(0, 1), (2, 3)], schema)
        with pytest.raises(ValueError):
            check_centralized_pair(partial, partial.renamed("T2"))

    def test_no_common(self):
        assert check_centralized_pair(
            seq("T1", ["Lx", "Ux"]), seq("T2", ["Ly", "Uy"])
        )

    def test_condition1_violation(self):
        verdict = check_centralized_pair(
            seq("T1", ["Lx", "Ly", "Ux", "Uy"]),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"]),
        )
        assert not verdict
        assert verdict.witness.condition == 1
        assert set(verdict.witness.entities) == {"x", "y"}

    def test_condition2_violation(self):
        verdict = check_centralized_pair(
            seq("T1", ["Lx", "Ux", "Ly", "Uy"]),
            seq("T2", ["Lx", "Ux", "Ly", "Uy"]),
        )
        assert not verdict
        assert verdict.witness.condition == 2

    def test_two_phase_ordered_passes(self):
        verdict = check_centralized_pair(
            seq("T1", ["Lx", "Ly", "Uy", "Ux"]),
            seq("T2", ["Lx", "Ly", "Ux", "Uy"]),
        )
        assert verdict
        assert verdict.details["x"] == "x"

    def test_actions_ignored(self):
        verdict = check_centralized_pair(
            seq("T1", ["Lx", "A.x", "Ly", "Uy", "Ux"]),
            seq("T2", ["Lx", "Ly", "A.y", "Ux", "Uy"]),
        )
        assert verdict


class TestAgreementWithTheorem3:
    """Theorem 3 restricted to total orders must agree with Lemma 2."""

    CASES = [
        (["Lx", "Ly", "Ux", "Uy"], ["Lx", "Ly", "Uy", "Ux"]),
        (["Lx", "Ly", "Ux", "Uy"], ["Ly", "Lx", "Uy", "Ux"]),
        (["Lx", "Ux", "Ly", "Uy"], ["Lx", "Ux", "Ly", "Uy"]),
        (["Lx", "Ly", "Lz", "Ux", "Uy", "Uz"],
         ["Lx", "Lz", "Ly", "Uz", "Ux", "Uy"]),
        (["La", "Lx", "Ua", "Ux"], ["Lx", "Lb", "Ub", "Ux"]),
        (["Lx", "Ly", "Uy", "Lz", "Ux", "Uz"],
         ["Lx", "Lz", "Ly", "Ux", "Uy", "Uz"]),
    ]

    @pytest.mark.parametrize("ops1,ops2", CASES)
    def test_agreement(self, ops1, ops2):
        t1, t2 = seq("T1", ops1), seq("T2", ops2)
        assert bool(check_centralized_pair(t1, t2)) == bool(
            check_pair(t1, t2)
        )
