"""Unit tests for repro.sim.observe: tracer, sampler, flight, CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim import (
    ObserveConfig,
    ObserverHub,
    SimulationConfig,
    Simulator,
)
from repro.sim.observe.trace import load_trace, summarize_trace
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import seq


def contended_system(n_txns: int = 12) -> TransactionSystem:
    spec = WorkloadSpec(
        n_transactions=n_txns, n_entities=6, n_sites=3,
        entities_per_txn=(2, 4), hotspot_skew=0.8,
    )
    return random_system(random.Random(3), spec)


def traced_run(config_kwargs=None, policy="wound-wait", system=None):
    observe = ObserveConfig(**(config_kwargs or {"trace": True}))
    config = SimulationConfig(
        seed=5, network_delay=0.5, observe=observe
    )
    sim = Simulator(system or contended_system(), policy, config)
    sim.run()
    return sim


class TestObserveConfig:
    def test_default_is_disabled(self):
        assert not ObserveConfig().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace": True},
            {"metrics_window": 5.0},
            {"flight_recorder": "somewhere"},
        ],
    )
    def test_any_consumer_enables(self, kwargs):
        assert ObserveConfig(**kwargs).enabled

    def test_sampler_rejects_nonpositive_window(self):
        from repro.sim.observe import MetricsSampler

        with pytest.raises(ValueError, match="window"):
            MetricsSampler(0.0)


class TestEventTracer:
    def test_ring_bound_and_drop_count(self):
        sim = traced_run({"trace": True, "trace_capacity": 16})
        tracer = sim.observe.tracer
        assert len(tracer) == 16
        assert tracer.dropped == tracer.total - 16 > 0

    def test_records_are_structured(self):
        tracer = traced_run().observe.tracer
        records = tracer.records()
        kinds = {r["kind"] for r in records}
        assert {"event", "wait", "hold", "commit", "abort"} <= kinds
        waits = [r for r in records if r["kind"] == "wait"]
        assert all(
            isinstance(r["site"], str) and isinstance(r["entity"], str)
            for r in waits
        )

    def test_wound_aborts_attributed(self):
        records = traced_run().observe.tracer.records()
        causes = [r["cause"] for r in records if r["kind"] == "abort"]
        assert causes and set(causes) == {"wound"}

    def test_jsonl_export_round_trips(self, tmp_path):
        sim = traced_run()
        path = tmp_path / "trace.jsonl"
        n = sim.observe.tracer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == n == len(sim.observe.tracer)
        parsed = [json.loads(line) for line in lines]
        assert parsed == sim.observe.tracer.records()

    def test_chrome_export_is_valid_trace_event_json(self, tmp_path):
        sim = traced_run()
        path = tmp_path / "trace.json"
        n = sim.observe.tracer.export_chrome(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert isinstance(events, list) and len(events) == n
        for ev in events:
            assert {"name", "ph", "pid"} <= set(ev)
            if ev["ph"] != "C":
                assert "tid" in ev
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))
        phases = {ev["ph"] for ev in events}
        assert {"M", "X", "i", "C"} <= phases
        # One process per site plus the runtime process.
        names = {
            ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "runtime" in names
        assert sum(1 for n_ in names if n_.startswith("site ")) == len(
            sim._site_names
        )
        # Lock spans have non-negative durations.
        assert all(ev["dur"] >= 0 for ev in events if ev["ph"] == "X")

    def test_load_trace_detects_both_formats(self, tmp_path):
        sim = traced_run()
        chrome, jsonl = tmp_path / "t.json", tmp_path / "t.jsonl"
        sim.observe.tracer.export_chrome(str(chrome))
        sim.observe.tracer.export_jsonl(str(jsonl))
        assert load_trace(str(chrome))[0] == "chrome"
        assert load_trace(str(jsonl))[0] == "jsonl"
        assert "abort causes" in summarize_trace(str(jsonl))


class TestFlightRecorder:
    def test_deadlock_detection_dump(self, tmp_path):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem([
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ])
        config = SimulationConfig(
            seed=0, detection_interval=4.0,
            observe=ObserveConfig(flight_recorder=str(tmp_path)),
        )
        sim = Simulator(system, "detect", config)
        result = sim.run()
        assert result.detected >= 1
        dumps = sim.observe.flight.dumps
        assert any(d["reason"] == "deadlock-detected" for d in dumps)
        dump = next(
            d for d in dumps if d["reason"] == "deadlock-detected"
        )
        # The waits-for snapshot still holds the cycle: both edges.
        dot = open(dump["waits_for"]).read()
        assert dot.startswith("digraph")
        assert "n0 -> n1;" in dot and "n1 -> n0;" in dot
        records = [
            json.loads(line) for line in open(dump["events"])
        ]
        assert records, "dump retained no events"

    def test_cascade_threshold_dump(self, tmp_path):
        config_kwargs = {
            "flight_recorder": str(tmp_path),
            "flight_cascade_threshold": 2,
        }
        sim = traced_run(config_kwargs)
        reasons = {d["reason"] for d in sim.observe.flight.dumps}
        assert "abort-cascade" in reasons

    def test_dump_cap(self, tmp_path):
        from repro.sim.observe import FlightRecorder

        recorder = FlightRecorder(str(tmp_path), max_dumps=0)
        recorder.bind(traced_run())  # any sim provides the names
        assert recorder.dump("manual") is None
        assert recorder.dumps == []


class TestCustomSink:
    def test_extra_sink_sees_the_run(self):
        from repro.sim.observe import ProbeSink

        class Counting(ProbeSink):
            def __init__(self):
                self.kinds = {}

            def on_probe(self, kind, time, args):
                self.kinds[kind] = self.kinds.get(kind, 0) + 1

        sink = Counting()
        config = SimulationConfig(seed=5, network_delay=0.5)
        sim = Simulator(contended_system(), "wound-wait", config)
        hub = ObserverHub(sim, ObserveConfig(), extra_sinks=[sink])
        hub.attach()
        sim.observe = hub
        result = sim.run()
        assert sink.kinds["commit"] == result.committed
        assert sink.kinds["abort"] == result.aborts
        assert sink.kinds["wait"] == result.waits


class TestCli:
    def test_simulate_trace_flags_and_trace_subcommand(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "run.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "simulate",
            "--arrival-rate", "0.5",
            "--max-transactions", "40",
            "--hotspot-skew", "0.7",
            "--policies", "wound-wait",
            "--trace-out", str(trace),
            "--metrics-out", str(metrics),
            "--flight-recorder", str(tmp_path / "flight"),
            "--flight-cascade", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace events" in out and "windows" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        series = json.loads(metrics.read_text())
        assert series["windows"]

        rc = main(["trace", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chrome trace" in out

    def test_simulate_multi_policy_suffixes_outputs(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        rc = main([
            "simulate",
            "--arrival-rate", "0.5",
            "--max-transactions", "20",
            "--policies", "wound-wait", "wait-die",
            "--trace-jsonl", str(trace),
        ])
        assert rc == 0
        capsys.readouterr()
        assert (tmp_path / "run-wound-wait-instant.jsonl").exists()
        assert (tmp_path / "run-wait-die-instant.jsonl").exists()

    def test_replicate_runs_get_distinct_flight_dirs(
        self, tmp_path, capsys
    ):
        """--runs N must not funnel every replicate's flight dumps
        into one directory: the dump files are numbered from zero per
        run, so a shared directory silently overwrites run 0's
        evidence with run 1's."""
        rc = main([
            "simulate",
            "--arrival-rate", "0.5",
            "--max-transactions", "30",
            "--policies", "wound-wait",
            "--failure-rate", "0.05",
            "--runs", "2",
            "--flight-recorder", str(tmp_path / "flight"),
        ])
        assert rc == 0
        capsys.readouterr()
        for run in ("flight-run0", "flight-run1"):
            run_dir = tmp_path / run
            assert run_dir.is_dir(), f"{run} missing"
            assert any(run_dir.iterdir()), f"{run} has no dumps"
        assert not (tmp_path / "flight").exists()

    def test_policy_grid_gets_distinct_flight_dirs(
        self, tmp_path, capsys
    ):
        rc = main([
            "simulate",
            "--arrival-rate", "0.5",
            "--max-transactions", "30",
            "--policies", "wound-wait", "wait-die",
            "--failure-rate", "0.05",
            "--flight-recorder", str(tmp_path / "flight"),
        ])
        assert rc == 0
        capsys.readouterr()
        for cell in ("wound-wait-instant", "wait-die-instant"):
            cell_dir = tmp_path / f"flight-{cell}"
            assert cell_dir.is_dir(), f"{cell} missing"
            assert any(cell_dir.iterdir()), f"{cell} has no dumps"
        assert not (tmp_path / "flight").exists()

    def test_sweep_cell_metrics_columns(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        rc = main([
            "sweep",
            "--policies", "wound-wait",
            "--arrival-rates", "0.4",
            "--seeds", "0",
            "--max-transactions", "20",
            "--serial",
            "--cell-metrics", "25",
            "--json", str(out_json),
        ])
        assert rc == 0
        capsys.readouterr()
        cells = json.loads(out_json.read_text())["cells"]
        assert all("peak_inflight" in cell for cell in cells)
        assert all("peak_abort_rate" in cell for cell in cells)
