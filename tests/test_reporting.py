"""Tests for repro.analysis.reporting."""

from repro.analysis.reporting import AuditReport, audit_system
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem

from tests.helpers import seq


def broken_system() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


def clean_system() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
            seq("T2", ["Lx", "Ly", "Ux", "Uy"], schema),
        ]
    )


class TestAuditSystem:
    def test_clean(self):
        report = audit_system(clean_system())
        assert report.ok
        assert report.failing_pairs == []
        assert report.lock_order is not None

    def test_broken(self):
        report = audit_system(broken_system())
        assert not report.ok
        assert report.failing_pairs == [(0, 1)]
        assert report.lock_order is None

    def test_disjoint_pairs_skipped(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [seq("T1", ["Lx", "Ux"], schema), seq("T2", ["Ly", "Uy"], schema)]
        )
        report = audit_system(system)
        assert report.pair_verdicts == {}
        assert report.ok


class TestToText:
    def test_clean_text(self):
        text = audit_system(clean_system()).to_text()
        assert "SAFE AND DEADLOCK-FREE" in text
        assert "global lock order" in text

    def test_broken_text(self):
        text = audit_system(broken_system()).to_text()
        assert "VIOLATION" in text
        assert "repair_system" in text

    def test_certified_without_order(self):
        """A system certified by Theorem 4 but with no single global
        lock order (incomparable orders on disjoint pairs are fine)."""
        schema = DatabaseSchema.single_site(["x", "y", "z"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
            ]
        )
        report = audit_system(system)
        if report.ok and report.lock_order is None:
            assert "regardless" in report.to_text()


class TestResultSerialization:
    """SimulationResult.to_json / from_json round trip."""

    def _populated_result(self):
        from repro.sim import SimulationConfig, simulate

        config = SimulationConfig(seed=11, detection_interval=4.0)
        result = simulate(broken_system(), "detect", config)
        assert result.committed == 2  # the deadlock was broken
        return result

    def test_round_trip_is_identity(self):
        from repro.sim.metrics import SimulationResult

        result = self._populated_result()
        clone = SimulationResult.from_json(result.to_json())
        assert clone == result
        # Tuple-typed fields come back as tuples, not JSON lists.
        assert isinstance(clone.deadlock_cycle, tuple)

    def test_round_trip_preserves_timeseries(self):
        from repro.sim import ObserveConfig, SimulationConfig, simulate
        from repro.sim.metrics import SimulationResult

        config = SimulationConfig(
            seed=11,
            detection_interval=4.0,
            observe=ObserveConfig(metrics_window=5.0),
        )
        result = simulate(broken_system(), "detect", config)
        assert result.timeseries is not None
        clone = SimulationResult.from_json(result.to_json(indent=2))
        assert clone.timeseries == result.timeseries
        assert clone == result

    def test_from_dict_ignores_unknown_keys(self):
        from repro.sim.metrics import SimulationResult

        data = self._populated_result().to_dict()
        data["peak_inflight"] = 3.5  # a sweep-record extra column
        data["format_version"] = 99
        clone = SimulationResult.from_dict(data)
        assert clone == self._populated_result()

    def test_derived_metrics_survive(self):
        from repro.sim.metrics import SimulationResult

        result = self._populated_result()
        clone = SimulationResult.from_json(result.to_json())
        assert clone.throughput == result.throughput
        assert (
            clone.latency_percentiles("total")
            == result.latency_percentiles("total")
        )
