"""Every property the paper asserts about Figures 1, 2, 3, 5 and 6,
checked against the library and the exhaustive oracle."""

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.pairs import check_pair
from repro.analysis.theorem1 import find_deadlock_prefix
from repro.analysis.tirri import find_two_entity_pattern
from repro.core.reduction import (
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.core.system import TransactionSystem
from repro.paper import figures


class TestFigure1:
    def test_sites(self):
        system = figures.figure1()
        assert system.schema.site_of("x") == system.schema.site_of("y")
        assert system.schema.site_of("z") != system.schema.site_of("x")

    def test_prefix_is_deadlock_prefix(self):
        system = figures.figure1()
        prefix = figures.figure1_prefix(system)
        assert prefix_has_schedule(prefix) is not None
        assert is_deadlock_prefix(prefix)

    def test_quoted_cycle_nodes_present(self):
        """The paper's cycle L1z U1y L2y U2x L3x U3z appears (as a cycle
        through those nodes; Hasse transitivity may add intermediates)."""
        system = figures.figure1()
        prefix = figures.figure1_prefix(system)
        cycle = reduction_graph(prefix).find_cycle()
        labels = {system.describe_node(g) for g in cycle}
        assert {"L1z", "U1y", "L2y", "L3x", "U3z"} <= labels

    def test_paper_arc_u1x_l2x(self):
        """Figure 1d: T1 locks and unlocks x before T2 locks it."""
        prefix = figures.figure1_prefix()
        schedule = prefix_has_schedule(prefix)
        assert schedule.lock_sequence("x") == [0, 1]

    def test_system_deadlocks(self):
        system = figures.figure1()
        assert find_deadlock(system) is not None


class TestFigure2:
    def test_identical_syntax(self):
        system = figures.figure2()
        t1, t2 = system[0], system[1]
        assert t1.ops == t2.ops
        assert t1.dag == t2.dag

    def test_tirri_premise_absent(self):
        system = figures.figure2()
        assert find_two_entity_pattern(system[0], system[1]) is None

    def test_prefix_deadlocks_through_four_entities(self):
        system = figures.figure2()
        prefix = figures.figure2_prefix(system)
        assert is_deadlock_prefix(prefix)
        cycle = reduction_graph(prefix).find_cycle()
        entities = {
            system[g.txn].ops[g.node].entity for g in cycle
        }
        assert entities == {"v", "t", "z", "w"}

    def test_system_deadlocks(self):
        assert find_deadlock(figures.figure2()) is not None


class TestFigure3:
    def test_partial_orders_deadlock_free(self):
        assert find_deadlock(figures.figure3()) is None
        assert find_deadlock_prefix(figures.figure3()) is None

    def test_extensions_deadlock(self):
        assert find_deadlock(figures.figure3_extensions()) is not None

    def test_extensions_are_extensions(self):
        """t1, t2 really are linear extensions of the Figure 3 dag."""
        system = figures.figure3()
        extensions = figures.figure3_extensions()
        for i in (0, 1):
            target = [str(op) for op in _sequence(extensions[i])]
            found = [
                [str(ext.ops[n]) for n in ext.dag.topological_order()]
                for ext in system[i].linear_extensions()
            ]
            assert target in found


def _sequence(transaction):
    return [
        transaction.ops[n] for n in transaction.dag.topological_order()
    ]


class TestFigure5:
    def test_formula_shape(self):
        formula = figures.figure5_formula()
        assert formula.clause_count == 3
        assert formula.is_three_sat_prime()
        assert str(formula) == "(x1 | x2) & (x1 | ~x2) & (~x1 | x2)"


class TestFigure6:
    def test_two_copies_deadlock_free(self):
        t = figures.figure6()
        assert find_deadlock(TransactionSystem.of_copies(t, 2)) is None

    def test_three_copies_deadlock(self):
        t = figures.figure6()
        witness = find_deadlock(TransactionSystem.of_copies(t, 3))
        assert witness is not None

    def test_four_copies_deadlock_too(self):
        t = figures.figure6()
        assert (
            find_deadlock(TransactionSystem.of_copies(t, 4)) is not None
        )

    def test_pair_check_consistently_fails(self):
        """Safe+DF already fails for 2 copies (no common first lock), so
        Theorem 5 is not contradicted by the figure."""
        t = figures.figure6()
        pair = TransactionSystem.of_copies(t, 2)
        assert not check_pair(pair[0], pair[1])
