"""Tests for repro.sim.workload (random generators)."""

import random

import pytest

from repro.analysis.policies import follows_lock_order
from repro.sim.workload import (
    WorkloadSpec,
    random_schema,
    random_system,
    random_transaction,
)


class TestSpec:
    def test_defaults_valid(self):
        WorkloadSpec()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(shape="mystery")


class TestRandomSchema:
    def test_all_entities_placed(self):
        schema = random_schema(random.Random(0), 8, 3)
        assert len(schema.entities) == 8
        assert len(schema.sites) == 3

    def test_more_sites_than_entities(self):
        schema = random_schema(random.Random(0), 2, 5)
        assert len(schema.sites) == 2


class TestRandomTransaction:
    def test_validity_across_seeds_and_shapes(self):
        """Construction must always produce a well-formed transaction
        (validation happens inside Transaction.__init__)."""
        for shape in ("random", "two_phase", "sequential", "ordered_2pl"):
            for seed in range(30):
                rng = random.Random(seed)
                schema = random_schema(rng, 6, 3)
                spec = WorkloadSpec(shape=shape, actions_per_entity=(0, 2))
                t = random_transaction("T", rng, schema, spec)
                assert t.entities

    def test_sequential_shape_is_total_order(self):
        rng = random.Random(1)
        schema = random_schema(rng, 5, 2)
        spec = WorkloadSpec(shape="sequential")
        t = random_transaction("T", rng, schema, spec)
        assert t.is_sequential()

    def test_two_phase_shape_is_two_phase(self):
        for seed in range(20):
            rng = random.Random(seed)
            schema = random_schema(rng, 6, 3)
            spec = WorkloadSpec(shape="two_phase")
            t = random_transaction("T", rng, schema, spec)
            assert t.is_two_phase(), f"seed {seed}"

    def test_ordered_2pl_follows_global_order(self):
        for seed in range(20):
            rng = random.Random(seed)
            schema = random_schema(rng, 6, 3)
            spec = WorkloadSpec(shape="ordered_2pl")
            t = random_transaction("T", rng, schema, spec)
            assert t.is_two_phase()
            assert follows_lock_order(t, sorted(schema.entities))

    def test_fixed_entities(self):
        rng = random.Random(2)
        schema = random_schema(rng, 6, 2)
        spec = WorkloadSpec()
        t = random_transaction(
            "T", rng, schema, spec, entities=["e0", "e1"]
        )
        assert t.entities == {"e0", "e1"}

    def test_hotspot_skew_concentrates(self):
        spec_uniform = WorkloadSpec(hotspot_skew=0.0, entities_per_txn=(2, 2))
        spec_hot = WorkloadSpec(hotspot_skew=3.0, entities_per_txn=(2, 2))
        hot_hits = uniform_hits = 0
        for seed in range(120):
            rng = random.Random(seed)
            schema = random_schema(rng, 8, 2)
            if "e0" in random_transaction(
                "T", rng, schema, spec_hot
            ).entities:
                hot_hits += 1
            rng = random.Random(seed)
            schema = random_schema(rng, 8, 2)
            if "e0" in random_transaction(
                "T", rng, schema, spec_uniform
            ).entities:
                uniform_hits += 1
        assert hot_hits > uniform_hits


class TestRandomSystem:
    def test_system_size(self):
        system = random_system(
            random.Random(0), WorkloadSpec(n_transactions=5)
        )
        assert len(system) == 5

    def test_ordered_2pl_system_certified(self):
        """ordered_2pl workloads pass the paper's static test."""
        from repro.analysis.fixed_k import check_system

        for seed in range(10):
            system = random_system(
                random.Random(seed),
                WorkloadSpec(n_transactions=4, shape="ordered_2pl"),
            )
            assert check_system(system), f"seed {seed}"


class TestSpecValidation:
    """WorkloadSpec.__post_init__ rejects nonsensical parameters."""

    def test_defaults_are_valid(self):
        WorkloadSpec()

    def test_rejects_inverted_entities_range(self):
        with pytest.raises(ValueError, match="entities_per_txn.*lo > hi"):
            WorkloadSpec(entities_per_txn=(4, 2))

    def test_rejects_inverted_actions_range(self):
        with pytest.raises(
            ValueError, match="actions_per_entity.*lo > hi"
        ):
            WorkloadSpec(actions_per_entity=(3, 1))

    def test_rejects_negative_range_bounds(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkloadSpec(entities_per_txn=(-1, 2))
        with pytest.raises(ValueError, match="non-negative"):
            WorkloadSpec(actions_per_entity=(-2, -1))

    def test_rejects_cross_arc_p_outside_unit_interval(self):
        with pytest.raises(ValueError, match="cross_arc_p"):
            WorkloadSpec(cross_arc_p=-0.1)
        with pytest.raises(ValueError, match="cross_arc_p"):
            WorkloadSpec(cross_arc_p=1.5)

    def test_rejects_negative_hotspot_skew(self):
        with pytest.raises(ValueError, match="hotspot_skew"):
            WorkloadSpec(hotspot_skew=-0.5)

    def test_rejects_empty_pools(self):
        with pytest.raises(ValueError, match="n_entities"):
            WorkloadSpec(n_entities=0)
        with pytest.raises(ValueError, match="n_sites"):
            WorkloadSpec(n_sites=0)
        with pytest.raises(ValueError, match="n_transactions"):
            WorkloadSpec(n_transactions=-1)

    def test_rejects_unknown_shape_still(self):
        with pytest.raises(ValueError, match="shape"):
            WorkloadSpec(shape="zigzag")

    def test_boundary_values_accepted(self):
        WorkloadSpec(
            entities_per_txn=(0, 0),
            actions_per_entity=(2, 2),
            cross_arc_p=1.0,
            hotspot_skew=0.0,
            n_transactions=0,
        )
