"""Paxos Commit (Gray & Lamport): failover, majority, degeneracy.

The scenarios orchestrate crashes *directly* — a custom event handler
crashes and repairs chosen sites at chosen times, reusing the failure
injector's crash semantics without its randomness — so every claim
(takeover masks a coordinator crash, a minority of dead acceptors is
harmless, F=0 is 2PC) is pinned deterministically rather than hoped
for across seeds.
"""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.commit import PaxosCommit, TwoPhaseCommit, make_protocol
from repro.sim.runtime import SimulationConfig, Simulator, simulate

from tests.helpers import seq

THREE_SITE_SCHEMA = DatabaseSchema.from_groups(
    {"s1": ["x"], "s2": ["y"], "s3": ["z"]}
)


def spanning_txn() -> TransactionSystem:
    """One transaction touching all three sites; s1 coordinates."""
    return TransactionSystem(
        [seq("T1", ["Lx", "Ly", "Lz", "Ux", "Uy", "Uz"],
             THREE_SITE_SCHEMA)]
    )


def two_site_txn() -> TransactionSystem:
    """One transaction on s1+s2; s3 is a pure acceptor site."""
    return TransactionSystem(
        [seq("T1", ["Lx", "Ly", "Ux", "Uy"], THREE_SITE_SCHEMA)]
    )


def scripted_sim(
    system: TransactionSystem,
    protocol: str,
    schedule: list[tuple[float, str, str]],
    fault_tolerance: int = 1,
) -> Simulator:
    """A simulator with (time, "crash"|"recover", site) events queued.

    The handlers replay ``FailureInjector``'s transition semantics
    (replica bookkeeping, the up/down flag, the abort cascade) without
    the injector's RNG or rescheduling, so the fault pattern is exactly
    the script and nothing else.
    """
    sim = Simulator(
        system,
        "wound-wait",
        SimulationConfig(
            commit_protocol=protocol,
            commit_fault_tolerance=fault_tolerance,
            network_delay=1.0,
            commit_timeout=6.0,
        ),
    )
    # Without an injector, site_is_up() fast-paths to True; a sentinel
    # makes the runtime consult the per-site flags the script flips
    # (nothing dereferences the injector beyond a None check).
    sim.failures = object()

    def crash(site: str) -> None:
        sim.replicas.on_crash(site)
        sim._mark_site(site, False)
        sim.result.crashes += 1
        sim.crash_site(site)

    def recover(site: str) -> None:
        sim.replicas.on_recover(site)
        sim._mark_site(site, True)

    sim.register_handler("scripted_crash", crash)
    sim.register_handler("scripted_recover", recover)
    for time, action, site in schedule:
        sim.schedule(time, (f"scripted_{action}", site))
    return sim


def exec_done_time(system: TransactionSystem) -> float:
    """When T1 finishes executing, in absolute simulation time.

    An ``instant``-commit probe run: its queue drains the moment the
    single transaction commits, which is exactly execution completion
    (commit-protocol choice never changes an uncontended execution
    timeline, and latencies are measured from the staggered arrival,
    not from zero — hence ``end_time``, not ``exec_latencies[0]``).
    The probe uses the scripted runs' network delay because cross-site
    *execution* hops are charged it too.
    """
    probe = simulate(
        system,
        "wound-wait",
        SimulationConfig(commit_protocol="instant", network_delay=1.0),
    )
    assert probe.committed == 1
    return probe.end_time


class TestAcceptorSites:
    def _sim(self) -> Simulator:
        return Simulator(
            spanning_txn(),
            "wound-wait",
            SimulationConfig(commit_protocol="paxos-commit"),
        )

    def test_rotation_starts_at_the_coordinator(self):
        sim = self._sim()
        assert sim.acceptor_sites("s1", 3) == ("s1", "s2", "s3")
        assert sim.acceptor_sites("s2", 3) == ("s2", "s3", "s1")
        assert sim.acceptor_sites("s3", 2) == ("s3", "s1")

    def test_count_is_clamped_to_the_schema(self):
        sim = self._sim()
        # F=2 wants 5 acceptors; a 3-site schema seats 3.
        assert sim.acceptor_sites("s1", 5) == ("s1", "s2", "s3")
        assert sim.acceptor_sites("s1", 0) == ("s1",)

    def test_negative_f_is_clamped(self):
        sim = Simulator(
            spanning_txn(),
            "wound-wait",
            SimulationConfig(
                commit_protocol="paxos-commit", commit_fault_tolerance=-3
            ),
        )
        assert sim.commit.fault_tolerance == 0


class TestFailureFree:
    def test_same_decisions_and_times_as_two_phase(self):
        """Without failures the acceptor bank only adds messages: the
        leader reaches majority at the instant 2PC's coordinator
        collects the direct vote (the co-located registrar's relay is
        free and the direct-to-leader vote travels one hop)."""
        config = dict(network_delay=1.0, commit_timeout=6.0)
        tp = simulate(
            spanning_txn(), "wound-wait",
            SimulationConfig(commit_protocol="two-phase", **config),
        )
        px = simulate(
            spanning_txn(), "wound-wait",
            SimulationConfig(
                commit_protocol="paxos-commit",
                commit_fault_tolerance=1,
                **config,
            ),
        )
        assert px.committed == tp.committed == 1
        assert px.latencies == tp.latencies
        assert px.commit_latencies == tp.commit_latencies
        assert px.commit_messages > tp.commit_messages
        assert px.acceptor_messages > 0
        assert px.coordinator_takeovers == 0
        # Acceptor traffic is a subset of the commit-message ledger.
        assert px.acceptor_messages <= px.commit_messages

    def test_f0_without_failures_matches_two_phase_messages(self):
        tp = simulate(
            spanning_txn(), "wound-wait",
            SimulationConfig(
                commit_protocol="two-phase", network_delay=1.0
            ),
        )
        px = simulate(
            spanning_txn(), "wound-wait",
            SimulationConfig(
                commit_protocol="paxos-commit",
                commit_fault_tolerance=0,
                network_delay=1.0,
            ),
        )
        assert px.commit_messages == tp.commit_messages
        assert px.commit_latencies == tp.commit_latencies


class TestTakeover:
    def test_takeover_masks_a_coordinator_crash(self):
        """The round's leader (s1) crashes mid-round; s2 deposes it,
        recovers the registered votes in phase 1, and commits long
        before s1 repairs — the stall 2PC cannot avoid."""
        t = exec_done_time(spanning_txn())
        sim = scripted_sim(
            spanning_txn(),
            "paxos-commit",
            [(t + 0.5, "crash", "s1"), (t + 20.0, "recover", "s1")],
        )
        result = sim.run()
        assert result.committed == 1
        assert result.coordinator_takeovers == 1
        assert result.commit_aborts == 0
        # Decision well before s1's repair: takeover at t+6 plus one
        # phase-1 round trip to the surviving acceptor.
        assert result.commit_latencies[0] == pytest.approx(8.0)
        for site in sim._sites.values():
            assert site.involved() == []

    def test_two_phase_stalls_on_the_same_fault(self):
        """The control arm: identical crash script under classic 2PC
        blocks until the coordinator repairs, so Paxos Commit's commit
        latency is strictly smaller."""
        t = exec_done_time(spanning_txn())
        script = [(t + 0.5, "crash", "s1"), (t + 20.0, "recover", "s1")]
        tp = scripted_sim(spanning_txn(), "two-phase", script).run()
        px_latency = 8.0  # pinned above
        assert tp.committed == 1
        assert tp.coordinator_takeovers == 0
        assert tp.commit_latencies[0] > 20.0 - 0.5
        assert px_latency < tp.commit_latencies[0]

    def test_f0_has_no_takeover_candidate(self):
        """At F=0 the lone acceptor is the coordinator: the scripted
        crash leaves no one to depose it, reproducing 2PC's stall."""
        t = exec_done_time(spanning_txn())
        script = [(t + 0.5, "crash", "s1"), (t + 20.0, "recover", "s1")]
        result = scripted_sim(
            spanning_txn(), "paxos-commit", script, fault_tolerance=0
        ).run()
        assert result.committed == 1
        assert result.coordinator_takeovers == 0
        assert result.commit_latencies[0] > 20.0 - 0.5


class TestMajority:
    def test_minority_of_dead_acceptors_is_harmless(self):
        """s3 hosts an acceptor but no participant; with it down the
        other two acceptors still form a majority, so the round
        commits at 2PC speed with zero takeovers."""
        t = exec_done_time(two_site_txn())
        assert t > 0.5
        sim = scripted_sim(
            two_site_txn(),
            "paxos-commit",
            [(0.1, "crash", "s3"), (t + 40.0, "recover", "s3")],
        )
        result = sim.run()
        assert result.committed == 1
        assert result.coordinator_takeovers == 0
        tp = simulate(
            two_site_txn(), "wound-wait",
            SimulationConfig(
                commit_protocol="two-phase",
                network_delay=1.0,
                commit_timeout=6.0,
            ),
        )
        assert result.commit_latencies == tp.commit_latencies

    def test_down_participant_still_aborts_the_round(self):
        """Paxos Commit replicates the *registrars*, not the
        participants: a voter that dies unprepared aborts the round
        exactly as in 2PC (the acceptor bank cannot vote for it)."""
        t = exec_done_time(spanning_txn())
        sim = scripted_sim(
            spanning_txn(),
            "paxos-commit",
            # s3's vote is in flight when it dies; at retry time the
            # missing voter is down, so the leader decides ABORT. The
            # restarted attempt then runs to commit after s3 repairs.
            [(t + 0.5, "crash", "s3"), (t + 9.0, "recover", "s3")],
        )
        result = sim.run()
        assert result.commit_aborts >= 1
        assert result.committed == 1  # the retry attempt succeeds
        assert result.coordinator_takeovers == 0


class TestProtocolShape:
    def test_paxos_is_a_two_phase_subclass(self):
        proto = make_protocol("paxos-commit")
        assert isinstance(proto, PaxosCommit)
        assert isinstance(proto, TwoPhaseCommit)
        assert proto.retains_locks is True
        assert proto.notify_on_abort is True
