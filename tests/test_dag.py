"""Unit and property tests for repro.util.dag."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitset import bits_of, from_indices
from repro.util.dag import CycleError, Dag, DagBuilder


def diamond() -> Dag:
    """0 -> {1, 2} -> 3."""
    return Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@st.composite
def random_dags(draw, max_nodes=7):
    """Random DAG: arcs only forward along a hidden permutation."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    perm = draw(st.permutations(range(n)))
    arcs = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                arcs.append((perm[i], perm[j]))
    return Dag(n, arcs)


class TestConstruction:
    def test_empty(self):
        dag = Dag(0)
        assert dag.n == 0
        assert dag.topological_order() == []

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Dag(2, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Dag(2, [(0, 5)])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError) as info:
            Dag(3, [(0, 1), (1, 2), (2, 0)])
        assert set(info.value.cycle) == {0, 1, 2}

    def test_duplicate_arcs_merged(self):
        dag = Dag(2, [(0, 1), (0, 1)])
        assert dag.arcs == frozenset({(0, 1)})


class TestClosure:
    def test_diamond_descendants(self):
        dag = diamond()
        assert set(bits_of(dag.descendants(0))) == {1, 2, 3}
        assert set(bits_of(dag.descendants(1))) == {3}
        assert dag.descendants(3) == 0

    def test_diamond_ancestors(self):
        dag = diamond()
        assert set(bits_of(dag.ancestors(3))) == {0, 1, 2}
        assert dag.ancestors(0) == 0

    def test_precedes(self):
        dag = diamond()
        assert dag.precedes(0, 3)
        assert not dag.precedes(3, 0)
        assert not dag.precedes(1, 2)

    def test_comparable(self):
        dag = diamond()
        assert dag.comparable(0, 3)
        assert not dag.comparable(1, 2)


class TestTopologicalOrder:
    def test_respects_arcs(self):
        dag = diamond()
        order = dag.topological_order()
        pos = {u: i for i, u in enumerate(order)}
        for u, v in dag.arcs:
            assert pos[u] < pos[v]

    @given(random_dags())
    def test_property_respects_arcs(self, dag):
        order = dag.topological_order()
        assert sorted(order) == list(range(dag.n))
        pos = {u: i for i, u in enumerate(order)}
        for u, v in dag.arcs:
            assert pos[u] < pos[v]


class TestLinearExtensions:
    def test_diamond_count(self):
        # 0 first, 3 last, 1/2 in either order: 2 extensions.
        assert len(list(diamond().linear_extensions())) == 2

    def test_antichain_count(self):
        dag = Dag(3)
        assert len(list(dag.linear_extensions())) == 6

    @given(random_dags(max_nodes=6))
    @settings(max_examples=40)
    def test_every_extension_is_topological(self, dag):
        extensions = list(dag.linear_extensions())
        assert len(extensions) == len(set(extensions))
        for ext in extensions:
            pos = {u: i for i, u in enumerate(ext)}
            for u, v in dag.arcs:
                assert pos[u] < pos[v]

    @given(random_dags(max_nodes=6))
    @settings(max_examples=40)
    def test_count_matches_enumeration(self, dag):
        assert dag.count_linear_extensions() == len(
            list(dag.linear_extensions())
        )


class TestDownSets:
    def test_chain_down_sets(self):
        dag = Dag(3, [(0, 1), (1, 2)])
        assert sorted(dag.down_sets()) == [0b000, 0b001, 0b011, 0b111]

    @given(random_dags(max_nodes=6))
    @settings(max_examples=40)
    def test_down_sets_are_down_closed(self, dag):
        seen = set()
        for mask in dag.down_sets():
            assert mask not in seen
            seen.add(mask)
            assert dag.is_down_set(mask)

    @given(random_dags(max_nodes=5))
    @settings(max_examples=30)
    def test_down_set_enumeration_complete(self, dag):
        """Every down-closed subset appears in the enumeration."""
        enumerated = set(dag.down_sets())
        for mask in range(1 << dag.n):
            assert (mask in enumerated) == dag.is_down_set(mask)

    def test_down_closure(self):
        dag = diamond()
        assert dag.down_closure(from_indices([3])) == 0b1111
        assert dag.down_closure(from_indices([1])) == 0b0011


class TestMinimalNodes:
    def test_full_graph(self):
        dag = diamond()
        assert dag.minimal_nodes(dag.all_nodes_mask()) == 0b0001

    def test_residual(self):
        dag = diamond()
        # After executing {0}: minimal remaining are 1 and 2.
        remaining = dag.all_nodes_mask() & ~1
        assert set(bits_of(dag.minimal_nodes(remaining))) == {1, 2}


class TestMaximalDownSetAvoiding:
    def test_avoid_top(self):
        dag = diamond()
        assert dag.maximal_down_set_avoiding(from_indices([3])) == 0b0111

    def test_avoid_root_removes_everything(self):
        dag = diamond()
        assert dag.maximal_down_set_avoiding(from_indices([0])) == 0

    @given(random_dags(max_nodes=6), st.integers(min_value=0))
    @settings(max_examples=40)
    def test_result_is_maximal(self, dag, seed):
        rng = random.Random(seed)
        forbidden = from_indices(
            u for u in range(dag.n) if rng.random() < 0.3
        )
        result = dag.maximal_down_set_avoiding(forbidden)
        assert dag.is_down_set(result)
        assert result & forbidden == 0
        # maximality: every down-set avoiding `forbidden` is contained
        for mask in dag.down_sets():
            if mask & forbidden == 0:
                assert mask & ~result == 0


class TestTransitiveReduction:
    def test_removes_transitive_arc(self):
        dag = Dag(3, [(0, 1), (1, 2), (0, 2)])
        assert dag.transitive_reduction().arcs == frozenset(
            {(0, 1), (1, 2)}
        )

    @given(random_dags(max_nodes=6))
    @settings(max_examples=40)
    def test_preserves_order(self, dag):
        reduced = dag.transitive_reduction()
        for u in range(dag.n):
            assert reduced.descendants(u) == dag.descendants(u)
        assert reduced.arcs <= dag.transitive_closure_arcs()


class TestRestrictedTo:
    def test_induced_subgraph(self):
        dag = diamond()
        sub = dag.restricted_to(from_indices([0, 1, 3]))
        # renumbered: 0->0, 1->1, 3->2
        assert sub.n == 3
        assert sub.arcs == frozenset({(0, 1), (1, 2)})


class TestDagBuilder:
    def test_chain(self):
        b = DagBuilder()
        nodes = b.add_nodes(3)
        b.add_chain(nodes)
        dag = b.build()
        assert dag.precedes(nodes[0], nodes[2])

    def test_node_count(self):
        b = DagBuilder()
        b.add_node()
        b.add_node()
        assert b.node_count == 2

    def test_build_validates(self):
        b = DagBuilder()
        u, v = b.add_nodes(2)
        b.add_arc(u, v)
        b.add_arc(v, u)
        with pytest.raises(CycleError):
            b.build()


class TestEquality:
    def test_equal(self):
        assert Dag(2, [(0, 1)]) == Dag(2, [(0, 1)])

    def test_not_equal(self):
        assert Dag(2, [(0, 1)]) != Dag(2)

    def test_hashable(self):
        assert len({Dag(2, [(0, 1)]), Dag(2, [(0, 1)])}) == 1
