"""Tests for Graphviz export (repro.io.dot)."""

from repro.core.schedule import Schedule
from repro.io.dot import (
    d_graph_to_dot,
    digraph_to_dot,
    system_to_dot,
    transaction_to_dot,
)
from repro.paper import figures
from repro.util.graphs import Digraph

from tests.helpers import seq


class TestTransactionToDot:
    def test_contains_nodes_and_sites(self):
        system = figures.figure1()
        dot = transaction_to_dot(system[0])
        assert dot.startswith('digraph "T1"')
        assert '"Lx"' in dot and '"Uz"' in dot
        assert '"site1"' in dot and '"site2"' in dot

    def test_quoting(self):
        t = seq("T", ['La"b', 'Ua"b'])
        dot = transaction_to_dot(t)
        assert '\\"' in dot


class TestSystemToDot:
    def test_clusters_per_transaction(self):
        dot = system_to_dot(figures.figure3())
        assert dot.count("subgraph") == 2
        assert '"T1"' in dot and '"T2"' in dot


class TestDigraphToDot:
    def test_labels(self):
        g = Digraph()
        g.add_arc("a", "b", label="x")
        dot = digraph_to_dot(g)
        assert '[label="x"]' in dot

    def test_unlabelled(self):
        g = Digraph()
        g.add_arc("a", "b")
        dot = digraph_to_dot(g)
        assert "->" in dot


class TestDGraphToDot:
    def test_serialization_graph(self):
        system = figures.figure3()
        dot = d_graph_to_dot(Schedule.serial(system))
        assert '"T1"' in dot and '"T2"' in dot
