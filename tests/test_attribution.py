"""Unit tests for latency attribution: conservation, blame, sampling.

The engine's headline invariant — segment sums equal the run's own
measured latency split *bit-exactly*, no tolerance — is asserted here
per committed transaction against ``result.exec_latencies`` /
``result.commit_latencies``, across protocols.  The rest covers the
consumer surface: hotspot detection on a crafted workload, the blame
graph and its DOT export, abort-cost accounting, 1-in-N sampling, the
offline ``repro analyze`` path (which must agree with the online sink
bit-for-bit), result serialization, and the sweep columns.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core.system import TransactionSystem
from repro.io.dot import blame_graph_to_dot
from repro.sim import ObserveConfig, SimulationConfig, Simulator
from repro.sim.metrics import SimulationResult
from repro.sim.observe.attribution import (
    SEGMENTS,
    analyze_trace,
    render_report,
)
from repro.sim.workload import WorkloadSpec, random_system


def hotspot_spec(**overrides) -> WorkloadSpec:
    """An open-system workload with entity e0 as the designed hotspot.

    ``hotspot_skew`` draws entities Zipf-style over the sorted pool,
    so the first entity is the configured hot one by construction.
    """
    kwargs = dict(
        n_entities=6, n_sites=3, entities_per_txn=(2, 4),
        hotspot_skew=2.0,
    )
    kwargs.update(overrides)
    return WorkloadSpec(**kwargs)


_DEFAULT = object()


def attributed_run(
    policy="wound-wait", observe=_DEFAULT, **config_overrides
):
    if observe is _DEFAULT:
        observe = ObserveConfig(attribution=True)
    kwargs = dict(
        seed=5, network_delay=0.4, arrival_rate=0.6,
        max_transactions=60, warmup_time=5.0,
        workload=hotspot_spec(), observe=observe,
    )
    kwargs.update(config_overrides)
    sim = Simulator(
        TransactionSystem([]), policy, SimulationConfig(**kwargs)
    )
    sim.run()
    return sim


def assert_conserved_bit_exactly(sim):
    """Every committed transaction's segments reproduce the result's
    own exec/commit latency split with ``==``, not ``pytest.approx``."""
    engine = sim.observe.attribution.engine
    result = sim.result
    assert engine.check() == []
    assert engine.transactions, "no committed transactions tracked"
    for txn, entry in engine.transactions.items():
        seg = entry["segments"]
        exec_latency = result.exec_latencies[txn]
        commit_latency = result.commit_latencies[txn]
        assert entry["exec_done"] - entry["start"] == exec_latency
        assert seg["commit"] == commit_latency
        assert seg["service"] == (
            exec_latency
            - seg["admission"]
            - seg["lock_wait"]
            - seg["coordinator"]
            - seg["fanout"]
        )
        assert all(seg[name] >= -1e-9 for name in SEGMENTS)


class TestConservation:
    @pytest.mark.parametrize(
        "protocol", ["instant", "two-phase", "presumed-abort"]
    )
    def test_open_system_conserves(self, protocol):
        sim = attributed_run(commit_protocol=protocol)
        assert_conserved_bit_exactly(sim)

    def test_closed_batch_conserves(self):
        spec = hotspot_spec(n_transactions=14)
        system = random_system(random.Random(3), spec)
        observe = ObserveConfig(attribution=True)
        config = SimulationConfig(
            seed=5, network_delay=0.5, commit_protocol="two-phase",
            observe=observe,
        )
        sim = Simulator(system, "wound-wait", config)
        sim.run()
        assert_conserved_bit_exactly(sim)

    def test_failure_injected_run_conserves(self):
        sim = attributed_run(
            commit_protocol="two-phase", failure_rate=0.01,
            repair_time=8.0,
        )
        assert_conserved_bit_exactly(sim)

    def test_replicated_run_conserves(self):
        sim = attributed_run(
            workload=hotspot_spec(
                replication_factor=3, read_fraction=0.3
            ),
            replica_protocol="rowa-available",
            failure_rate=0.002, repair_time=8.0,
        )
        assert_conserved_bit_exactly(sim)

    def test_summary_reports_exact(self):
        summary = attributed_run().result.attribution
        conservation = summary["conservation"]
        assert conservation["exact"] is True
        assert conservation["transactions"] == summary["committed"]
        assert conservation["min_service"] >= 0.0
        # Segment totals are the per-transaction sums: drift between
        # the closure service term and the wall-clock service time is
        # floating-point noise, not a modeling gap.
        assert conservation["max_service_drift"] < 1e-9


class TestBehaviourTransparency:
    def test_attribution_changes_nothing_observable(self):
        plain = attributed_run(observe=None).result
        observed = attributed_run().result
        assert observed.exec_latencies == plain.exec_latencies
        assert observed.commit_latencies == plain.commit_latencies
        assert observed.aborts == plain.aborts
        assert observed.end_time == plain.end_time
        assert plain.attribution is None
        assert observed.attribution is not None


class TestContentionProfile:
    def test_hotspot_is_the_configured_hot_entity(self):
        summary = attributed_run().result.attribution
        assert summary["hotspot"]["entity"] == "e0"
        assert 0.0 < summary["hotspot"]["share"] <= 1.0
        top_cell = summary["hot_cells"][0]
        assert top_cell["entity"] == "e0"
        assert top_cell["blocked_time"] > 0

    def test_cell_shares_sum_to_one(self):
        summary = attributed_run(
            observe=ObserveConfig(attribution=True)
        ).result.attribution
        shares = [c["share"] for c in summary["hot_cells"]]
        # Six entities over three sites: few enough cells that the
        # top-K list is exhaustive and the shares partition the total.
        assert sum(shares) == pytest.approx(1.0)

    def test_convoy_detection_on_hot_cell(self):
        summary = attributed_run().result.attribution
        top_cell = summary["hot_cells"][0]
        assert top_cell["peak_queue"] >= 3
        assert top_cell["convoy_time"] > 0

    def test_blame_graph_shape(self):
        edges = attributed_run().observe.attribution.blame_edge_list()
        assert edges
        assert edges == sorted(
            edges, key=lambda e: -e["time"]
        )
        for edge in edges:
            assert edge["waiter"] != edge["holder"]
            assert edge["time"] > 0

    def test_abort_cost_accounting(self):
        sim = attributed_run()
        summary = sim.result.attribution
        aborts = summary["aborts"]
        total_counted = sum(
            c["count"] for c in aborts["by_cause"].values()
        )
        assert total_counted == sim.result.aborts
        assert set(aborts["by_cause"]) == {"wound"}
        assert aborts["wasted_time"] > 0
        assert 0.0 < aborts["wasted_fraction"] < 1.0


class TestSampling:
    def test_sampled_summary_is_marked_and_conserves(self):
        sim = attributed_run(
            observe=ObserveConfig(attribution=True, sample_every=4)
        )
        summary = sim.result.attribution
        assert summary["sampled"] is True
        assert summary["sample_every"] == 4
        assert summary["committed"] < sim.result.committed
        # Conservation still holds bit-exactly over the sampled
        # population — sampling drops transactions, not precision.
        assert_conserved_bit_exactly(sim)
        assert set(sim.observe.attribution.engine.transactions) == {
            txn for txn in range(sim.result.total) if txn % 4 == 0
            and sim.result.commit_latencies[txn] >= 0
        }

    def test_sampled_cause_counts_stay_exact(self):
        full = attributed_run().result.attribution
        sampled = attributed_run(
            observe=ObserveConfig(attribution=True, sample_every=4)
        ).result.attribution
        full_counts = {
            cause: entry["count"]
            for cause, entry in full["aborts"]["by_cause"].items()
        }
        sampled_counts = {
            cause: entry["count"]
            for cause, entry in sampled["aborts"]["by_cause"].items()
        }
        assert sampled_counts == full_counts

    def test_sampling_keeps_behaviour(self):
        plain = attributed_run(observe=None).result
        sampled = attributed_run(
            observe=ObserveConfig(
                trace=True, attribution=True, sample_every=8
            )
        ).result
        assert sampled.exec_latencies == plain.exec_latencies
        assert sampled.aborts == plain.aborts
        assert sampled.end_time == plain.end_time

    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            ObserveConfig(attribution=True, sample_every=0)


class TestOfflineReplay:
    def test_offline_summary_matches_online_bit_for_bit(self, tmp_path):
        sim = attributed_run(
            observe=ObserveConfig(
                trace=True, trace_capacity=1 << 20, attribution=True
            )
        )
        path = tmp_path / "trace.jsonl"
        sim.observe.tracer.export_jsonl(str(path))
        offline_summary, engine = analyze_trace(str(path))
        assert offline_summary == sim.result.attribution
        assert engine.transactions.keys() == (
            sim.observe.attribution.engine.transactions.keys()
        )

    def test_chrome_trace_is_rejected(self, tmp_path):
        sim = attributed_run(
            observe=ObserveConfig(trace=True, attribution=True)
        )
        path = tmp_path / "trace.json"
        sim.observe.tracer.export_chrome(str(path))
        with pytest.raises(ValueError, match="JSONL"):
            analyze_trace(str(path))


class TestResultSerialization:
    def test_attribution_round_trips_through_json(self):
        result = attributed_run().result
        clone = SimulationResult.from_json(result.to_json())
        assert clone.attribution == result.attribution

    def test_report_renders(self):
        summary = attributed_run().result.attribution
        report = render_report(summary)
        assert "latency decomposition" in report
        assert "exact=True" in report
        assert "hotspot entity: e0" in report


class TestDotExport:
    def test_blame_graph_dot(self):
        edges = attributed_run().observe.attribution.blame_edge_list()
        dot = blame_graph_to_dot(edges)
        assert dot.startswith('digraph "blame"')
        heaviest = edges[0]
        assert (
            f"n{heaviest['waiter']} -> n{heaviest['holder']}" in dot
        )
        # Resolved names, not interned ids, label the arcs.
        assert f"e{0}@" not in heaviest["site"]
        assert heaviest["entity"].startswith("e")
        assert f"{heaviest['entity']}@{heaviest['site']}" in dot
        assert "penwidth=4.00" in dot  # the heaviest edge's width

    def test_empty_blame_graph(self):
        assert blame_graph_to_dot([]) == (
            'digraph "blame" {\n  rankdir=LR;\n}\n'
        )


def simulate_args(tmp_path, *extra):
    return [
        "simulate",
        "--arrival-rate", "0.6",
        "--max-transactions", "40",
        "--warmup", "5",
        "--entities", "6",
        "--hotspot-skew", "2.0",
        "--network-delay", "0.4",
        "--policies", "wound-wait",
        *extra,
    ]


class TestCli:
    def test_simulate_attribution_report_and_json(
        self, tmp_path, capsys
    ):
        out = tmp_path / "attr.json"
        rc = main(simulate_args(
            tmp_path, "--attribution-out", str(out)
        ))
        printed = capsys.readouterr().out
        assert rc == 0
        assert "latency decomposition" in printed
        assert "hotspot entity: e0" in printed
        summary = json.loads(out.read_text())
        assert summary["conservation"]["exact"] is True

    def test_analyze_trace_check_dot_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(simulate_args(
            tmp_path, "--trace-jsonl", str(trace),
            "--trace-capacity", "1048576",
            "--attribution-out", str(tmp_path / "online.json"),
        ))
        assert rc == 0
        capsys.readouterr()
        dot = tmp_path / "blame.dot"
        out_json = tmp_path / "offline.json"
        rc = main([
            "analyze", str(trace), "--check",
            "--dot", str(dot), "--json-out", str(out_json),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "check OK" in printed
        assert dot.read_text().startswith('digraph "blame"')
        # The offline path is the online path: identical JSON.
        assert json.loads(out_json.read_text()) == json.loads(
            (tmp_path / "online.json").read_text()
        )

    def test_analyze_rejects_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main(simulate_args(tmp_path, "--trace-out", str(trace)))
        assert rc == 0
        capsys.readouterr()
        rc = main(["analyze", str(trace)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "JSONL" in err

    def test_analyze_static_path_still_works(self, tmp_path, capsys):
        path = tmp_path / "system.txt"
        path.write_text(
            "schema s1: x\n"
            "txn T1\n"
            "  seq Lx Ux\n"
            "end\n"
        )
        rc = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "system: T1" in out

    def test_trace_sample_flag(self, tmp_path, capsys):
        rc = main(simulate_args(
            tmp_path, "--attribution", "--trace-sample", "4"
        ))
        printed = capsys.readouterr().out
        assert rc == 0
        assert "SAMPLED 1-in-4" in printed

    def test_attribution_out_suffixed_per_cell(self, tmp_path, capsys):
        """Grid x replicate runs must never overwrite each other's
        attribution (or metrics) files — same contract the flight
        recorder and trace outputs already honour."""
        attr = tmp_path / "attr.json"
        metrics = tmp_path / "metrics.json"
        rc = main(simulate_args(
            tmp_path,
            "--policies", "wound-wait", "wait-die",
            "--runs", "2",
            "--attribution-out", str(attr),
            "--metrics-out", str(metrics),
        ))
        assert rc == 0
        capsys.readouterr()
        for stem in ("attr", "metrics"):
            for cell in (
                "wound-wait-instant-run0", "wound-wait-instant-run1",
                "wait-die-instant-run0", "wait-die-instant-run1",
            ):
                assert (tmp_path / f"{stem}-{cell}.json").exists()
            assert not (tmp_path / f"{stem}.json").exists()

    def test_sweep_cell_attribution_columns(self, tmp_path, capsys):
        out_json = tmp_path / "sweep.json"
        out_csv = tmp_path / "sweep.csv"
        rc = main([
            "sweep",
            "--policies", "wound-wait",
            "--arrival-rates", "0.5",
            "--seeds", "0", "1",
            "--max-transactions", "30",
            "--hotspot-skew", "2.0",
            "--entities", "6",
            "--serial",
            "--cell-attribution",
            "--json", str(out_json),
            "--csv", str(out_csv),
        ])
        assert rc == 0
        capsys.readouterr()
        cells = json.loads(out_json.read_text())["cells"]
        assert cells
        for cell in cells:
            assert cell["hot_entity"] == "e0"
            assert 0.0 < cell["hot_entity_share"] <= 1.0
            assert cell["conservation_exact"] is True
            assert cell["blame_edges"] > 0
            assert 0.0 <= cell["wasted_fraction"] < 1.0
        header = out_csv.read_text().splitlines()[0].split(",")
        assert "hot_entity_share" in header
        assert "wasted_fraction" in header
