"""Tests for repro.analysis.theorem1: the deadlock-prefix search and the
Theorem 1 equivalence itself."""

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.theorem1 import (
    find_deadlock_prefix,
    is_deadlock_free_theorem1,
)
from repro.core.entity import DatabaseSchema
from repro.core.reduction import (
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.core.system import TransactionSystem

from tests.helpers import seq, small_random_system


def deadlock_pair() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


class TestFindDeadlockPrefix:
    def test_witness_fields_consistent(self):
        witness = find_deadlock_prefix(deadlock_pair())
        assert witness is not None
        assert is_deadlock_prefix(witness.prefix)
        graph = reduction_graph(witness.prefix)
        cycle = list(witness.cycle)
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert graph.has_arc(a, b)
        # the recorded schedule realizes the prefix
        assert witness.schedule.prefix() == witness.prefix
        assert prefix_has_schedule(witness.prefix) is not None

    def test_none_for_safe(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
                seq("T2", ["Lx", "Ly", "Ux", "Uy"], schema),
            ]
        )
        assert find_deadlock_prefix(system) is None

    def test_verdict(self):
        assert not is_deadlock_free_theorem1(deadlock_pair())
        assert "Theorem 1" in is_deadlock_free_theorem1(
            deadlock_pair()
        ).reason


class TestTheorem1Equivalence:
    """Deadlock partial schedule reachable  ⇔  deadlock prefix exists."""

    def test_figures(self):
        from repro.paper.figures import figure1, figure2, figure3

        for system in (figure1(), figure2(), figure3()):
            direct = find_deadlock(system) is not None
            prefix = find_deadlock_prefix(system) is not None
            assert direct == prefix

    def test_random_pairs(self):
        for seed in range(60):
            system = small_random_system(seed + 7_000, n_transactions=2)
            direct = find_deadlock(system, max_states=300_000) is not None
            prefix = (
                find_deadlock_prefix(system, max_states=300_000) is not None
            )
            assert direct == prefix, f"seed {seed + 7_000}"

    def test_random_triples(self):
        for seed in range(25):
            system = small_random_system(seed + 8_000, n_transactions=3)
            direct = find_deadlock(system, max_states=300_000) is not None
            prefix = (
                find_deadlock_prefix(system, max_states=300_000) is not None
            )
            assert direct == prefix, f"seed {seed + 8_000}"
