"""Unit and fault-composition tests for the durability model.

The crash-point conformance battery lives in
``test_recovery_conformance.py``; this file covers the mechanics the
battery relies on (force/flush timing, crash cancellation, the storage
fault draws) and the compositions with the other fault layers the
battery does not reach: a site crashing *again* mid-recovery while its
in-doubt inquiries are still open, and partitions cutting the inquiry
conversation (the ``dur_requery`` chain must ride through on
suspicion-driven retry without ever double-deciding).
"""

import heapq
import random

import pytest

from repro.sim.commit import protocol_names
from repro.sim.durability import DurabilityConfig
from repro.sim.network import NetworkConfig
from repro.sim.runtime import _COMMITTED, SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

SPEC = WorkloadSpec(
    n_transactions=8,
    n_entities=8,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.5,
    read_fraction=0.3,
    replication_factor=2,
)

FLUSH = 0.5


def _simulator(protocol="two-phase", replica="rowa", seed=2, **kwargs):
    system = random_system(random.Random(13), SPEC)
    durability = kwargs.pop("durability", DurabilityConfig(flush_time=FLUSH))
    return Simulator(
        system,
        "wound-wait",
        SimulationConfig(
            seed=seed,
            workload=SPEC,
            commit_protocol=protocol,
            replica_protocol=replica,
            network_delay=0.5,
            commit_timeout=6.0,
            durability=durability,
            **kwargs,
        ),
    )


def _dispatch_until(sim, t):
    """Manually drain the event queue up to simulated time ``t``."""
    heap = sim._queue._heap
    while heap and heap[0][0] <= t + 1e-12:
        time, _seq, payload = heapq.heappop(heap)
        if time > sim._now:
            sim._now = time
        sim._registry.dispatch(payload)


def _assert_converged(sim, result):
    assert not result.truncated
    assert result.committed == result.total
    for inst in sim._instances:
        assert inst.status is _COMMITTED
        assert inst.retained == set()
    for name, site in sim._sites.items():
        assert site.involved() == [], name
    assert sim.durability.in_doubt() == set()
    assert sum(result.aborts_by_cause.values()) == result.aborts


class TestWiring:
    def test_unset_config_attaches_nothing(self):
        sim = _simulator(durability=None)
        assert sim.durability is None

    def test_config_attaches_manager(self):
        sim = _simulator()
        assert sim.durability is not None
        assert sim.durability.config.flush_time == FLUSH

    def test_forces_cost_simulated_time(self):
        base = _simulator(durability=None).run()
        forced = _simulator().run()
        assert forced.log_forces > 0
        assert forced.end_time > base.end_time


class TestForceMechanics:
    def test_force_is_durable_after_flush_time(self):
        sim = _simulator()
        dur = sim.durability
        ran = []
        dur.force("s0", ("prepare", 0, 0, ()), lambda: ran.append(1))
        assert dur.log("s0") == ()
        assert dur.flush_pending("s0", ("prepare", 0, 0, ()))
        assert not ran
        _dispatch_until(sim, FLUSH)
        assert dur.log("s0") == (("prepare", 0, 0, ()),)
        assert dur.has_prepare("s0", 0, 0)
        assert ran == [1]
        assert not dur.flush_pending("s0", ("prepare", 0, 0, ()))

    def test_crash_cancels_in_flight_flush(self):
        sim = _simulator()
        dur = sim.durability
        ran, cancelled = [], []
        dur.force(
            "s0", ("prepare", 0, 0, ()),
            lambda: ran.append(1), lambda: cancelled.append(1),
        )
        dur.on_site_crash("s0")
        _dispatch_until(sim, FLUSH)
        # The record never became durable; the cancel hook fired once
        # and the orphaned heap event was swallowed.
        assert dur.log("s0") == ()
        assert ran == []
        assert cancelled == [1]
        assert sim.result.log_forces == 0


class TestFaultDraws:
    def _durable(self, sim, site, records):
        dur = sim.durability
        for record in records:
            dur.force(site, record, lambda: None)
        _dispatch_until(sim, FLUSH)
        assert len(dur.log(site)) == len(records)
        return dur

    RECORDS = (
        ("prepare", 0, 0, ()),
        ("decision", 0, 0, "commit"),
        ("prepare", 1, 0, ()),
    )

    def test_tail_loss_drops_newest_record(self):
        sim = _simulator(
            durability=DurabilityConfig(
                flush_time=FLUSH, tail_loss_rate=1.0
            )
        )
        dur = self._durable(sim, "s0", self.RECORDS)
        dur.on_site_crash("s0")
        assert dur.log("s0") == self.RECORDS[:-1]
        assert sim.result.tail_losses == 1
        assert not dur.has_prepare("s0", 1, 0)

    def test_torn_write_then_tail_loss_compose(self):
        sim = _simulator(
            durability=DurabilityConfig(
                flush_time=FLUSH, tail_loss_rate=1.0, torn_write_rate=1.0
            )
        )
        dur = self._durable(sim, "s0", self.RECORDS)
        dur.on_site_crash("s0")
        assert dur.log("s0") == self.RECORDS[:1]
        assert sim.result.torn_writes == 1
        assert sim.result.tail_losses == 1

    def test_amnesia_wipes_whole_log(self):
        sim = _simulator(
            durability=DurabilityConfig(flush_time=FLUSH, amnesia_rate=1.0)
        )
        dur = self._durable(sim, "s0", self.RECORDS)
        dur.on_site_crash("s0")
        assert dur.log("s0") == ()
        assert sim.result.amnesia_wipes == 1
        assert not dur.has_prepare("s0", 0, 0)
        assert not dur.has_decision("s0", 0, 0)

    def test_empty_log_draws_nothing(self):
        sim = _simulator(
            durability=DurabilityConfig(
                flush_time=FLUSH, tail_loss_rate=1.0, amnesia_rate=1.0
            )
        )
        state = sim.durability._rng.getstate()
        sim.durability.on_site_crash("s0")
        # No log, no draw: the fault stream stays untouched.
        assert sim.durability._rng.getstate() == state


def _crash_at_first_durable_prepare(sim):
    """Arm a crash 1.5 flushes after the first prepare-record force.

    The prepare becomes durable at +1.0 flush and the crash lands at
    +1.5 with the decision still at least a network round trip away:
    recovery is guaranteed an in-doubt participant.
    """
    dur = sim.durability
    orig = dur.force
    armed = [False]

    def arming(site, record, cont, cancel=None):
        if record[0] == "prepare" and not armed[0]:
            armed[0] = True
            sim.schedule(1.5 * FLUSH, ("site_crash", site))
        orig(site, record, cont, cancel)

    dur.force = arming


@pytest.mark.parametrize(
    "protocol", [p for p in protocol_names() if p != "instant"]
)
class TestCrashDuringRecovery:
    """A second crash while the first recovery's inquiries are open."""

    def test_double_crash_still_converges(self, protocol):
        sim = _simulator(protocol, failure_rate=1e-9, repair_time=2.0)
        dur = sim.durability
        _crash_at_first_durable_prepare(sim)
        orig_recover = dur.on_site_recover
        re_crashed = [0]

        def recover_and_recrash(site):
            orig_recover(site)
            if dur.in_doubt(site) and re_crashed[0] < 1:
                # The replay just re-opened in-doubt inquiries: crash
                # again before any answer can arrive (the round trip
                # takes a full network delay).
                re_crashed[0] += 1
                sim.schedule(0.1, ("site_crash", site))

        dur.on_site_recover = recover_and_recrash
        result = sim.run()
        assert result.crashes == 2
        assert re_crashed[0] == 1
        # The interrupted recovery replayed again and resolved.
        assert result.log_replays >= 2
        assert len(dur.recovery_reports) >= 2
        assert result.in_doubt_resolved >= 1
        _assert_converged(sim, result)

    def test_single_crash_resolves_in_doubt(self, protocol):
        sim = _simulator(protocol, failure_rate=1e-9, repair_time=2.0)
        _crash_at_first_durable_prepare(sim)
        result = sim.run()
        assert result.crashes == 1
        assert result.log_replays >= 1
        reports = sim.durability.recovery_reports
        assert any(r["in_doubt"] > 0 for r in reports)
        assert result.in_doubt_resolved >= 1
        _assert_converged(sim, result)


@pytest.mark.parametrize(
    "protocol", [p for p in protocol_names() if p != "instant"]
)
class TestPartitionDuringInquiry:
    """Partitions cut the in-doubt conversation; requeries ride it out."""

    def test_inquiry_survives_partition(self, protocol):
        sim = _simulator(
            protocol,
            "quorum",
            failure_rate=1e-9,
            repair_time=2.0,
            network=NetworkConfig(
                # Poisson cuts throughout the run: some land on the
                # inquiry window, suppressing answers until the heal.
                partition_rate=0.05,
                partition_duration=8.0,
            ),
        )
        _crash_at_first_durable_prepare(sim)
        result = sim.run()
        assert result.crashes == 1
        assert result.log_replays >= 1
        # No split-brain: every transaction decided exactly once and
        # the in-doubt set drained despite the cuts.
        _assert_converged(sim, result)
