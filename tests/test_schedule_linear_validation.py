"""The linear Schedule validator against the ancestors-based oracle.

``Schedule.__init__`` historically tested every step's full ancestor
mask; the fast path tests only the direct predecessors, which is
equivalent by induction (an executed set that always contained each
step's predecessors is a down-set, and over down-sets "some ancestor
missing" and "some direct predecessor missing" coincide). This suite
pins the equivalence operationally: over random legal and illegal step
sequences, the production validator and a faithful reimplementation of
the historical one reach the same verdict, and reject at the same step
index for the same reason class.
"""

import random
import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import OpKind
from repro.core.schedule import IllegalScheduleError, Schedule
from repro.sim.workload import WorkloadSpec, random_system

STEP_RE = re.compile(r"step (\d+):")


def ancestors_oracle(system, steps):
    """The pre-fast-path validator: full ancestor masks per step.

    Returns None when the sequence is legal, else the offending step
    index — exactly the historical acceptance logic of
    ``Schedule.__init__``.
    """
    masks = [0] * len(system)
    holder = {}
    for position, (txn, node) in enumerate(steps):
        if not 0 <= txn < len(system):
            return position
        t = system[txn]
        if not 0 <= node < t.node_count:
            return position
        if masks[txn] >> node & 1:
            return position
        if t.dag.ancestors(node) & ~masks[txn]:
            return position
        op = t.ops[node]
        if op.kind is OpKind.LOCK:
            current = holder.get(op.entity)
            if current is not None and current != txn:
                return position
            holder[op.entity] = txn
        elif op.kind is OpKind.UNLOCK:
            holder.pop(op.entity, None)
        masks[txn] |= 1 << node
    return None


def linear_verdict(system, steps):
    """(accepted, failing step index) from the production validator."""
    try:
        Schedule(system, steps)
    except IllegalScheduleError as exc:
        return False, int(STEP_RE.search(str(exc)).group(1))
    return True, None


def random_steps(rng, system, legal_bias):
    """A random step sequence, biased toward legal interleavings.

    With probability ``legal_bias`` each appended step is drawn from
    the currently legal continuations (ready nodes whose Lock is not
    blocked); otherwise any (txn, node) pair may be appended —
    duplicates, order violations, and lock conflicts included.
    """
    steps = []
    masks = [0] * len(system)
    holder = {}
    total = sum(t.node_count for t in system)
    for _ in range(rng.randint(0, total + 4)):
        legal = []
        if rng.random() < legal_bias:
            for txn, t in enumerate(system):
                for node in range(t.node_count):
                    if masks[txn] >> node & 1:
                        continue
                    if t.dag.ancestors(node) & ~masks[txn]:
                        continue
                    op = t.ops[node]
                    if (
                        op.kind is OpKind.LOCK
                        and holder.get(op.entity, txn) != txn
                    ):
                        continue
                    legal.append((txn, node))
        if legal:
            txn, node = rng.choice(legal)
        else:
            txn = rng.randrange(len(system))
            node = rng.randrange(system[txn].node_count + 1)
        steps.append((txn, node))
        if txn < len(system) and node < system[txn].node_count:
            op = system[txn].ops[node]
            if op.kind is OpKind.LOCK and holder.get(op.entity, txn) == txn:
                holder[op.entity] = txn
            elif op.kind is OpKind.UNLOCK:
                holder.pop(op.entity, None)
            masks[txn] |= 1 << node
    return steps


@given(
    st.integers(min_value=0, max_value=2_000),
    st.sampled_from(["random", "two_phase", "sequential"]),
    st.sampled_from([0.5, 0.9, 1.0]),
)
@settings(max_examples=120)
def test_linear_validator_matches_ancestors_oracle(
    seed, shape, legal_bias
):
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=3,
        n_entities=5,
        n_sites=3,
        entities_per_txn=(1, 3),
        actions_per_entity=(0, 2),
        shape=shape,
    )
    system = random_system(rng, spec)
    steps = random_steps(rng, system, legal_bias)
    expected_failure = ancestors_oracle(system, steps)
    accepted, failed_at = linear_verdict(system, steps)
    if expected_failure is None:
        assert accepted, f"oracle accepts, linear validator rejects: {steps}"
    else:
        assert not accepted
        assert failed_at == expected_failure, (
            f"different failing step: oracle {expected_failure}, "
            f"linear {failed_at} for {steps}"
        )


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=60)
def test_accepted_schedules_agree_on_masks_and_lock_orders(seed):
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=3, n_entities=4, n_sites=2,
        entities_per_txn=(1, 2), actions_per_entity=(0, 1),
    )
    system = random_system(rng, spec)
    steps = random_steps(rng, system, 1.0)
    if ancestors_oracle(system, steps) is not None:
        return  # only legal sequences compared here
    schedule = Schedule(system, steps)
    # The executed prefix is what the old validator accumulated.
    masks = [0] * len(system)
    for txn, node in steps:
        masks[txn] |= 1 << node
    assert list(schedule.prefix().masks) == masks
    # Lock orders recorded during validation equal a full rescan.
    rescan = {}
    for txn, node in steps:
        op = system[txn].ops[node]
        if op.kind is OpKind.LOCK:
            rescan.setdefault(op.entity, []).append(txn)
    assert schedule.lock_sequences() == rescan
    # Steps materialize lazily but faithfully.
    assert [tuple(step) for step in schedule.steps] == steps
