"""Tests for the discrete-event simulator (repro.sim.runtime)."""

import dataclasses

import pytest

from repro.sim.runtime import (
    _ABORTED,
    _RUNNING,
    SimulationConfig,
    Simulator,
    find_deadlocking_seed,
    simulate,
)
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem

from tests.helpers import seq


def deadlock_pair() -> TransactionSystem:
    schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


def disjoint_pair() -> TransactionSystem:
    schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
    return TransactionSystem(
        [
            seq("T1", ["Lx", "A.x", "Ux"], schema),
            seq("T2", ["Ly", "A.y", "Uy"], schema),
        ]
    )


def _find_deadlock_seed(system, policy="blocking", tries=60) -> int | None:
    """A seed whose arrival order actually triggers the deadlock."""
    for seed in range(tries):
        result = simulate(system, policy, SimulationConfig(seed=seed))
        if result.deadlocked:
            return seed
    return None


class TestConfigValidation:
    """SimulationConfig rejects out-of-range rate/duration parameters
    (mirroring WorkloadSpec's validation)."""

    @pytest.mark.parametrize(
        "field",
        ["network_delay", "commit_timeout", "failure_rate", "repair_time"],
    )
    def test_negative_value_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            SimulationConfig(**{field: -0.5})

    def test_zero_values_accepted(self):
        config = SimulationConfig(
            network_delay=0.0, failure_rate=0.0, repair_time=0.0
        )
        assert config.network_delay == 0.0

    def test_defaults_valid(self):
        SimulationConfig()  # must not raise

    def test_durability_negative_flush_time_rejected(self):
        from repro.sim.durability import DurabilityConfig

        with pytest.raises(ValueError, match="flush_time"):
            DurabilityConfig(flush_time=-0.1)

    @pytest.mark.parametrize(
        "field", ["tail_loss_rate", "torn_write_rate", "amnesia_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_durability_rates_bounded(self, field, value):
        from repro.sim.durability import DurabilityConfig

        with pytest.raises(ValueError, match=field):
            DurabilityConfig(**{field: value})

    def test_durability_defaults_valid(self):
        from repro.sim.durability import DurabilityConfig

        config = DurabilityConfig()
        assert config.flush_time == 0.5
        assert config.tail_loss_rate == 0.0
        # Zero flush time (instant, infallible disk) is legal.
        DurabilityConfig(flush_time=0.0)


class TestBasicRuns:
    def test_disjoint_commits(self):
        result = simulate(disjoint_pair(), "blocking")
        assert result.committed == 2
        assert not result.deadlocked
        assert result.aborts == 0
        assert result.serializable is True
        assert result.throughput > 0

    def test_single_transaction(self):
        system = TransactionSystem([seq("T", ["Lx", "A.x", "Ux"])])
        result = simulate(system, "blocking")
        assert result.committed == 1
        assert result.latencies[0] >= 0

    def test_deterministic_under_seed(self):
        a = simulate(deadlock_pair(), "wound-wait", SimulationConfig(seed=4))
        b = simulate(deadlock_pair(), "wound-wait", SimulationConfig(seed=4))
        assert a.end_time == b.end_time
        assert a.aborts == b.aborts


class TestBlockingDeadlock:
    def test_deadlock_reached_and_reported(self):
        seed = _find_deadlock_seed(deadlock_pair())
        assert seed is not None, "no seed triggered the deadlock"
        result = simulate(
            deadlock_pair(), "blocking", SimulationConfig(seed=seed)
        )
        assert result.deadlocked
        assert set(result.deadlock_cycle) == {0, 1}
        assert result.committed < 2

    def test_trace_of_deadlocked_run_still_legal(self):
        seed = _find_deadlock_seed(deadlock_pair())
        sim = Simulator(
            deadlock_pair(), "blocking", SimulationConfig(seed=seed)
        )
        result = sim.run()
        assert result.deadlocked
        # the partial progress must replay as a legal schedule
        assert result.serializable is not None


class TestPreventionPolicies:
    @pytest.mark.parametrize("policy", ["wound-wait", "wait-die"])
    def test_rsl_policies_always_commit(self, policy):
        for seed in range(25):
            result = simulate(
                deadlock_pair(), policy, SimulationConfig(seed=seed)
            )
            assert not result.deadlocked, f"{policy} seed {seed}"
            assert result.committed == 2, f"{policy} seed {seed}"
            assert result.serializable is True

    def test_wound_wait_counts_wounds(self):
        total = sum(
            simulate(
                deadlock_pair(), "wound-wait", SimulationConfig(seed=s)
            ).wounds
            for s in range(25)
        )
        assert total > 0

    def test_wait_die_counts_deaths(self):
        total = sum(
            simulate(
                deadlock_pair(), "wait-die", SimulationConfig(seed=s)
            ).deaths
            for s in range(25)
        )
        assert total > 0


class TestTimeoutAndDetection:
    def test_timeout_resolves_deadlock(self):
        seed = _find_deadlock_seed(deadlock_pair())
        result = simulate(
            deadlock_pair(), "timeout", SimulationConfig(seed=seed)
        )
        assert not result.deadlocked
        assert result.committed == 2
        assert result.timeouts > 0

    def test_detection_resolves_deadlock(self):
        seed = _find_deadlock_seed(deadlock_pair())
        result = simulate(
            deadlock_pair(), "detect", SimulationConfig(seed=seed)
        )
        assert not result.deadlocked
        assert result.committed == 2
        assert result.detected > 0


class TestFastPathSurface:
    """The interning/caching surface added by the fast-path refactor."""

    def test_entity_and_site_ids_follow_sorted_order(self):
        sim = Simulator(deadlock_pair(), "blocking")
        entities = sorted(sim.system.schema.entities)
        sites = sorted(sim.system.schema.sites)
        assert [sim.entity_id(e) for e in entities] == list(
            range(len(entities))
        )
        assert [sim.site_id(s) for s in sites] == list(range(len(sites)))
        for e in entities:
            assert sim.entity_name(sim.entity_id(e)) == e
        for s_name in sites:
            assert sim.site_name(sim.site_id(s_name)) == s_name

    def test_lock_tables_is_cached_readonly_view(self):
        sim = Simulator(deadlock_pair(), "blocking")
        view = sim.lock_tables()
        assert sim.lock_tables() is view  # no per-call copy
        with pytest.raises(TypeError):
            view["s1"] = None  # read-only
        assert set(view) == set(sim.system.schema.sites)

    def test_site_names_is_cached(self):
        sim = Simulator(deadlock_pair(), "blocking")
        names = sim.site_names()
        assert sim.site_names() is names
        assert list(names) == sorted(sim.system.schema.sites)

    def test_deadlock_free_policies_skip_graph_tracking(self):
        for policy in ("wound-wait", "wait-die", "timeout"):
            assert Simulator(deadlock_pair(), policy)._waits_for is None
        for policy in ("blocking", "detect"):
            assert (
                Simulator(deadlock_pair(), policy)._waits_for is not None
            )

    def test_trace_entries_are_bare_and_replayable(self):
        # The trace is appended in dispatch order — which *is*
        # (time, seq) order — so entries carry only (txn, node,
        # attempt), and the committed replay is a legal Schedule
        # without any re-sorting.
        sim = Simulator(deadlock_pair(), "wound-wait")
        sim.run()
        assert sim._trace
        assert all(len(entry) == 3 for entry in sim._trace)
        n = len(sim.system)
        assert all(0 <= txn < n for txn, _node, _att in sim._trace)
        sim.committed_schedule()  # replays without IllegalScheduleError


class TestTraceReplay:
    def test_committed_schedule_replays(self):
        sim = Simulator(disjoint_pair(), "blocking")
        sim.run()
        schedule = sim.committed_schedule()
        assert schedule.is_complete()

    def test_committed_schedule_after_aborts(self):
        seed = _find_deadlock_seed(deadlock_pair())
        for policy in ("wound-wait", "wait-die", "timeout", "detect"):
            sim = Simulator(
                deadlock_pair(), policy, SimulationConfig(seed=seed)
            )
            result = sim.run()
            assert result.committed == 2
            schedule = sim.committed_schedule()
            assert schedule.is_complete()


class TestStaleGrants:
    """The defensive path of Simulator._on_grant: a grant delivered to
    a transaction that is not actually waiting must hand the lock back
    instead of wedging the site."""

    def test_stale_grant_to_non_waiter_returns_lock(self):
        sim = Simulator(deadlock_pair(), "blocking")
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(0, x)  # T0 holds x but never recorded a wait
        sim._on_grant(0, x, s1)
        assert site.holder(x) is None
        assert site.involved() == []

    def test_stale_grant_to_aborted_transaction_returns_lock(self):
        sim = Simulator(deadlock_pair(), "blocking")
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(0, x)
        inst = sim.instance(0)
        inst.status = _ABORTED
        # even a recorded wait must not revive it
        inst.waiting[(x, s1)] = 0.0
        sim._on_grant(0, x, s1)
        assert site.holder(x) is None

    def test_stale_grant_passes_lock_to_real_waiter(self):
        sim = Simulator(deadlock_pair(), "blocking")
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(0, x)
        site.request(1, x)  # T1 queues behind the phantom holder
        sim.instance(1).waiting[(x, s1)] = 0.0
        sim._on_grant(0, x, s1)  # stale for T0, re-granted to T1
        assert site.holder(x) == 1
        assert (x, s1) not in sim.instance(1).waiting


class TestReevaluateWaiters:
    """Re-running the conflict rule after a grant: an old waiter must
    wound the young transaction that just inherited the lock."""

    def _three_on_x(self) -> TransactionSystem:
        schema = DatabaseSchema.from_groups({"s1": ["x"]})
        return TransactionSystem(
            [
                seq("T1", ["Lx", "Ux"], schema),
                seq("T2", ["Lx", "Ux"], schema),
                seq("T3", ["Lx", "Ux"], schema),
            ]
        )

    def test_wound_wait_wounds_newly_granted_holder(self):
        sim = Simulator(self._three_on_x(), "wound-wait")
        old, young, holder = (
            sim.instance(0), sim.instance(1), sim.instance(2)
        )
        old.timestamp, young.timestamp, holder.timestamp = 1.0, 9.0, 5.0
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(2, x)
        site.request(1, x)  # FIFO: the young transaction is first
        site.request(0, x)
        young.waiting[(x, s1)] = 0.0
        old.waiting[(x, s1)] = 0.0
        granted = site.release(2, x)
        assert granted == [1]
        sim._on_grant(1, x, s1)
        # The young grantee was wounded by the old waiter behind it and
        # the lock moved on to the old transaction.
        assert young.status == _ABORTED
        assert sim.result.wounds == 1
        assert site.holder(x) == 0
        assert old.status == _RUNNING

    def test_wait_die_kills_young_waiter_behind_new_holder(self):
        sim = Simulator(self._three_on_x(), "wait-die")
        old, young, holder = (
            sim.instance(0), sim.instance(1), sim.instance(2)
        )
        old.timestamp, young.timestamp, holder.timestamp = 1.0, 9.0, 5.0
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(2, x)
        site.request(0, x)  # the old transaction is granted next
        site.request(1, x)
        old.waiting[(x, s1)] = 0.0
        young.waiting[(x, s1)] = 0.0
        granted = site.release(2, x)
        assert granted == [0]
        sim._on_grant(0, x, s1)
        assert young.status == _ABORTED
        assert sim.result.deaths == 1
        assert site.holder(x) == 0


class TestFindDeadlockingSeed:
    def test_base_config_fields_carry_over(self, monkeypatch):
        """Every attempted config must be the base with only the seed
        swapped — spied at the simulate() boundary so a regression to
        field-by-field copying (dropping new fields) is caught."""
        import repro.sim.runtime as runtime

        base = SimulationConfig(
            service_time=0.5, network_delay=0.3, commit_timeout=9.0
        )
        seen: list[SimulationConfig] = []
        real_simulate = runtime.simulate

        def spy(system, policy, config):
            seen.append(config)
            return real_simulate(system, policy, config)

        monkeypatch.setattr(runtime, "simulate", spy)
        found = find_deadlocking_seed(
            deadlock_pair(), max_seeds=40, config=base
        )
        assert found is not None
        _seed, result = found
        assert result.deadlocked
        assert seen
        for i, config in enumerate(seen):
            assert config == dataclasses.replace(base, seed=i)


class TestDetectorRescheduling:
    def test_detector_stops_when_no_progress_is_possible(self):
        """Once every remaining event lies beyond max_time, further
        scans are useless: the detector must stop instead of padding
        the queue with one no-op scan per interval up to the horizon.

        Here the deadlock victim's restart lands far past max_time, so
        after the survivor commits nothing can happen any more — yet
        one transaction stays uncommitted, which under the old rule
        kept the scan chain alive for ~125 intervals.
        """
        seed = _find_deadlock_seed(deadlock_pair())
        config = SimulationConfig(
            seed=seed, max_time=1_000.0, detection_interval=8.0,
            restart_delay=5_000.0,
        )
        sim = Simulator(deadlock_pair(), "detect", config)
        result = sim.run()
        assert result.committed == 1  # the victim can never restart
        assert result.truncated  # the restart event breaches max_time
        assert sim._events_processed < 30
        assert result.end_time < 100.0

    def test_detection_never_reports_permanent_deadlock(self):
        """If the scan chain stops at a tight time budget and the
        queue then drains with a cycle standing, the run is truncated
        — deadlocked stays a blocking-policy-only verdict."""
        for seed in range(40):
            result = simulate(
                deadlock_pair(),
                "detect",
                SimulationConfig(
                    seed=seed, max_time=30.0, detection_interval=8.0
                ),
            )
            assert not result.deadlocked, f"seed {seed}"
            if result.committed < 2:
                assert result.truncated

    def test_detector_still_breaks_cycles(self):
        seed = _find_deadlock_seed(deadlock_pair())
        result = simulate(
            deadlock_pair(), "detect", SimulationConfig(seed=seed)
        )
        assert result.committed == 2
        assert result.detected > 0


class TestBudgets:
    def test_max_events_truncates(self):
        config = SimulationConfig(seed=0, max_events=3)
        result = simulate(deadlock_pair(), "blocking", config)
        assert result.truncated

    def test_max_time_truncates(self):
        config = SimulationConfig(seed=0, max_time=0.5)
        result = simulate(deadlock_pair(), "blocking", config)
        assert result.truncated or result.end_time <= 0.5
