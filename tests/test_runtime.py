"""Tests for the discrete-event simulator (repro.sim.runtime)."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.runtime import SimulationConfig, Simulator, simulate

from tests.helpers import seq


def deadlock_pair() -> TransactionSystem:
    schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


def disjoint_pair() -> TransactionSystem:
    schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
    return TransactionSystem(
        [
            seq("T1", ["Lx", "A.x", "Ux"], schema),
            seq("T2", ["Ly", "A.y", "Uy"], schema),
        ]
    )


def _find_deadlock_seed(system, policy="blocking", tries=60) -> int | None:
    """A seed whose arrival order actually triggers the deadlock."""
    for seed in range(tries):
        result = simulate(system, policy, SimulationConfig(seed=seed))
        if result.deadlocked:
            return seed
    return None


class TestBasicRuns:
    def test_disjoint_commits(self):
        result = simulate(disjoint_pair(), "blocking")
        assert result.committed == 2
        assert not result.deadlocked
        assert result.aborts == 0
        assert result.serializable is True
        assert result.throughput > 0

    def test_single_transaction(self):
        system = TransactionSystem([seq("T", ["Lx", "A.x", "Ux"])])
        result = simulate(system, "blocking")
        assert result.committed == 1
        assert result.latencies[0] >= 0

    def test_deterministic_under_seed(self):
        a = simulate(deadlock_pair(), "wound-wait", SimulationConfig(seed=4))
        b = simulate(deadlock_pair(), "wound-wait", SimulationConfig(seed=4))
        assert a.end_time == b.end_time
        assert a.aborts == b.aborts


class TestBlockingDeadlock:
    def test_deadlock_reached_and_reported(self):
        seed = _find_deadlock_seed(deadlock_pair())
        assert seed is not None, "no seed triggered the deadlock"
        result = simulate(
            deadlock_pair(), "blocking", SimulationConfig(seed=seed)
        )
        assert result.deadlocked
        assert set(result.deadlock_cycle) == {0, 1}
        assert result.committed < 2

    def test_trace_of_deadlocked_run_still_legal(self):
        seed = _find_deadlock_seed(deadlock_pair())
        sim = Simulator(
            deadlock_pair(), "blocking", SimulationConfig(seed=seed)
        )
        result = sim.run()
        assert result.deadlocked
        # the partial progress must replay as a legal schedule
        assert result.serializable is not None


class TestPreventionPolicies:
    @pytest.mark.parametrize("policy", ["wound-wait", "wait-die"])
    def test_rsl_policies_always_commit(self, policy):
        for seed in range(25):
            result = simulate(
                deadlock_pair(), policy, SimulationConfig(seed=seed)
            )
            assert not result.deadlocked, f"{policy} seed {seed}"
            assert result.committed == 2, f"{policy} seed {seed}"
            assert result.serializable is True

    def test_wound_wait_counts_wounds(self):
        total = sum(
            simulate(
                deadlock_pair(), "wound-wait", SimulationConfig(seed=s)
            ).wounds
            for s in range(25)
        )
        assert total > 0

    def test_wait_die_counts_deaths(self):
        total = sum(
            simulate(
                deadlock_pair(), "wait-die", SimulationConfig(seed=s)
            ).deaths
            for s in range(25)
        )
        assert total > 0


class TestTimeoutAndDetection:
    def test_timeout_resolves_deadlock(self):
        seed = _find_deadlock_seed(deadlock_pair())
        result = simulate(
            deadlock_pair(), "timeout", SimulationConfig(seed=seed)
        )
        assert not result.deadlocked
        assert result.committed == 2
        assert result.timeouts > 0

    def test_detection_resolves_deadlock(self):
        seed = _find_deadlock_seed(deadlock_pair())
        result = simulate(
            deadlock_pair(), "detect", SimulationConfig(seed=seed)
        )
        assert not result.deadlocked
        assert result.committed == 2
        assert result.detected > 0


class TestTraceReplay:
    def test_committed_schedule_replays(self):
        sim = Simulator(disjoint_pair(), "blocking")
        sim.run()
        schedule = sim.committed_schedule()
        assert schedule.is_complete()

    def test_committed_schedule_after_aborts(self):
        seed = _find_deadlock_seed(deadlock_pair())
        for policy in ("wound-wait", "wait-die", "timeout", "detect"):
            sim = Simulator(
                deadlock_pair(), policy, SimulationConfig(seed=seed)
            )
            result = sim.run()
            assert result.committed == 2
            schedule = sim.committed_schedule()
            assert schedule.is_complete()


class TestBudgets:
    def test_max_events_truncates(self):
        config = SimulationConfig(seed=0, max_events=3)
        result = simulate(deadlock_pair(), "blocking", config)
        assert result.truncated

    def test_max_time_truncates(self):
        config = SimulationConfig(seed=0, max_time=0.5)
        result = simulate(deadlock_pair(), "blocking", config)
        assert result.truncated or result.end_time <= 0.5
