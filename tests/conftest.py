"""Test-suite configuration: pinned hypothesis profiles.

CI runs the property suites as a separate job step under the ``ci``
profile (derandomized, bounded examples) so a flaky shrink there can
never mask a tier-1 failure; local runs default to ``dev``, which
keeps hypothesis' usual randomized exploration (minus wall-clock
deadlines, since simulation-heavy examples vary too much for them).
"""

import os

from hypothesis import settings

settings.register_profile(
    "ci", derandomize=True, deadline=None, max_examples=25
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
