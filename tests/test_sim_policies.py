"""Unit tests for repro.sim.policies."""

import pytest

from repro.sim.policies import (
    BlockingPolicy,
    Decision,
    DetectionPolicy,
    TimeoutPolicy,
    WaitDiePolicy,
    WoundWaitPolicy,
    make_policy,
)


class TestDecisions:
    def test_blocking_always_waits(self):
        policy = BlockingPolicy()
        assert policy.on_conflict(1.0, 2.0) is Decision.WAIT
        assert policy.on_conflict(2.0, 1.0) is Decision.WAIT

    def test_wound_wait(self):
        policy = WoundWaitPolicy()
        # older requester (smaller ts) wounds the holder
        assert policy.on_conflict(1.0, 2.0) is Decision.ABORT_HOLDER
        # younger requester waits
        assert policy.on_conflict(2.0, 1.0) is Decision.WAIT

    def test_wait_die(self):
        policy = WaitDiePolicy()
        assert policy.on_conflict(1.0, 2.0) is Decision.WAIT
        assert policy.on_conflict(2.0, 1.0) is Decision.ABORT_SELF

    def test_flags(self):
        assert TimeoutPolicy().uses_timeout
        assert DetectionPolicy().uses_detection
        assert not BlockingPolicy().uses_timeout


class TestFactory:
    def test_all_names(self):
        for name in (
            "blocking", "wound-wait", "wait-die", "timeout", "detect"
        ):
            assert make_policy(name).name == name

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError) as info:
            make_policy("optimistic")
        assert "blocking" in str(info.value)
