"""Unit tests for repro.core.system."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction

from tests.helpers import seq


def two_txn_system() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y", "z"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lz", "Uy", "Uz"], schema),
        ]
    )


class TestConstruction:
    def test_basic(self):
        system = two_txn_system()
        assert len(system) == 2
        assert system.entities == {"x", "y", "z"}

    def test_duplicate_names_rejected(self):
        t = seq("T", ["Lx", "Ux"])
        with pytest.raises(ValueError):
            TransactionSystem([t, t])

    def test_conflicting_schemas_rejected(self):
        a = seq("T1", ["Lx", "Ux"], DatabaseSchema({"x": "s1"}))
        b = seq("T2", ["Lx", "Ux"], DatabaseSchema({"x": "s2"}))
        with pytest.raises(ValueError):
            TransactionSystem([a, b])

    def test_of_copies(self):
        t = seq("T", ["Lx", "Ux"])
        system = TransactionSystem.of_copies(t, 3)
        assert len(system) == 3
        assert {c.name for c in system} == {"T#1", "T#2", "T#3"}
        # copies share entities
        assert system.accessors("x") == (0, 1, 2)


class TestQueries:
    def test_accessors(self):
        system = two_txn_system()
        assert system.accessors("x") == (0,)
        assert system.accessors("y") == (0, 1)
        assert system.accessors("nothing") == ()

    def test_common_entities(self):
        system = two_txn_system()
        assert system.common_entities(0, 1) == {"y"}

    def test_interaction_edges(self):
        system = two_txn_system()
        assert system.interaction_edges() == {(0, 1)}

    def test_interaction_neighbors(self):
        system = two_txn_system()
        assert system.interaction_neighbors() == {0: {1}, 1: {0}}

    def test_no_shared_entity_no_edge(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [seq("T1", ["Lx", "Ux"], schema), seq("T2", ["Ly", "Uy"], schema)]
        )
        assert system.interaction_edges() == set()

    def test_describe_node(self):
        system = two_txn_system()
        assert system.describe_node(GlobalNode(0, 0)) == "L1x"
        assert system.describe_node(GlobalNode(1, 2)) == "U2y"

    def test_total_nodes(self):
        assert two_txn_system().total_nodes() == 8

    def test_lock_skeleton(self):
        schema = DatabaseSchema.single_site(["x"])
        system = TransactionSystem(
            [seq("T1", ["Lx", "A.x", "Ux"], schema)]
        )
        assert system.lock_skeleton().total_nodes() == 2

    def test_iteration(self):
        names = [t.name for t in two_txn_system()]
        assert names == ["T1", "T2"]
