"""Tests for the Theorem 2 construction (repro.reductions.encoding)."""

import random

import pytest

from repro.analysis.bipartite import (
    find_lock_only_deadlock_prefix,
    is_lock_minimal,
)
from repro.core.operations import OpKind
from repro.core.reduction import (
    is_deadlock_prefix,
    prefix_has_schedule,
    reduction_graph,
)
from repro.paper.figures import figure5_formula
from repro.reductions.cnf import CnfFormula, random_three_sat_prime
from repro.reductions.encoding import (
    assignment_to_prefix,
    decode_assignment,
    encode_formula,
    expected_cycle,
    verify_cycle,
)
from repro.reductions.solvers import brute_force_satisfiable


def fig5_system():
    formula = figure5_formula()
    return formula, encode_formula(formula)


class TestEncodeFormula:
    def test_structure(self):
        formula, system = fig5_system()
        r, n = formula.clause_count, len(formula.variables)
        expected_entities = 2 * r + 3 * n
        assert len(system.entities) == expected_entities
        for t in system.transactions:
            assert t.node_count == 2 * expected_entities
        # one entity per site
        assert len(system.schema.sites) == expected_entities

    def test_lock_minimal(self):
        _, system = fig5_system()
        assert is_lock_minimal(system)

    def test_arcs_are_lock_to_unlock(self):
        _, system = fig5_system()
        for t in system.transactions:
            for u, v in t.dag.arcs:
                assert t.ops[u].kind is OpKind.LOCK
                assert t.ops[v].kind is OpKind.UNLOCK

    def test_t1_arc_families(self):
        formula, system = fig5_system()
        t1 = system[0]
        # x1 occurs positively in c1 (h) and c2 (k), negatively in c3 (l)
        assert t1.dag.precedes(t1.lock_node("c1"), t1.unlock_node("x1"))
        assert t1.dag.precedes(t1.lock_node("c2"), t1.unlock_node("x1'"))
        assert t1.dag.precedes(t1.lock_node("x1"), t1.unlock_node("x1''"))
        # l = 3, l+1 wraps to 1
        assert t1.dag.precedes(t1.lock_node("x1'"), t1.unlock_node("c1"))
        assert t1.dag.precedes(t1.lock_node("x1'"), t1.unlock_node("c1'"))
        # common arcs
        assert t1.dag.precedes(t1.lock_node("c2'"), t1.unlock_node("c2"))

    def test_t2_arc_families(self):
        formula, system = fig5_system()
        t2 = system[1]
        assert t2.dag.precedes(t2.lock_node("c3"), t2.unlock_node("x1"))
        assert t2.dag.precedes(
            t2.lock_node("x1''"), t2.unlock_node("x1'")
        )
        # h = 1 -> arcs into c2 unlocks
        assert t2.dag.precedes(t2.lock_node("x1"), t2.unlock_node("c2"))
        assert t2.dag.precedes(t2.lock_node("x1"), t2.unlock_node("c2'"))
        # k = 2 -> arcs into c3 unlocks
        assert t2.dag.precedes(t2.lock_node("x1'"), t2.unlock_node("c3"))
        assert t2.dag.precedes(
            t2.lock_node("x1'"), t2.unlock_node("c3'")
        )

    def test_not_three_sat_prime_rejected(self):
        f = CnfFormula.from_lists([["x"], ["~x"]])
        with pytest.raises(Exception):
            encode_formula(f)

    def test_reserved_names_rejected(self):
        f = CnfFormula.from_lists([["c1"], ["c1"], ["~c1"]])
        with pytest.raises(ValueError):
            encode_formula(f)


class TestForwardCertificate:
    """Satisfiable => the constructed prefix is a deadlock prefix with
    the constructed cycle."""

    def test_figure5(self):
        formula, system = fig5_system()
        assignment = brute_force_satisfiable(formula)
        prefix = assignment_to_prefix(formula, system, assignment)
        cycle = expected_cycle(formula, system, assignment)
        graph = reduction_graph(prefix)
        assert verify_cycle(graph, cycle)
        assert is_deadlock_prefix(prefix)
        assert prefix_has_schedule(prefix) is not None

    def test_prefix_is_lock_only(self):
        formula, system = fig5_system()
        assignment = brute_force_satisfiable(formula)
        prefix = assignment_to_prefix(formula, system, assignment)
        for i, t in enumerate(system.transactions):
            for node in prefix.executed_nodes(i):
                assert t.ops[node].kind is OpKind.LOCK

    def test_unsatisfying_assignment_rejected(self):
        formula, system = fig5_system()
        with pytest.raises(ValueError):
            assignment_to_prefix(
                formula, system, {"x1": False, "x2": False}
            )

    def test_random_sat_instances(self):
        rng = random.Random(23)
        tested = 0
        for _ in range(12):
            formula = random_three_sat_prime(rng.randint(3, 5), rng)
            assignment = brute_force_satisfiable(formula)
            if assignment is None:
                continue
            tested += 1
            system = encode_formula(formula)
            prefix = assignment_to_prefix(formula, system, assignment)
            cycle = expected_cycle(formula, system, assignment)
            graph = reduction_graph(prefix)
            assert verify_cycle(graph, cycle), f"formula {formula}"
            decoded = decode_assignment(formula, system, cycle)
            assert formula.evaluate(decoded)
        assert tested >= 5  # random 3SAT' is usually satisfiable


class TestBackwardCertificate:
    """Deadlock prefix => satisfying assignment (the converse proof)."""

    def test_decode_from_independent_search(self):
        formula, system = fig5_system()
        witness = find_lock_only_deadlock_prefix(system)
        assert witness is not None
        decoded = decode_assignment(formula, system, witness.cycle)
        assert formula.evaluate(decoded)

    def test_unsat_implies_deadlock_free(self):
        """The coNP direction on the smallest UNSAT 3SAT' instance."""
        formula = CnfFormula.from_lists([["a"], ["a"], ["~a"]])
        assert brute_force_satisfiable(formula) is None
        system = encode_formula(formula)
        assert find_lock_only_deadlock_prefix(system) is None

    def test_sat_iff_deadlock_small_sweep(self):
        """SAT <=> deadlock on all 1-variable 3SAT' instances we can
        build by hand plus the figure 5 instance."""
        cases = [
            (CnfFormula.from_lists([["a"], ["a"], ["~a"]]), False),
            (figure5_formula(), True),
        ]
        for formula, expect_sat in cases:
            assert (
                brute_force_satisfiable(formula) is not None
            ) == expect_sat
            system = encode_formula(formula)
            assert (
                find_lock_only_deadlock_prefix(system) is not None
            ) == expect_sat


class TestVerifyCycle:
    def test_rejects_broken_cycle(self):
        formula, system = fig5_system()
        assignment = brute_force_satisfiable(formula)
        prefix = assignment_to_prefix(formula, system, assignment)
        cycle = expected_cycle(formula, system, assignment)
        graph = reduction_graph(prefix)
        assert not verify_cycle(graph, cycle[:-1])
        assert not verify_cycle(graph, [])
