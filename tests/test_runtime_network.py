"""Tests for the simulator's cross-site network latency model."""

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import TransactionBuilder
from repro.sim.runtime import SimulationConfig, simulate

from tests.helpers import seq


def cross_site_transaction() -> TransactionSystem:
    """Lx at site 1 must complete before Ly at site 2 (a cross-site
    dependency that pays the network delay)."""
    schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
    b = TransactionBuilder("T", schema)
    lx, ux = b.lock("x"), b.unlock("x")
    ly, uy = b.lock("y"), b.unlock("y")
    b.chain(lx, ux)
    b.chain(ly, uy)
    b.arc(lx, ly)  # cross-site arc
    return TransactionSystem([b.build()])


class TestNetworkDelay:
    def test_zero_delay_baseline(self):
        system = cross_site_transaction()
        config = SimulationConfig(seed=0, arrival_spread=0.0)
        result = simulate(system, "blocking", config)
        assert result.committed == 1
        baseline = result.end_time

        slow = SimulationConfig(
            seed=0, arrival_spread=0.0, network_delay=5.0
        )
        delayed = simulate(system, "blocking", slow)
        assert delayed.committed == 1
        assert delayed.end_time >= baseline + 5.0

    def test_single_site_unaffected(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [seq("T", ["Lx", "Ly", "Ux", "Uy"], schema)]
        )
        fast = simulate(
            system, "blocking",
            SimulationConfig(seed=0, arrival_spread=0.0),
        )
        slow = simulate(
            system, "blocking",
            SimulationConfig(
                seed=0, arrival_spread=0.0, network_delay=9.0
            ),
        )
        assert fast.end_time == slow.end_time

    def test_delay_does_not_break_policies(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
            ]
        )
        for policy in ("wound-wait", "wait-die", "detect", "timeout"):
            for s in range(8):
                result = simulate(
                    system, policy,
                    SimulationConfig(seed=s, network_delay=1.5),
                )
                assert not result.deadlocked, f"{policy} seed {s}"
                assert result.committed == 2, f"{policy} seed {s}"
