"""Unit tests for repro.analysis.minimal_prefix."""

from repro.analysis.minimal_prefix import (
    check_pair_minimal_prefix,
    minimal_prefix_mask,
)
from repro.analysis.pairs import check_pair
from repro.util.bitset import bits_of

from tests.helpers import seq, small_random_system


class TestMinimalPrefixMask:
    def test_predecessors_always_included(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        mask = minimal_prefix_mask(t1, t2, "y")
        # predecessors of L1y: Lx
        assert mask >> t1.lock_node("x") & 1

    def test_blocker_closure(self):
        """x ∈ R_{T2}(Ly) and T1 holds x before Ly: the loop must pull
        Ux (hence everything before it) into the prefix, reaching Ly."""
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        mask = minimal_prefix_mask(t1, t2, "y")
        assert mask >> t1.lock_node("y") & 1  # Ly forced in

    def test_no_blockers_prefix_stays_small(self):
        t1 = seq("T1", ["Lx", "Ux", "Ly", "Uy"])
        t2 = seq("T2", ["Lx", "Ux", "Ly", "Uy"])
        mask = minimal_prefix_mask(t1, t2, "y")
        # T1 releases x before Ly: prefix = {Lx, Ux}; Ly not forced.
        assert set(bits_of(mask)) == {
            t1.lock_node("x"), t1.unlock_node("x")
        }


class TestVerdictAgreement:
    def test_classic_cases(self):
        cases = [
            (["Lx", "Ly", "Ux", "Uy"], ["Lx", "Ly", "Uy", "Ux"]),
            (["Lx", "Ly", "Ux", "Uy"], ["Ly", "Lx", "Uy", "Ux"]),
            (["Lx", "Ux", "Ly", "Uy"], ["Lx", "Ux", "Ly", "Uy"]),
            (["Lx", "Ly", "Uy", "Lz", "Ux", "Uz"],
             ["Lx", "Lz", "Ly", "Ux", "Uy", "Uz"]),
        ]
        for ops1, ops2 in cases:
            t1, t2 = seq("T1", ops1), seq("T2", ops2)
            assert bool(check_pair_minimal_prefix(t1, t2)) == bool(
                check_pair(t1, t2)
            )

    def test_random_sweep_agreement(self):
        """The O(n³) and O(n²) algorithms agree on 120 random pairs."""
        for seed in range(120):
            system = small_random_system(seed, n_transactions=2)
            t1, t2 = system[0], system[1]
            assert bool(check_pair_minimal_prefix(t1, t2)) == bool(
                check_pair(t1, t2)
            ), f"disagreement at seed {seed}"

    def test_no_common_entities(self):
        assert check_pair_minimal_prefix(
            seq("T1", ["Lx", "Ux"]), seq("T2", ["Ly", "Uy"])
        )
