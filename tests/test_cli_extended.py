"""Tests for the show/repair CLI subcommands and simulator options."""

import pytest

from repro.cli import main
from repro.io.textfmt import parse_system

BROKEN = """
schema s1: x y

txn T1
  seq Lx Ly Ux Uy
end

txn T2
  seq Ly Lx Uy Ux
end
"""


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.txn"
    path.write_text(BROKEN)
    return str(path)


class TestShow:
    def test_text(self, broken_file, capsys):
        assert main(["show", broken_file]) == 0
        out = capsys.readouterr().out
        assert "txn T1" in out
        parse_system(out)  # output is valid input

    def test_json(self, broken_file, capsys):
        assert main(["show", broken_file, "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert '"transactions"' in out

    def test_dot(self, broken_file, capsys):
        assert main(["show", broken_file, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")


class TestRepair:
    def test_repair_output_is_certified(self, broken_file, capsys):
        assert main(["repair", broken_file]) == 0
        out = capsys.readouterr().out
        assert "# repaired" in out
        body = "\n".join(
            line for line in out.splitlines()
            if not line.startswith("#")
        )
        repaired = parse_system(body)
        from repro.analysis.fixed_k import check_system

        assert check_system(repaired)

    def test_repair_with_optimize(self, broken_file, capsys):
        assert main(["repair", broken_file, "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "early-unlock" in out

    def test_repair_noop_when_safe(self, tmp_path, capsys):
        path = tmp_path / "safe.txn"
        path.write_text(
            "txn T1\n  seq Lx Ly Uy Ux\nend\n"
            "txn T2\n  seq Lx Ly Ux Uy\nend\n"
        )
        assert main(["repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no repair needed" in out


class TestSimulateNetworkDelay:
    def test_flag_accepted(self, broken_file, capsys):
        code = main(
            [
                "simulate", broken_file,
                "--policies", "wound-wait",
                "--network-delay", "2.5",
            ]
        )
        assert code == 0
        assert "wound-wait" in capsys.readouterr().out


class TestSimulateOpenSystem:
    ARGS = [
        "simulate", "--arrival-rate", "1.0", "--max-transactions", "30",
        "--warmup", "5", "--entities", "8", "--sites", "3",
        "--policies", "wound-wait",
    ]

    def test_file_optional_with_arrival_rate(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "thruput" in out
        assert "p99" in out
        assert "30/30" in out

    def test_file_required_without_arrival_rate(self, capsys):
        assert main(["simulate", "--policies", "wound-wait"]) == 2
        assert "--arrival-rate" in capsys.readouterr().err

    def test_file_seeds_the_open_run(self, broken_file, capsys):
        # The file goes before the nargs="+" flags so argparse cannot
        # swallow it into --policies.
        assert main([self.ARGS[0], broken_file, *self.ARGS[1:]]) == 0
        out = capsys.readouterr().out
        assert "32/32" in out  # 2 batch transactions + 30 arrivals

    def test_closed_mode_table_unchanged(self, broken_file, capsys):
        assert main(
            ["simulate", broken_file, "--policies", "wound-wait"]
        ) == 0
        out = capsys.readouterr().out
        assert "serializable" in out  # closed-batch table, not open


class TestSweep:
    ARGS = [
        "sweep", "--policies", "wound-wait", "wait-die",
        "--arrival-rates", "0.5", "1.0", "--seeds", "0", "1",
        "--max-transactions", "25", "--warmup", "5",
        "--entities", "8", "--sites", "3", "--serial",
    ]

    def test_grid_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "sweep: 8 cells" in out
        assert out.count("wound-wait") == 4  # one row per cell
        assert "thruput" in out

    def test_json_and_csv_output(self, tmp_path, capsys):
        import csv
        import json

        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        assert main(
            [*self.ARGS, "--json", str(json_path), "--csv", str(csv_path)]
        ) == 0
        document = json.loads(json_path.read_text())
        assert len(document["cells"]) == 8
        with open(csv_path, newline="") as handle:
            assert len(list(csv.DictReader(handle))) == 8

    def test_closed_batch_cells(self, capsys):
        assert main([
            "sweep", "--policies", "wound-wait",
            "--arrival-rates", "0", "--seeds", "0",
            "--batch", "5", "--entities", "8", "--sites", "3",
            "--serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "5/5" in out
