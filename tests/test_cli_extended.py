"""Tests for the show/repair CLI subcommands and simulator options."""

import pytest

from repro.cli import main
from repro.io.textfmt import parse_system

BROKEN = """
schema s1: x y

txn T1
  seq Lx Ly Ux Uy
end

txn T2
  seq Ly Lx Uy Ux
end
"""


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.txn"
    path.write_text(BROKEN)
    return str(path)


class TestShow:
    def test_text(self, broken_file, capsys):
        assert main(["show", broken_file]) == 0
        out = capsys.readouterr().out
        assert "txn T1" in out
        parse_system(out)  # output is valid input

    def test_json(self, broken_file, capsys):
        assert main(["show", broken_file, "--format", "json"]) == 0
        out = capsys.readouterr().out
        assert '"transactions"' in out

    def test_dot(self, broken_file, capsys):
        assert main(["show", broken_file, "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")


class TestRepair:
    def test_repair_output_is_certified(self, broken_file, capsys):
        assert main(["repair", broken_file]) == 0
        out = capsys.readouterr().out
        assert "# repaired" in out
        body = "\n".join(
            line for line in out.splitlines()
            if not line.startswith("#")
        )
        repaired = parse_system(body)
        from repro.analysis.fixed_k import check_system

        assert check_system(repaired)

    def test_repair_with_optimize(self, broken_file, capsys):
        assert main(["repair", broken_file, "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "early-unlock" in out

    def test_repair_noop_when_safe(self, tmp_path, capsys):
        path = tmp_path / "safe.txn"
        path.write_text(
            "txn T1\n  seq Lx Ly Uy Ux\nend\n"
            "txn T2\n  seq Lx Ly Ux Uy\nend\n"
        )
        assert main(["repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no repair needed" in out


class TestSimulateNetworkDelay:
    def test_flag_accepted(self, broken_file, capsys):
        code = main(
            [
                "simulate", broken_file,
                "--policies", "wound-wait",
                "--network-delay", "2.5",
            ]
        )
        assert code == 0
        assert "wound-wait" in capsys.readouterr().out
