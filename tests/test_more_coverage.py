"""Edge cases and API corners not covered elsewhere."""

import pytest

from repro.analysis.exhaustive import SearchBudgetExceeded
from repro.analysis.theorem1 import find_deadlock_prefix
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.runtime import (
    SimulationConfig,
    find_deadlocking_seed,
    simulate,
)

from tests.helpers import seq


def deadlock_pair() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


class TestFindDeadlockingSeed:
    def test_finds_seed_for_refuted_system(self):
        found = find_deadlocking_seed(deadlock_pair(), max_seeds=100)
        assert found is not None
        seed, result = found
        assert result.deadlocked
        # reproducible
        again = simulate(
            deadlock_pair(), "blocking", SimulationConfig(seed=seed)
        )
        assert again.deadlocked

    def test_none_for_certified_system(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
                seq("T2", ["Lx", "Ly", "Ux", "Uy"], schema),
            ]
        )
        assert find_deadlocking_seed(system, max_seeds=30) is None

    def test_respects_base_config(self):
        found = find_deadlocking_seed(
            deadlock_pair(),
            max_seeds=100,
            config=SimulationConfig(network_delay=1.0),
        )
        assert found is not None


class TestSearchBudgets:
    def test_theorem1_budget(self):
        with pytest.raises(SearchBudgetExceeded):
            find_deadlock_prefix(deadlock_pair(), max_states=2)

    def test_lemma1_budget(self):
        from repro.analysis.exhaustive import find_lemma1_violation

        with pytest.raises(SearchBudgetExceeded):
            find_lemma1_violation(deadlock_pair(), max_states=2)


class TestSystemOfCopiesEdges:
    def test_zero_copies(self):
        t = seq("T", ["Lx", "Ux"])
        system = TransactionSystem.of_copies(t, 0)
        assert len(system) == 0

    def test_one_copy_deadlock_free(self):
        from repro.analysis.exhaustive import find_deadlock

        t = seq("T", ["Lx", "Ly", "Ux", "Uy"])
        system = TransactionSystem.of_copies(t, 1)
        assert find_deadlock(system) is None


class TestEmptySystem:
    def test_empty_system_trivially_fine(self):
        from repro.analysis.exhaustive import (
            find_deadlock,
            find_lemma1_violation,
        )
        from repro.analysis.fixed_k import check_system

        system = TransactionSystem([])
        assert find_deadlock(system) is None
        assert find_lemma1_violation(system) is None
        assert check_system(system)


class TestSingleSiteReducesToCentralized:
    def test_identical_sequential_copies_never_deadlock(self):
        """§3's remark: in a centralized DB any set of identical
        transactions is deadlock-free."""
        from repro.analysis.exhaustive import find_deadlock

        schema = DatabaseSchema.single_site(["x", "y", "z"])
        t = seq("T", ["Lx", "Ly", "Ux", "Lz", "Uy", "Uz"], schema)
        for copies in (2, 3):
            system = TransactionSystem.of_copies(t, copies)
            assert find_deadlock(system) is None


class TestVerdictDetails:
    def test_theorem3_reports_first_lock(self):
        from repro.analysis.pairs import check_pair

        t1 = seq("T1", ["Lq", "Lx", "Ly", "Uy", "Ux", "Uq"])
        t2 = seq("T2", ["Lx", "Ly", "Uy", "Ux"])
        verdict = check_pair(t1, t2)
        assert verdict
        assert verdict.details["x"] == "x"
