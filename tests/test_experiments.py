"""The sweep package: grid construction, runner determinism, output."""

import csv
import json

import pytest

from repro.experiments import (
    SweepCell,
    SweepSpec,
    run_cell,
    run_sweep,
    sweep_records,
    write_csv,
    write_json,
)
from repro.sim.runtime import SimulationConfig
from repro.sim.workload import WorkloadSpec

WORKLOAD = WorkloadSpec(
    n_transactions=5,
    n_entities=8,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.8,
)

SPEC = SweepSpec(
    policies=("wound-wait", "wait-die"),
    protocols=("instant", "two-phase"),
    arrival_rates=(0.0, 0.8),
    failure_rates=(0.0, 0.05),
    seeds=(0, 1, 2),
    workload=WORKLOAD,
    base=SimulationConfig(
        max_transactions=25,
        warmup_time=5.0,
        workload_seed=3,
        repair_time=5.0,
    ),
)


class TestGrid:
    def test_cell_count_and_order(self):
        cells = SPEC.cells()
        assert len(cells) == 2 * 2 * 2 * 2 * 3
        # Declaration order: policy outermost, seed innermost.
        assert cells[0] == SweepCell("wound-wait", "instant", 0.0, 0.0, 0)
        assert cells[1].seed == 1
        assert cells[-1] == SweepCell("wait-die", "two-phase", 0.8, 0.05, 2)

    def test_cell_config_overrides(self):
        cell = SweepCell("wait-die", "two-phase", 0.8, 0.05, 7)
        config = SPEC.cell_config(cell)
        assert config.seed == 7
        assert config.commit_protocol == "two-phase"
        assert config.arrival_rate == 0.8
        assert config.failure_rate == 0.05
        assert config.workload == WORKLOAD
        assert config.max_transactions == 25  # inherited from base
        assert config.workload_seed == 3

    def test_closed_cells_share_one_batch(self):
        closed = SweepCell("wound-wait", "instant", 0.0, 0.0, 0)
        system_a = SPEC.cell_system(closed)
        system_b = SPEC.cell_system(closed)
        assert [t.name for t in system_a] == [t.name for t in system_b]
        assert len(system_a) == WORKLOAD.n_transactions

    def test_open_cells_start_empty(self):
        open_cell = SweepCell("wound-wait", "instant", 0.8, 0.0, 0)
        assert len(SPEC.cell_system(open_cell)) == 0


class TestRunnerDeterminism:
    """The satellite guarantee: the multiprocessing runner is a pure
    speedup — per-cell results are bit-identical to serial execution."""

    def test_parallel_results_bit_identical_to_serial(self):
        serial = run_sweep(SPEC, parallel=False)
        parallel = run_sweep(SPEC, processes=4)
        assert len(serial) == len(SPEC.cells())
        assert serial == parallel

    def test_single_process_pool_matches_serial(self):
        small = SweepSpec(
            policies=("wound-wait",),
            protocols=("instant",),
            arrival_rates=(0.8,),
            failure_rates=(0.0,),
            seeds=(0, 1),
            workload=WORKLOAD,
            base=SPEC.base,
        )
        assert run_sweep(small, processes=1) == run_sweep(
            small, parallel=False
        )

    def test_run_cell_is_reproducible(self):
        cell = SweepCell("wait-die", "two-phase", 0.8, 0.05, 1)
        assert run_cell(SPEC, cell) == run_cell(SPEC, cell)


class TestRecordsAndOutput:
    @pytest.fixture(scope="class")
    def results(self):
        return run_sweep(SPEC, parallel=False)

    def test_records_align_with_cells(self, results):
        records = sweep_records(SPEC, results)
        assert len(records) == len(SPEC.cells())
        first = records[0]
        for key in (
            "policy", "protocol", "arrival_rate", "failure_rate",
            "seed", "committed", "steady_throughput", "p95",
        ):
            assert key in first
        open_rows = [r for r in records if r["arrival_rate"] > 0]
        assert all(r["injected"] == 25 for r in open_rows)

    def test_records_reject_misaligned_results(self, results):
        with pytest.raises(ValueError, match="cells"):
            sweep_records(SPEC, results[:-1])

    def test_write_json_round_trips(self, results, tmp_path):
        path = tmp_path / "sweep.json"
        write_json(str(path), SPEC, results)
        document = json.loads(path.read_text())
        assert document["spec"]["policies"] == ["wound-wait", "wait-die"]
        assert len(document["cells"]) == len(SPEC.cells())

    def test_write_csv_round_trips(self, results, tmp_path):
        path = tmp_path / "sweep.csv"
        write_csv(str(path), SPEC, results)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(SPEC.cells())
        assert rows[0]["policy"] == "wound-wait"

    def test_write_csv_rejects_empty_sweeps(self, tmp_path):
        empty = SweepSpec(policies=(), workload=WORKLOAD)
        with pytest.raises(ValueError, match="empty"):
            write_csv(str(tmp_path / "x.csv"), empty, [])
