"""Observability must not change behaviour — enabled or disabled.

Disabled mode is free by construction (nothing attaches), so the
interesting direction is *enabled*: every probe is observation-only,
drawing no randomness and scheduling no events, so a fully observed
run must produce the same behaviour digest as a plain one across the
bench scenarios (closed batch, open/detect, replicated-with-failures,
saturated detection).

The second half pins the sampler's accounting: its time series must
integrate back to the aggregates the run loop computed independently
(time-averaged concurrency, commit/abort/arrival totals).
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import TransactionSystem
from repro.sim import (
    ObserveConfig,
    SimulationConfig,
    Simulator,
    simulate,
)
from repro.sim.network import NetworkConfig
from repro.sim.workload import WorkloadSpec, random_system

# The bench's behaviour-digest surface (benchmarks/bench_core_speed.py
# DIGEST_FIELDS): equality here is equality of everything the golden
# matrix and the perf gate pin.
DIGEST_FIELDS = (
    "policy", "commit_protocol", "replica_protocol", "replication_factor",
    "committed", "total", "end_time", "aborts", "wounds", "deaths",
    "timeouts", "detected", "crash_aborts", "unavailable_aborts",
    "commit_aborts", "crashes", "deadlocked", "deadlock_cycle", "waits",
    "wait_time", "commit_messages", "prepared_blocks",
    "prepared_block_time", "latencies", "exec_latencies",
    "commit_latencies", "serializable", "truncated", "injected",
    "measured_committed", "inflight_area",
)


def digest_fields(result) -> dict:
    return {f: getattr(result, f) for f in DIGEST_FIELDS}


def _scenarios():
    """Scaled-down variants of the bench scenarios."""

    def closed():
        spec = WorkloadSpec(
            n_transactions=40, n_entities=16, n_sites=4,
            entities_per_txn=(2, 4), actions_per_entity=(0, 2),
            hotspot_skew=0.5,
        )
        system = random_system(random.Random(7), spec)
        return system, "wound-wait", SimulationConfig(
            arrival_spread=20.0, seed=1,
        )

    def open_detect():
        spec = WorkloadSpec(
            n_entities=16, n_sites=4, entities_per_txn=(2, 4),
            actions_per_entity=(0, 2), hotspot_skew=0.6,
        )
        return TransactionSystem([]), "detect", SimulationConfig(
            arrival_rate=0.35, max_transactions=120, warmup_time=50.0,
            workload=spec, seed=1,
        )

    def replicated():
        spec = WorkloadSpec(
            n_entities=12, n_sites=4, entities_per_txn=(2, 3),
            actions_per_entity=(0, 1), hotspot_skew=0.4,
            read_fraction=0.3, replication_factor=3,
        )
        return TransactionSystem([]), "wound-wait", SimulationConfig(
            arrival_rate=0.8, max_transactions=120, warmup_time=50.0,
            workload=spec, seed=2, replica_protocol="rowa-available",
            failure_rate=0.002, repair_time=8.0,
            commit_protocol="two-phase",
        )

    def detection():
        spec = WorkloadSpec(
            n_entities=12, n_sites=4, entities_per_txn=(2, 4),
            actions_per_entity=(0, 2), hotspot_skew=0.8,
        )
        return TransactionSystem([]), "detect", SimulationConfig(
            arrival_rate=0.4, max_transactions=60, warmup_time=50.0,
            workload=spec, seed=3, detection_interval=4.0,
            max_time=4_000.0,
        )

    def chaos():
        spec = WorkloadSpec(
            n_entities=12, n_sites=4, entities_per_txn=(2, 3),
            actions_per_entity=(0, 1), hotspot_skew=0.5,
            read_fraction=0.3, replication_factor=3,
        )
        return TransactionSystem([]), "wound-wait", SimulationConfig(
            arrival_rate=0.6, max_transactions=80, warmup_time=30.0,
            workload=spec, seed=4, replica_protocol="quorum",
            commit_protocol="paxos-commit", network_delay=0.5,
            network=NetworkConfig(
                loss_rate=0.1, dup_rate=0.05, jitter=0.2,
                partition_schedule=((40.0, 25.0, ("s1", "s2")),),
            ),
        )

    return {
        "closed": closed,
        "open": open_detect,
        "replicated": replicated,
        "detection": detection,
        "chaos": chaos,
    }


class TestDigestTransparency:
    @pytest.mark.parametrize("name", sorted(_scenarios()))
    def test_fully_observed_run_is_bit_identical(self, name, tmp_path):
        builder = _scenarios()[name]
        system, policy, config = builder()
        plain = simulate(system, policy, config)

        system2, policy2, config2 = builder()
        observed_cfg = dataclasses.replace(
            config2,
            observe=ObserveConfig(
                trace=True,
                metrics_window=20.0,
                flight_recorder=str(tmp_path / name),
                flight_cascade_threshold=3,
                attribution=True,
            ),
        )
        sim = Simulator(system2, policy2, observed_cfg)
        observed = sim.run()

        assert digest_fields(observed) == digest_fields(plain)
        # The consumers actually saw the run.
        assert len(sim.observe.tracer) > 0
        assert observed.timeseries is not None
        assert observed.attribution is not None
        assert observed.attribution["conservation"]["exact"] is True

    @pytest.mark.parametrize("name", sorted(_scenarios()))
    def test_sampled_run_is_bit_identical(self, name):
        """1-in-N sampling drops probe *delivery*, never behaviour:
        the sampled run must match the plain digest exactly too."""
        builder = _scenarios()[name]
        system, policy, config = builder()
        plain = simulate(system, policy, config)

        system2, policy2, config2 = builder()
        sampled_cfg = dataclasses.replace(
            config2,
            observe=ObserveConfig(
                trace=True, attribution=True, sample_every=8
            ),
        )
        sim = Simulator(system2, policy2, sampled_cfg)
        sampled = sim.run()

        assert digest_fields(sampled) == digest_fields(plain)
        assert sampled.attribution["sampled"] is True

    def test_all_disabled_config_attaches_nothing(self):
        system, policy, config = _scenarios()["closed"]()
        config = dataclasses.replace(config, observe=ObserveConfig())
        assert not ObserveConfig().enabled
        sim = Simulator(system, policy, config)
        assert sim.observe is None
        # No instance shadow on the dispatch seam either.
        assert "dispatch" not in sim._registry.__dict__

    def test_observed_result_is_picklable_and_plain(self):
        import pickle

        system, policy, config = _scenarios()["closed"]()
        config = dataclasses.replace(
            config, observe=ObserveConfig(metrics_window=10.0)
        )
        result = simulate(system, policy, config)
        from repro.sim.metrics import SimulationResult

        assert type(result) is SimulationResult
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result


class TestSamplerIntegratesBack:
    """The time series must re-derive the run's own aggregates."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        rate=st.sampled_from([0.2, 0.4, 0.6]),
        policy=st.sampled_from(["wound-wait", "wait-die"]),
    )
    def test_open_system_series(self, seed, rate, policy):
        spec = WorkloadSpec(
            n_entities=10, n_sites=3, entities_per_txn=(2, 3),
            hotspot_skew=0.6,
        )
        config = SimulationConfig(
            arrival_rate=rate, max_transactions=30, workload=spec,
            seed=seed, observe=ObserveConfig(metrics_window=15.0),
        )
        result = simulate(TransactionSystem([]), policy, config)
        assert not result.truncated
        series = result.timeseries
        windows = series["windows"]
        # The sampler's warmup-gated integral mirrors the run loop's
        # exactly (same events, same formula) — so time-averaged
        # concurrency from the series equals the result aggregate.
        assert series["inflight_area"] == result.inflight_area
        # Window counts sum back to the run totals.
        assert sum(w["commits"] for w in windows) == result.committed
        assert sum(w["aborts"] for w in windows) == result.aborts
        assert sum(w["arrivals"] for w in windows) == result.injected
        # With no warmup, the full-time window integrals cover the
        # whole run: their weighted mean is the mean concurrency.
        area = sum(
            w["inflight_mean"] * (w["t1"] - w["t0"]) for w in windows
        )
        assert area == pytest.approx(result.inflight_area, rel=1e-9)
        if result.end_time > 0:
            assert area / result.end_time == pytest.approx(
                result.mean_inflight, rel=1e-9
            )
        # Windows tile the run without gaps.
        for prev, cur in zip(windows, windows[1:]):
            assert cur["t0"] == prev["t1"]
        if windows:
            assert windows[-1]["t1"] == pytest.approx(result.end_time)

    def test_closed_batch_series(self):
        system, policy, config = _scenarios()["closed"]()
        config = dataclasses.replace(
            config, observe=ObserveConfig(metrics_window=10.0)
        )
        result = simulate(system, policy, config)
        windows = result.timeseries["windows"]
        assert sum(w["commits"] for w in windows) == result.committed
        assert result.timeseries["inflight_area"] == result.inflight_area
