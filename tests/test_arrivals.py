"""The open-system engine: arrivals, run-until, steady-state metrics."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.arrivals import ArrivalProcess, OpenSystem
from repro.sim.runtime import SimulationConfig, Simulator, simulate
from repro.sim.workload import WorkloadSpec

SPEC = WorkloadSpec(
    n_entities=8,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.5,
)


def open_config(**overrides) -> SimulationConfig:
    defaults = dict(
        arrival_rate=1.0,
        max_transactions=40,
        workload=SPEC,
        seed=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def empty() -> TransactionSystem:
    return TransactionSystem([])


class TestInjection:
    def test_injects_exactly_the_budget(self):
        result = simulate(empty(), "wound-wait", open_config())
        assert result.injected == 40
        assert result.total == 40
        assert result.committed == 40
        assert not result.truncated

    def test_zero_rate_creates_no_arrival_process(self):
        sim = Simulator(empty(), "wound-wait", SimulationConfig())
        assert sim.arrivals is None

    def test_arrival_process_rejects_zero_rate(self):
        sim = Simulator(empty(), "wound-wait", SimulationConfig())
        with pytest.raises(ValueError, match="arrival_rate"):
            ArrivalProcess(sim)

    def test_max_time_horizon_bounds_injection(self):
        config = open_config(max_transactions=0, max_time=30.0)
        result = simulate(empty(), "wound-wait", config)
        assert 0 < result.injected < 200
        assert result.total == result.injected

    def test_unique_names_even_against_the_closed_batch(self):
        schema = DatabaseSchema.single_site(["x"], site="s0")
        batch = TransactionSystem(
            [Transaction.sequential("TX1", ["Lx", "Ux"], schema)]
        )
        sim = Simulator(batch, "wound-wait", open_config())
        result = sim.run()
        assert result.total == 41  # 1 batch + 40 injected
        assert result.injected == 40
        names = [t.name for t in sim.system]
        assert len(set(names)) == len(names)
        assert "TX1'" in names

    def test_batch_placement_wins_for_shared_entity_names(self):
        # Generated workloads name entities e0..eN; replaying one as
        # the seed batch must not conflict with the arrival pool's own
        # e0..eN placement — the batch's sites win and the arrivals
        # contend with the batch on the shared entities.
        schema = DatabaseSchema.single_site(["e0", "e1"], site="zzz")
        batch = TransactionSystem(
            [Transaction.sequential("B1", ["Le0", "Le1", "Ue0", "Ue1"],
                                    schema)]
        )
        sim = Simulator(batch, "wound-wait", open_config())
        assert sim.arrivals.schema.site_of("e0") == "zzz"
        result = sim.run()
        assert result.committed == result.total == 41

    def test_closed_batch_participates_in_the_open_run(self):
        schema = DatabaseSchema.single_site(["x"], site="s0")
        batch = TransactionSystem(
            [Transaction.sequential("B1", ["Lx", "A.x", "Ux"], schema)]
        )
        result = simulate(batch, "wound-wait", open_config())
        assert result.committed == result.total == 41
        assert result.latencies[0] >= 0  # the batch transaction too


class TestDeterminism:
    def test_same_config_same_result(self):
        config = open_config(failure_rate=0.02, repair_time=5.0)
        first = simulate(empty(), "wound-wait", config)
        second = simulate(empty(), "wound-wait", config)
        assert first == second

    def test_seed_changes_traffic_but_not_schema(self):
        a = Simulator(empty(), "wound-wait", open_config(seed=1))
        b = Simulator(empty(), "wound-wait", open_config(seed=2))
        assert a.arrivals.schema == b.arrivals.schema
        assert a.run() != b.run()

    def test_workload_seed_changes_schema(self):
        a = Simulator(empty(), "wound-wait", open_config())
        b = Simulator(
            empty(), "wound-wait", open_config(workload_seed=9)
        )
        assert a.arrivals.schema != b.arrivals.schema


class TestRunUntil:
    def test_detection_chain_survives_idle_gaps_between_arrivals(self):
        # A slow trickle: the detector must keep scanning while the
        # arrival process is live even if everything injected so far
        # has committed (has_uncommitted stays True).
        config = open_config(arrival_rate=0.05, max_transactions=12)
        result = simulate(empty(), "detect", config)
        assert result.committed == result.total == 12

    def test_all_policies_drain_the_budget(self):
        for policy in ("wound-wait", "wait-die", "timeout", "detect"):
            result = simulate(empty(), policy, open_config())
            assert result.committed == result.total == 40, policy

    def test_two_phase_commit_in_the_open_system(self):
        config = open_config(
            commit_protocol="two-phase", network_delay=0.5
        )
        result = simulate(empty(), "wound-wait", config)
        assert result.committed == result.total == 40
        assert result.commit_messages > 0
        assert result.latency_percentiles("commit")["p95"] > 0

    def test_failures_in_the_open_system(self):
        config = open_config(
            max_transactions=60, failure_rate=0.03, repair_time=5.0
        )
        result = simulate(empty(), "wound-wait", config)
        assert result.committed == result.total == 60
        assert result.crashes > 0


class TestSteadyStateMetrics:
    def test_warmup_window_restricts_measurement(self):
        config = open_config(max_transactions=80, warmup_time=25.0)
        result = simulate(empty(), "wound-wait", config)
        assert result.warmup_time == 25.0
        assert 0 < result.measured_committed < result.committed
        assert result.steady_throughput > 0
        assert result.mean_inflight > 0
        assert result.measured_duration == pytest.approx(
            result.end_time - 25.0
        )

    def test_percentiles_are_ordered_and_windowed(self):
        config = open_config(max_transactions=80, warmup_time=25.0)
        result = simulate(empty(), "wound-wait", config)
        p = result.latency_percentiles("total")
        assert 0 < p["p50"] <= p["p95"] <= p["p99"]
        unwindowed = [lat for lat in result.latencies if lat >= 0]
        windowed = result._window_latencies(result.latencies)
        assert len(windowed) < len(unwindowed)

    def test_open_summary_table_renders(self):
        from repro.sim.metrics import SimulationResult

        result = simulate(empty(), "wound-wait", open_config())
        table = SimulationResult.open_summary_table([result])
        assert "thruput" in table and "p99" in table


class TestOpenSystemWrapper:
    def test_append_and_frozen(self):
        schema = DatabaseSchema.single_site(["x", "y"], site="s0")
        t1 = Transaction.sequential("T1", ["Lx", "Ux"], schema)
        t2 = Transaction.sequential("T2", ["Ly", "Uy"], schema)
        open_system = OpenSystem([t1], schema)
        assert len(open_system) == 1
        assert open_system.append(t2) == 1
        assert open_system[1] is t2
        assert [t.name for t in open_system] == ["T1", "T2"]
        frozen = open_system.frozen()
        assert isinstance(frozen, TransactionSystem)
        assert len(frozen) == 2

    def test_simulator_freezes_after_an_open_run(self):
        sim = Simulator(empty(), "wound-wait", open_config())
        assert isinstance(sim.system, OpenSystem)
        sim.run()
        assert isinstance(sim.system, TransactionSystem)
        # The committed trace replays over the frozen system.
        schedule = sim.committed_schedule()
        assert len(schedule.steps) > 0
