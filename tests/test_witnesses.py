"""Tests for repro.analysis.witnesses dataclasses."""

from repro.analysis.witnesses import (
    DeadlockWitness,
    PairViolation,
    SerializationViolation,
    Verdict,
)
from repro.core.prefix import SystemPrefix
from repro.core.schedule import Schedule
from repro.core.system import GlobalNode, TransactionSystem

from tests.helpers import seq


class TestVerdict:
    def test_truthiness(self):
        assert Verdict(True, "fine")
        assert not Verdict(False, "broken")

    def test_describe_plain(self):
        assert Verdict(True, "fine").describe() == "fine"

    def test_describe_with_witness(self):
        verdict = Verdict(
            False, "bad", witness=PairViolation(1, ("x", "y"))
        )
        text = verdict.describe()
        assert "bad" in text and "condition (1)" in text

    def test_details_do_not_affect_equality(self):
        assert Verdict(True, "r", details={"a": 1}) == Verdict(
            True, "r", details={"b": 2}
        )


class TestPairViolation:
    def test_condition_1_text(self):
        text = PairViolation(1, ("x", "y")).describe()
        assert "condition (1)" in text

    def test_condition_2_text(self):
        text = PairViolation(2, ("y",), side="Q1").describe()
        assert "y" in text and "Q1" in text


class TestDeadlockWitness:
    def test_describe(self):
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"]),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"]),
            ]
        )
        prefix = SystemPrefix.from_labels(system, [["Lx"], ["Ly"]])
        cycle = (
            GlobalNode(0, system[0].lock_node("y")),
            GlobalNode(1, system[1].unlock_node("y")),
        )
        witness = DeadlockWitness(prefix, cycle)
        text = witness.describe()
        assert "cycle" in text
        assert "L1y" in text


class TestSerializationViolation:
    def test_describe(self):
        system = TransactionSystem(
            [seq("T1", ["Lx", "Ux"]), seq("T2", ["Lx", "Ux"])]
        )
        schedule = Schedule.serial(system)
        violation = SerializationViolation(schedule, (0, 1))
        text = violation.describe()
        assert "T1 -> T2" in text
