"""Tests for repro.analysis.extensions (Corollary 1 baseline)."""

import pytest

from repro.analysis.extensions import (
    check_pair_by_extensions,
    extension_pair_count,
)
from repro.analysis.pairs import check_pair

from tests.helpers import seq, small_random_system


class TestExtensionPairCount:
    def test_total_orders(self):
        t1 = seq("T1", ["Lx", "Ux"])
        t2 = seq("T2", ["Lx", "Ux"])
        assert extension_pair_count(t1, t2) == 1

    def test_partial_orders_multiply(self):
        from repro.paper.figures import figure3

        system = figure3()
        # each Figure 3 dag has 3 extensions: 3 * 3 = 9
        count = extension_pair_count(system[0], system[1])
        assert count == 9


class TestCorollary1Baseline:
    def test_agrees_with_theorem3_sequential(self):
        t1 = seq("T1", ["Lx", "Ly", "Ux", "Uy"])
        t2 = seq("T2", ["Ly", "Lx", "Uy", "Ux"])
        assert bool(check_pair_by_extensions(t1, t2)) == bool(
            check_pair(t1, t2)
        )

    def test_agrees_with_theorem3_random(self):
        for seed in range(40):
            system = small_random_system(
                seed + 4_000, n_transactions=2, n_entities=3
            )
            t1, t2 = system[0], system[1]
            naive = bool(check_pair_by_extensions(t1, t2, limit=None))
            fast = bool(check_pair(t1, t2))
            assert naive == fast, f"seed {seed + 4_000}"

    def test_failure_carries_extension_pair(self):
        from repro.paper.figures import figure3

        system = figure3()
        verdict = check_pair_by_extensions(system[0], system[1])
        assert not verdict
        assert "t1" in verdict.details and "t2" in verdict.details

    def test_limit_enforced(self):
        from repro.paper.figures import figure3

        system = figure3()
        with pytest.raises(RuntimeError):
            check_pair_by_extensions(system[0], system[1], limit=2)
