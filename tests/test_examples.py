"""Smoke tests: the example scripts run end to end.

Each example's `main()` is imported and executed with stdout captured;
assertions check the headline facts each script demonstrates.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_finds_deadlock(self, capsys):
        out = run_example("quickstart", capsys)
        assert "safe and deadlock-free? False" in out
        assert "safe and deadlock-free now? True" in out


class TestPaperTour:
    def test_covers_every_figure(self, capsys):
        out = run_example("paper_tour", capsys)
        assert "Figure 1" in out
        assert "Tirri" in out
        assert "Figure 3" in out
        assert "Figure 6" in out
        assert "3 copies deadlock: True" in out


class TestSatReductionDemo:
    def test_both_polarities(self, capsys):
        out = run_example("sat_reduction_demo", capsys)
        assert "SAT:" in out
        assert "UNSAT" in out
        assert "decoded back from the cycle" in out


class TestCommitProtocols:
    def test_commit_cost_story(self, capsys):
        out = run_example("commit_protocols", capsys)
        assert "two-phase" in out
        assert "presumed-abort" in out
        assert "crashing sites" in out
        assert "blocked-on-coordinator" in out


class TestReplicationProtocols:
    def test_availability_story(self, capsys):
        out = run_example("replication_protocols", capsys)
        assert "rowa-available" in out
        assert "quorum" in out
        assert "site-crash schedule" in out
        assert "full-service availability" in out
        # reliable sites: every protocol fully available
        assert out.count("1.000  1.000    1.000") == 3


class TestOpenSystemSweep:
    def test_open_system_story(self, capsys):
        out = run_example("open_system_sweep", capsys)
        assert "open-system run" in out
        assert "400/400" in out
        assert "thruput" in out
        assert "saturate" in out


@pytest.mark.slow
class TestBankingAudit:
    def test_repair_story(self, capsys):
        out = run_example("banking_audit", capsys)
        assert "safe and deadlock-free? False" in out
        assert "certified now? True" in out
        assert "0 deadlocks, 0 non-serializable" in out


class TestTracingRun:
    def test_observability_story(self, capsys):
        out = run_example("tracing_run", capsys)
        assert "identical to the unobserved run: True" in out
        assert "abort causes: detected=" in out
        assert "chrome trace:" in out
        assert "integrates back to the run's own aggregate: True" in out
        assert "deadlock-detected" in out


class TestContentionAnalysis:
    def test_contention_story(self, capsys):
        out = run_example("contention_analysis", capsys)
        assert "conserved exactly" in out and "True" in out
        assert "designed hotspot: e0; detected: e0" in out
        assert "blocked" in out and "behind" in out
        assert "wound:" in out
        assert "reproduces the online summary: True" in out


class TestDurableRecovery:
    def test_recovery_story(self, capsys):
        out = run_example("durable_recovery", capsys)
        assert "durable recovery" in out
        assert "two-phase" in out and "paxos-commit" in out
        assert "re-acquired exactly the log-implied locks: True" in out
        assert "presumed-abort logs nothing about aborting rounds: True" in out
        # The crashing run actually exercised inquiry resolution.
        assert "in-doubt participants resolved by inquiry: 0" not in out


class TestPartitionTolerance:
    def test_partition_story(self, capsys):
        out = run_example("partition_tolerance", capsys)
        assert "site s0 cut off" in out
        assert "two-phase" in out and "quorum" in out
        assert "quorum rides through: True" in out
        assert "all converge after the heal: True" in out
