"""Unit tests for repro.core.serialization (D(S) graphs)."""

from repro.core.entity import DatabaseSchema
from repro.core.schedule import Schedule
from repro.core.serialization import (
    d_graph,
    equivalent_serial_order,
    is_serializable,
)
from repro.core.system import TransactionSystem

from tests.helpers import seq


def nonserializable_system() -> TransactionSystem:
    """Two transactions on x, y with early unlocks: an interleaving can
    see T1 before T2 on x but T2 before T1 on y."""
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ux", "Ly", "Uy"], schema),
            seq("T2", ["Lx", "Ux", "Ly", "Uy"], schema),
        ]
    )


class TestDGraph:
    def test_serial_schedule_acyclic(self):
        system = nonserializable_system()
        s = Schedule.serial(system)
        graph = d_graph(s)
        assert graph.is_acyclic()
        assert graph.has_arc(0, 1)

    def test_interleaving_cycle(self):
        system = nonserializable_system()
        # T1 first on x, T2 first on y: D(S) gets both arc directions.
        s = Schedule(
            system,
            [
                (0, 0), (0, 1),  # T1: Lx Ux
                (1, 0), (1, 1),  # T2: Lx Ux
                (1, 2), (1, 3),  # T2: Ly Uy
                (0, 2), (0, 3),  # T1: Ly Uy
            ],
        )
        graph = d_graph(s)
        assert graph.has_arc(0, 1)  # via x
        assert graph.has_arc(1, 0)  # via y
        assert not graph.is_acyclic()
        assert not is_serializable(s)

    def test_labels(self):
        system = nonserializable_system()
        s = Schedule.serial(system)
        graph = d_graph(s)
        assert graph.arc_labels(0, 1) == {"x", "y"}

    def test_partial_schedule_future_accessor_arc(self):
        """Lemma 1 form: Ti locked x, Tj accesses x but has not locked
        it yet in S' — the arc Ti -> Tj must already exist."""
        system = nonserializable_system()
        s = Schedule(system, [(0, 0)])  # only L1x
        graph = d_graph(s)
        assert graph.has_arc(0, 1)

    def test_sparse_equals_full_on_acyclicity(self):
        system = nonserializable_system()
        for steps in (
            [(0, 0), (0, 1), (1, 0)],
            [(0, 0), (0, 1), (1, 0), (1, 1)],
        ):
            s = Schedule(system, steps)
            assert d_graph(s, full=True).is_acyclic() == d_graph(
                s, full=False
            ).is_acyclic()


class TestSerializability:
    def test_serial_is_serializable(self):
        system = nonserializable_system()
        assert is_serializable(Schedule.serial(system))

    def test_equivalent_order_of_serial(self):
        system = nonserializable_system()
        order = equivalent_serial_order(Schedule.serial(system, [1, 0]))
        assert order == [1, 0]

    def test_equivalent_order_none_when_cyclic(self):
        system = nonserializable_system()
        s = Schedule(
            system,
            [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (1, 3), (0, 2), (0, 3)],
        )
        assert equivalent_serial_order(s) is None

    def test_disjoint_transactions_any_order(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [seq("T1", ["Lx", "Ux"], schema), seq("T2", ["Ly", "Uy"], schema)]
        )
        s = Schedule(system, [(0, 0), (1, 0), (0, 1), (1, 1)])
        assert is_serializable(s)
        assert sorted(equivalent_serial_order(s)) == [0, 1]
