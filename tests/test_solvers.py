"""Unit tests for repro.reductions.solvers."""

import random

from repro.reductions.cnf import CnfFormula, random_three_sat_prime
from repro.reductions.solvers import (
    brute_force_satisfiable,
    count_models,
    dpll_solve,
)


class TestBruteForce:
    def test_sat(self):
        f = CnfFormula.from_lists([["x", "y"], ["~x"]])
        assignment = brute_force_satisfiable(f)
        assert assignment is not None
        assert f.evaluate(assignment)

    def test_unsat(self):
        f = CnfFormula.from_lists([["x"], ["~x"]])
        assert brute_force_satisfiable(f) is None

    def test_count_models(self):
        f = CnfFormula.from_lists([["x", "y"]])
        assert count_models(f) == 3

    def test_count_models_unsat(self):
        f = CnfFormula.from_lists([["a"], ["a"], ["~a"]])
        assert count_models(f) == 0


class TestDpll:
    def test_sat_returns_satisfying_total_assignment(self):
        f = CnfFormula.from_lists(
            [["x1", "x2"], ["x1", "~x2"], ["~x1", "x2"]]
        )
        assignment = dpll_solve(f)
        assert assignment is not None
        assert set(assignment) == set(f.variables)
        assert f.evaluate(assignment)

    def test_unsat(self):
        f = CnfFormula.from_lists([["a"], ["a"], ["~a"]])
        assert dpll_solve(f) is None

    def test_unit_propagation_chain(self):
        f = CnfFormula.from_lists(
            [["x"], ["~x", "y"], ["~y", "z"]]
        )
        assignment = dpll_solve(f)
        assert assignment == {"x": True, "y": True, "z": True}

    def test_pure_literal(self):
        f = CnfFormula.from_lists([["x", "y"], ["x", "~y"]])
        assignment = dpll_solve(f)
        assert assignment is not None and assignment["x"] is True

    def test_agrees_with_brute_force_random(self):
        rng = random.Random(17)
        for trial in range(40):
            f = random_three_sat_prime(rng.randint(3, 6), rng)
            bf = brute_force_satisfiable(f) is not None
            dp = dpll_solve(f) is not None
            assert bf == dp, f"trial {trial}: {f}"
