"""Unit tests for repro.core.prefix."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.prefix import SystemPrefix, prefix_mask_from_labels
from repro.core.system import GlobalNode, TransactionSystem

from tests.helpers import seq


def system2() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ux", "Ly", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


class TestMaskFromLabels:
    def test_basic(self):
        t = seq("T", ["Lx", "Ux"])
        assert prefix_mask_from_labels(t, ["Lx"]) == 0b01
        assert prefix_mask_from_labels(t, ["Lx", "Ux"]) == 0b11

    def test_unknown_label(self):
        t = seq("T", ["Lx", "Ux"])
        with pytest.raises(KeyError):
            prefix_mask_from_labels(t, ["Lz"])

    def test_ambiguous_label(self):
        t = seq("T", ["Lx", "A.x", "A.x", "Ux"])
        with pytest.raises(KeyError):
            prefix_mask_from_labels(t, ["A.x"])


class TestConstruction:
    def test_empty_and_complete(self):
        system = system2()
        empty = SystemPrefix.empty(system)
        assert empty.step_count() == 0
        complete = SystemPrefix.complete(system)
        assert complete.is_complete()

    def test_non_down_set_rejected(self):
        system = system2()
        with pytest.raises(ValueError):
            SystemPrefix(system, [0b10, 0])  # Ux without Lx

    def test_wrong_mask_count(self):
        with pytest.raises(ValueError):
            SystemPrefix(system2(), [0])

    def test_out_of_range_mask(self):
        with pytest.raises(ValueError):
            SystemPrefix(system2(), [1 << 10, 0])

    def test_from_labels_down_closes(self):
        system = system2()
        prefix = SystemPrefix.from_labels(system, [["Ly"], []])
        # Ly is node 2 of T1; requires Lx, Ux first
        assert prefix.masks[0] == 0b0111


class TestQueries:
    def test_executed(self):
        prefix = SystemPrefix(system2(), [0b0001, 0])
        assert prefix.executed(GlobalNode(0, 0))
        assert not prefix.executed(GlobalNode(0, 1))

    def test_remaining_mask(self):
        prefix = SystemPrefix(system2(), [0b0001, 0])
        assert prefix.remaining_mask(0) == 0b1110

    def test_locked_not_unlocked(self):
        system = system2()
        prefix = SystemPrefix(system, [0b0111, 0b0001])
        assert prefix.locked_not_unlocked(0) == {"y"}
        assert prefix.locked_not_unlocked(1) == {"y"}

    def test_holders_conflict(self):
        system = system2()
        prefix = SystemPrefix(system, [0b0111, 0b0001])
        with pytest.raises(ValueError):
            prefix.holders()
        assert not prefix.is_lock_consistent()

    def test_holders_ok(self):
        system = system2()
        prefix = SystemPrefix(system, [0b0001, 0b0001])
        assert prefix.holders() == {"x": 0, "y": 1}
        assert prefix.is_lock_consistent()

    def test_transaction_done(self):
        system = system2()
        prefix = SystemPrefix(system, [0b1111, 0])
        assert prefix.is_transaction_done(0)
        assert not prefix.is_transaction_done(1)
        assert not prefix.is_complete()

    def test_describe_mentions_labels(self):
        system = system2()
        prefix = SystemPrefix(system, [0b0001, 0])
        text = prefix.describe()
        assert "T1" in text and "Lx" in text

    def test_equality_and_hash(self):
        system = system2()
        a = SystemPrefix(system, [0b0001, 0])
        b = SystemPrefix(system, [0b0001, 0])
        assert a == b
        assert len({a, b}) == 1
