"""Trusted construction: the validation-free path equals the validated one.

The arrival-to-verdict fast path builds every open-system arrival
through ``CompiledWorkload.generate`` -> ``Transaction.trusted`` ->
``Dag.trusted``, none of which validate their input — the generator
guarantees the invariants by construction. These properties pin the
two directions of that bargain over random workload specs:

* the trusted product is *equal* to what the validating path produces
  from the same RNG state — ops, arcs, schema, read set, site
  grouping, lock/unlock tables, and the RNG stream position itself;
* the validating constructor *accepts* every trusted product (i.e. the
  generator really does only emit well-formed transactions).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transaction import Transaction
from repro.sim.workload import (
    CompiledWorkload,
    WorkloadSpec,
    random_schema,
    random_transaction,
)
from repro.util.dag import Dag

shapes = st.sampled_from(
    ["random", "two_phase", "sequential", "ordered_2pl"]
)


@st.composite
def workload_specs(draw):
    return WorkloadSpec(
        n_entities=draw(st.integers(min_value=1, max_value=14)),
        n_sites=draw(st.integers(min_value=1, max_value=5)),
        entities_per_txn=(
            draw(st.integers(min_value=0, max_value=2)),
            draw(st.integers(min_value=2, max_value=6)),
        ),
        actions_per_entity=(
            draw(st.integers(min_value=0, max_value=1)),
            draw(st.integers(min_value=1, max_value=3)),
        ),
        cross_arc_p=draw(st.sampled_from([0.0, 0.25, 0.6, 1.0])),
        shape=draw(shapes),
        hotspot_skew=draw(st.sampled_from([0.0, 0.5, 1.5])),
        read_fraction=draw(st.sampled_from([0.0, 0.3, 1.0])),
    )


def _generate_both(spec, schema_seed, txn_seed):
    schema = random_schema(
        random.Random(schema_seed), spec.n_entities, spec.n_sites
    )
    compiled = CompiledWorkload(spec, schema)
    validating_rng = random.Random(txn_seed)
    trusted_rng = random.Random(txn_seed)
    validated = random_transaction("T", validating_rng, schema, spec)
    trusted = compiled.generate("T", trusted_rng)
    return validated, trusted, validating_rng, trusted_rng


class TestTrustedEqualsValidated:
    @given(
        workload_specs(),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=120)
    def test_compiled_generate_equals_random_transaction(
        self, spec, schema_seed, txn_seed
    ):
        validated, trusted, validating_rng, trusted_rng = _generate_both(
            spec, schema_seed, txn_seed
        )
        assert trusted == validated  # name, ops, dag arcs, schema, reads
        assert trusted.ops == validated.ops
        assert trusted.dag.arcs == validated.dag.arcs
        assert trusted.read_set == validated.read_set
        assert trusted.schema is validated.schema
        assert trusted._site_nodes == validated._site_nodes
        assert trusted._lock_node == validated._lock_node
        assert trusted._unlock_node == validated._unlock_node
        assert trusted.entities == validated.entities
        # The draw streams advanced identically: the next draw agrees.
        assert validating_rng.random() == trusted_rng.random()

    @given(
        workload_specs(),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=120)
    def test_validating_constructor_accepts_trusted_product(
        self, spec, schema_seed, txn_seed
    ):
        _, trusted, _, _ = _generate_both(spec, schema_seed, txn_seed)
        # Must not raise MalformedTransactionError / CycleError.
        revalidated = Transaction(
            trusted.name,
            trusted.ops,
            trusted.dag.arcs,
            trusted.schema,
            trusted.read_set,
        )
        assert revalidated == trusted
        assert revalidated._site_nodes == trusted._site_nodes

    @given(
        workload_specs(),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_lazy_closure_answers_like_the_validated_dag(
        self, spec, schema_seed, txn_seed
    ):
        validated, trusted, _, _ = _generate_both(
            spec, schema_seed, txn_seed
        )
        v_dag, t_dag = validated.dag, trusted.dag
        assert t_dag.predecessor_masks() == v_dag.predecessor_masks()
        assert t_dag.successor_masks() == v_dag.successor_masks()
        for u in range(t_dag.n):
            assert t_dag.ancestors(u) == v_dag.ancestors(u)
            assert t_dag.descendants(u) == v_dag.descendants(u)
        assert (
            t_dag.cached_topological_order()
            == v_dag.cached_topological_order()
        )


def test_trusted_dag_defers_the_closure():
    dag = Dag.trusted(3, [(0, 1), (1, 2)])
    assert dag._anc is None and dag._desc is None
    assert dag.predecessor_masks() == [0, 1, 2]  # no closure needed
    assert dag._anc is None
    assert dag.ancestors(2) == 0b011  # first use materializes it
    assert dag._anc is not None
    assert dag == Dag(3, [(0, 1), (1, 2)])


def test_trusted_transaction_requires_no_validation_pass():
    # A deliberately *malformed* input (no Unlock) is accepted silently
    # on the trusted path — the point of the constructor is that it
    # skips the checks, so feeding it unproven input is a caller bug.
    from repro.core.entity import DatabaseSchema
    from repro.core.operations import Operation

    schema = DatabaseSchema({"x": "s0"})
    t = Transaction.trusted("T", [Operation.lock("x")], [], schema)
    assert t.entities == frozenset({"x"})
