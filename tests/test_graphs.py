"""Unit tests for repro.util.graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.graphs import (
    Digraph,
    find_cycle,
    has_cycle,
    simple_cycles_undirected,
    strongly_connected_components,
    topological_sort,
)


class TestDigraph:
    def test_add_and_query(self):
        g = Digraph()
        g.add_arc("a", "b", label="x")
        assert g.has_arc("a", "b")
        assert not g.has_arc("b", "a")
        assert g.arc_labels("a", "b") == {"x"}

    def test_parallel_labels_kept(self):
        g = Digraph()
        g.add_arc("a", "b", label="x")
        g.add_arc("a", "b", label="y")
        assert g.arc_labels("a", "b") == {"x", "y"}
        assert g.arc_count() == 2

    def test_same_label_merged(self):
        g = Digraph()
        g.add_arc("a", "b", label="x")
        g.add_arc("a", "b", label="x")
        assert g.arc_count() == 1

    def test_nodes_and_len(self):
        g = Digraph()
        g.add_node("solo")
        g.add_arc("a", "b")
        assert set(g.nodes) == {"solo", "a", "b"}
        assert len(g) == 3

    def test_predecessors(self):
        g = Digraph()
        g.add_arc("a", "c")
        g.add_arc("b", "c")
        assert set(g.predecessors("c")) == {"a", "b"}

    def test_acyclic(self):
        g = Digraph()
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        assert g.is_acyclic()

    def test_cycle_found(self):
        g = Digraph()
        g.add_arc("a", "b")
        g.add_arc("b", "c")
        g.add_arc("c", "a")
        cycle = g.find_cycle()
        assert cycle is not None
        assert set(cycle) == {"a", "b", "c"}


class TestFindCycle:
    def test_no_cycle_in_dag(self):
        succ = {1: [2, 3], 2: [3], 3: []}
        assert find_cycle([1, 2, 3], lambda u: succ[u]) is None

    def test_self_loop(self):
        succ = {1: [1]}
        assert find_cycle([1], lambda u: succ[u]) == [1]

    def test_cycle_order(self):
        succ = {1: [2], 2: [3], 3: [2]}
        cycle = find_cycle([1, 2, 3], lambda u: succ[u])
        assert cycle == [2, 3]

    def test_cycle_is_closed(self):
        succ = {0: [1], 1: [2], 2: [0], 3: []}
        cycle = find_cycle([3, 0], lambda u: succ.get(u, []))
        assert cycle is not None
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert b in succ[a]

    def test_has_cycle(self):
        succ = {1: [2], 2: [1]}
        assert has_cycle([1, 2], lambda u: succ[u])


class TestTopologicalSort:
    def test_sorts(self):
        succ = {1: [2], 2: [3], 3: []}
        order = topological_sort([3, 2, 1], lambda u: succ[u])
        assert order.index(1) < order.index(2) < order.index(3)

    def test_raises_on_cycle(self):
        succ = {1: [2], 2: [1]}
        with pytest.raises(ValueError):
            topological_sort([1, 2], lambda u: succ[u])


class TestStronglyConnectedComponents:
    def test_dag_singletons(self):
        succ = {1: [2], 2: []}
        sccs = strongly_connected_components([1, 2], lambda u: succ[u])
        assert sorted(map(sorted, sccs)) == [[1], [2]]

    def test_one_component(self):
        succ = {1: [2], 2: [3], 3: [1]}
        sccs = strongly_connected_components([1, 2, 3], lambda u: succ[u])
        assert sorted(map(sorted, sccs)) == [[1, 2, 3]]

    def test_mixed(self):
        succ = {1: [2], 2: [1], 3: [1]}
        sccs = strongly_connected_components([1, 2, 3], lambda u: succ[u])
        assert sorted(sorted(c) for c in sccs) == [[1, 2], [3]]


def _neighbors_from_edges(edges):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj


class TestSimpleCyclesUndirected:
    def test_triangle(self):
        adj = _neighbors_from_edges([(0, 1), (1, 2), (0, 2)])
        cycles = list(
            simple_cycles_undirected(
                sorted(adj), lambda u: sorted(adj[u])
            )
        )
        assert len(cycles) == 1
        assert sorted(cycles[0]) == [0, 1, 2]

    def test_square_with_diagonal(self):
        # 4-cycle + diagonal: cycles {0,1,2}, {0,2,3}, {0,1,2,3}
        adj = _neighbors_from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )
        cycles = list(
            simple_cycles_undirected(
                sorted(adj), lambda u: sorted(adj[u])
            )
        )
        assert len(cycles) == 3

    def test_tree_has_no_cycles(self):
        adj = _neighbors_from_edges([(0, 1), (0, 2), (1, 3)])
        assert not list(
            simple_cycles_undirected(sorted(adj), lambda u: sorted(adj[u]))
        )

    def test_max_cycles_cap(self):
        adj = _neighbors_from_edges(
            [(a, b) for a in range(5) for b in range(a + 1, 5)]
        )
        cycles = list(
            simple_cycles_undirected(
                sorted(adj), lambda u: sorted(adj[u]), max_cycles=4
            )
        )
        assert len(cycles) == 4

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=40)
    def test_cycles_unique_and_valid(self, edges):
        edges = [(a, b) for a, b in edges if a != b]
        adj = _neighbors_from_edges(edges)
        if not adj:
            return
        seen = set()
        for cycle in simple_cycles_undirected(
            sorted(adj), lambda u: sorted(adj[u])
        ):
            assert len(cycle) >= 3
            assert len(set(cycle)) == len(cycle)
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                assert b in adj[a]
            key = frozenset(cycle)
            canonical = tuple(cycle)
            assert canonical not in seen
            seen.add(canonical)
