"""Unit tests for repro.analysis.fixed_k (Theorem 4)."""

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.fixed_k import (
    check_system,
    normal_form_witness,
    oriented_rooted_cycles,
)
from repro.analysis.witnesses import SerializationViolation
from repro.core.entity import DatabaseSchema
from repro.core.schedule import Schedule
from repro.core.serialization import d_graph
from repro.core.system import TransactionSystem

from tests.helpers import seq, small_random_system


def three_cycle_system() -> TransactionSystem:
    """Three 2PL transactions on a triangle of entities; each pair is
    safe+DF but the triple admits a cyclic partial schedule."""
    schema = DatabaseSchema.single_site(["x", "y", "z"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lz", "Uy", "Uz"], schema),
            seq("T3", ["Lz", "Lx", "Uz", "Ux"], schema),
        ]
    )


def safe_triple() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y", "z"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
            seq("T2", ["Ly", "Lz", "Uz", "Uy"], schema),
            seq("T3", ["Lx", "Lz", "Uz", "Ux"], schema),
        ]
    )


class TestOrientedRootedCycles:
    def test_triangle_count(self):
        system = three_cycle_system()
        cycles = list(oriented_rooted_cycles(system))
        # one undirected triangle, 2 directions x 3 rotations
        assert len(cycles) == 6
        assert len(set(cycles)) == 6
        for cycle in cycles:
            assert sorted(cycle) == [0, 1, 2]

    def test_no_cycles_in_path_interaction(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ux"], schema),
                seq("T2", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T3", ["Ly", "Uy"], schema),
            ]
        )
        assert not list(oriented_rooted_cycles(system))


class TestNormalFormWitness:
    def test_triangle_witness_exists(self):
        system = three_cycle_system()
        found = None
        for cycle in oriented_rooted_cycles(system):
            prefix = normal_form_witness(system, cycle)
            if prefix is not None:
                found = (cycle, prefix)
                break
        assert found is not None
        cycle, prefix = found
        # The normal-form serial schedule is legal and has cyclic D.
        schedule = Schedule.serial_prefixes(prefix, list(cycle))
        assert d_graph(schedule).find_cycle() is not None

    def test_safe_triple_no_witness(self):
        system = safe_triple()
        for cycle in oriented_rooted_cycles(system):
            assert normal_form_witness(system, cycle) is None


class TestCheckSystem:
    def test_failing_pair_detected_first(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
            ]
        )
        verdict = check_system(system)
        assert not verdict
        assert "Theorem 3" in verdict.reason

    def test_triangle_detected(self):
        verdict = check_system(three_cycle_system())
        assert not verdict
        assert isinstance(verdict.witness, SerializationViolation)
        # witness schedule must be replayable and have a cyclic D
        schedule = verdict.witness.schedule
        assert d_graph(schedule).find_cycle() is not None

    def test_safe_triple_passes(self):
        assert check_system(safe_triple())

    def test_agrees_with_oracle_on_fixtures(self):
        for system in (three_cycle_system(), safe_triple()):
            assert bool(check_system(system)) == bool(
                is_safe_and_deadlock_free(system)
            )

    def test_random_sweep_k3(self):
        """Theorem 4 vs exhaustive Lemma 1 oracle on 40 random triples."""
        for seed in range(40):
            system = small_random_system(seed + 1000, n_transactions=3)
            expected = bool(
                is_safe_and_deadlock_free(system, max_states=400_000)
            )
            assert bool(check_system(system)) == expected, (
                f"disagreement at seed {seed + 1000}"
            )

    def test_single_transaction(self):
        system = TransactionSystem([seq("T1", ["Lx", "Ux"])])
        assert check_system(system)
