"""Tests for repro.sim.replication: schema, protocols, manager,
runtime integration."""

import random

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.replication import (
    MajorityQuorum,
    ReadOneWriteAll,
    ReplicatedSchema,
    WriteAllAvailable,
    make_replica_control,
    replica_control_names,
)
from repro.sim.replication.protocols import majority
from repro.sim.runtime import SimulationConfig, Simulator, simulate
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import seq

BASE = DatabaseSchema.from_groups(
    {"s0": ["a", "b"], "s1": ["c"], "s2": ["d"]}
)


class TestReplicatedSchema:
    def test_round_robin_primary_first(self):
        schema = ReplicatedSchema.round_robin(BASE, 2)
        for entity in BASE.entities:
            replicas = schema.replicas_of(entity)
            assert replicas[0] == BASE.site_of(entity)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_factor_clamped_to_site_count(self):
        schema = ReplicatedSchema.round_robin(BASE, 10)
        for entity in BASE.entities:
            assert len(schema.replicas_of(entity)) == 3
        assert schema.replication_factor == 10  # declared, not clamped

    def test_factor_one_is_the_base_placement(self):
        schema = ReplicatedSchema.round_robin(BASE, 1)
        assert not schema.is_replicated()
        for entity in BASE.entities:
            assert schema.replicas_of(entity) == (BASE.site_of(entity),)

    def test_deterministic(self):
        a = ReplicatedSchema.round_robin(BASE, 3)
        b = ReplicatedSchema.round_robin(BASE, 3)
        for entity in BASE.entities:
            assert a.replicas_of(entity) == b.replicas_of(entity)

    def test_hosted_at_inverts_replicas(self):
        schema = ReplicatedSchema.round_robin(BASE, 2)
        for entity in BASE.entities:
            for site in schema.replicas_of(entity):
                assert entity in schema.hosted_at(site)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            ReplicatedSchema.round_robin(BASE, 0)

    def test_rejects_wrong_primary(self):
        with pytest.raises(ValueError, match="primary"):
            ReplicatedSchema(BASE, {
                "a": ("s1",), "b": ("s0",), "c": ("s1",), "d": ("s2",)
            })

    def test_rejects_duplicate_replica(self):
        with pytest.raises(ValueError, match="repeats"):
            ReplicatedSchema(BASE, {
                "a": ("s0", "s0"), "b": ("s0",), "c": ("s1",),
                "d": ("s2",),
            })

    def test_rejects_missing_entity(self):
        with pytest.raises(ValueError, match="no replica set"):
            ReplicatedSchema(BASE, {"a": ("s0",)})

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="not in"):
            ReplicatedSchema(BASE, {
                "a": ("s0", "s9"), "b": ("s0",), "c": ("s1",),
                "d": ("s2",),
            })


class TestProtocolRegistry:
    def test_names(self):
        assert replica_control_names() == [
            "quorum", "rowa", "rowa-available"
        ]

    def test_make(self):
        assert isinstance(make_replica_control("rowa"), ReadOneWriteAll)
        assert isinstance(
            make_replica_control("rowa-available"), WriteAllAvailable
        )
        assert isinstance(make_replica_control("quorum"), MajorityQuorum)

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown replica protocol"):
            make_replica_control("primary-copy")


class TestSiteSelection:
    REPLICAS = ("s0", "s1", "s2")

    def test_rowa_reads_first_up(self):
        rowa = ReadOneWriteAll()
        assert rowa.read_sites(self.REPLICAS, {"s0", "s1", "s2"}, ()) == (
            "s0",
        )
        assert rowa.read_sites(self.REPLICAS, {"s1"}, ()) == ("s1",)
        assert rowa.read_sites(self.REPLICAS, set(), ()) is None

    def test_rowa_writes_all_or_nothing(self):
        rowa = ReadOneWriteAll()
        assert rowa.write_sites(self.REPLICAS, {"s0", "s1", "s2"}) == (
            "s0", "s1", "s2",
        )
        assert rowa.write_sites(self.REPLICAS, {"s0", "s2"}) is None

    def test_rowa_available_routes_around_crashes(self):
        wa = WriteAllAvailable()
        assert wa.write_sites(self.REPLICAS, {"s0", "s2"}) == ("s0", "s2")
        assert wa.write_sites(self.REPLICAS, {"s2"}) == ("s2",)
        assert wa.write_sites(self.REPLICAS, set()) is None

    def test_rowa_available_reads_skip_stale(self):
        wa = WriteAllAvailable()
        up = {"s0", "s1", "s2"}
        assert wa.read_sites(self.REPLICAS, up, {"s0"}) == ("s1",)
        assert wa.read_sites(self.REPLICAS, up, {"s0", "s1", "s2"}) is None
        assert wa.read_sites(self.REPLICAS, {"s1"}, {"s1"}) is None

    def test_quorum_majorities(self):
        q = MajorityQuorum()
        assert q.read_sites(self.REPLICAS, {"s0", "s1", "s2"}, ()) == (
            "s0", "s1",
        )
        assert q.write_sites(self.REPLICAS, {"s1", "s2"}) == ("s1", "s2")
        assert q.write_sites(self.REPLICAS, {"s2"}) is None

    def test_majority_sizes(self):
        assert [majority(n) for n in range(1, 6)] == [1, 2, 2, 3, 3]

    def test_quorums_always_intersect(self):
        for n in range(1, 8):
            replicas = tuple(f"s{i}" for i in range(n))
            q = MajorityQuorum()
            write = q.write_sites(replicas, set(replicas))
            read = q.read_sites(replicas, set(replicas), ())
            assert set(write) & set(read)


def _replicated_sim(protocol="rowa", factor=2, failure_rate=0.0,
                    read_entities=(), **cfg):
    schema = DatabaseSchema.from_groups(
        {"s0": ["x"], "s1": ["y"], "s2": ["z"]}
    )
    t1 = Transaction(
        "T1",
        [op for e in ("x", "y") for op in seq_ops(e)],
        [(0, 1), (2, 3), (1, 2)],
        schema,
        read_set=[e for e in read_entities if e in ("x", "y")],
    )
    system = TransactionSystem([t1])
    spec = WorkloadSpec(replication_factor=factor)
    config = SimulationConfig(
        workload=spec, replica_protocol=protocol,
        failure_rate=failure_rate, **cfg,
    )
    return Simulator(system, "wound-wait", config)


def seq_ops(entity):
    from repro.core.operations import Operation

    return [Operation.lock(entity), Operation.unlock(entity)]


class TestRuntimeIntegration:
    def test_write_locks_every_replica(self):
        sim = _replicated_sim(factor=3)
        result = sim.run()
        assert result.committed == 1
        inst = sim.instance(0)
        x = sim.entity_id("x")
        locked = tuple(sim.site_name(s) for s in inst.lock_sites[x])
        assert locked == sim.replicas.schema.replicas_of("x")
        assert len(inst.lock_sites[x]) == 3

    def test_read_locks_one_replica_under_rowa(self):
        sim = _replicated_sim(factor=3, read_entities=("x",))
        result = sim.run()
        assert result.committed == 1
        assert len(sim.instance(0).lock_sites[sim.entity_id("x")]) == 1

    def test_quorum_read_locks_majority(self):
        sim = _replicated_sim("quorum", factor=3, read_entities=("x",))
        result = sim.run()
        assert result.committed == 1
        assert len(sim.instance(0).lock_sites[sim.entity_id("x")]) == 2

    def test_commit_participants_include_write_replicas(self):
        sim = _replicated_sim(factor=3)
        sim.run()
        coordinator, participants = sim.transaction_sites(0)
        assert coordinator == "s0"
        assert participants == ["s0", "s1", "s2"]

    def test_result_records_protocol_and_factor(self):
        sim = _replicated_sim("quorum", factor=3)
        result = sim.run()
        assert result.replica_protocol == "quorum"
        assert result.replication_factor == 3
        assert result.availability == 1.0
        assert result.read_availability == 1.0
        assert result.write_availability == 1.0

    def test_lock_tables_drain_with_replicas(self):
        spec = WorkloadSpec(
            n_transactions=6, n_entities=6, n_sites=3,
            entities_per_txn=(2, 3), read_fraction=0.5,
            replication_factor=2, shape="two_phase",
        )
        system = random_system(random.Random(3), spec)
        for protocol in replica_control_names():
            sim = Simulator(
                system, "wound-wait",
                SimulationConfig(workload=spec, replica_protocol=protocol),
            )
            result = sim.run()
            assert result.committed == len(system)
            for site in sim.lock_tables().values():
                assert site.involved() == [], (protocol, site)

    def test_shared_readers_overlap_but_conflict_with_writers(self):
        schema = DatabaseSchema.from_groups({"s0": ["x"]})
        readers = [
            Transaction(
                f"R{i}",
                seq(f"R{i}", ["Lx", "A.x", "Ux"], schema).ops,
                [(0, 1), (1, 2)],
                schema,
                ["x"],
            )
            for i in range(2)
        ]
        writer = seq("W", ["Lx", "A.x", "Ux"], schema)
        system = TransactionSystem(readers + [writer])
        result = simulate(system, "wound-wait", SimulationConfig(seed=2))
        assert result.committed == 3
        assert result.serializable is True

    def test_replication_reduces_to_seed_at_factor_one(self):
        """Factor 1 + exclusive-only: identical results whatever the
        protocol — the reduction the golden matrix pins, spot-checked
        here on a fresh workload."""
        spec = WorkloadSpec(
            n_transactions=5, n_entities=6, n_sites=3,
            entities_per_txn=(2, 3), hotspot_skew=0.8,
        )
        system = random_system(random.Random(11), spec)
        baseline = simulate(
            system, "wound-wait",
            SimulationConfig(seed=4, failure_rate=0.05, repair_time=6.0),
        )
        for protocol in replica_control_names():
            config = SimulationConfig(
                seed=4, failure_rate=0.05, repair_time=6.0,
                workload=spec, replica_protocol=protocol,
            )
            result = simulate(system, "wound-wait", config)
            assert result.committed == baseline.committed
            assert result.aborts == baseline.aborts
            assert result.end_time == baseline.end_time
            assert result.latencies == baseline.latencies
            assert result.wait_time == baseline.wait_time


class TestFailureInteraction:
    def _crash(self, sim, site):
        # Drive the injector's state directly for a deterministic
        # crash schedule.
        sim.replicas.on_crash(site)
        sim.failures.mark_down(site)
        sim.result.crashes += 1
        sim.crash_site(site)

    def _recover(self, sim, site):
        sim.replicas.on_recover(site)
        sim.failures.mark_up(site)

    def _sim(self, protocol):
        spec = WorkloadSpec(replication_factor=3, n_sites=3, n_entities=3)
        schema = DatabaseSchema.from_groups(
            {"s0": ["x"], "s1": ["y"], "s2": ["z"]}
        )
        system = TransactionSystem([seq("T1", ["Lx", "Ux"], schema)])
        return Simulator(
            system, "wound-wait",
            SimulationConfig(
                workload=spec, replica_protocol=protocol,
                failure_rate=0.0001, max_time=10.0,
            ),
        )

    def test_rowa_write_blocks_on_crashed_replica(self):
        sim = self._sim("rowa")
        self._crash(sim, "s1")
        assert sim.replicas.write_sites("x") is None
        assert sim.replicas.read_sites("x") == ("s0",)

    def test_rowa_available_routes_writes_around_crash(self):
        sim = self._sim("rowa-available")
        self._crash(sim, "s1")
        sites = sim.replicas.write_sites("x")
        assert sites is not None and "s1" not in sites

    def _reader_writer_reader(self, policy):
        schema = DatabaseSchema.from_groups({"s0": ["x"]})
        txns = [
            Transaction(
                name, seq(name, ["Lx", "Ux"], schema).ops, [(0, 1)],
                schema, reads,
            )
            for name, reads in (
                ("Rold", ["x"]), ("Ryoung", ["x"]), ("W", []),
            )
        ]
        sim = Simulator(
            TransactionSystem(txns), policy, SimulationConfig()
        )
        old, young, writer = (
            sim.instance(0), sim.instance(1), sim.instance(2)
        )
        old.timestamp, young.timestamp, writer.timestamp = 1.0, 9.0, 5.0
        x, s0 = sim.entity_id("x"), sim.site_id("s0")
        site = sim.lock_tables()["s0"]
        site.request(1, x, "S")  # the young reader holds S
        site.request(2, x, "X")  # the writer queues
        writer.waiting[(x, s0)] = 0.0
        return sim, old, young, writer, site

    def test_shared_request_wounds_the_blocking_writer_not_readers(self):
        """An older reader queued behind a writer is in conflict with
        the *writer*, not with the compatible shared holders: under
        wound-wait it wounds the writer and is granted with the read
        batch; the holders are untouched (regression: the policy round
        used to run mode-blind against every holder)."""
        sim, old, young, writer, site = self._reader_writer_reader(
            "wound-wait"
        )
        sim._request_lock(old, sim.system[0].lock_node("x"))
        assert young.status == "running"  # compatible holder untouched
        assert writer.status == "aborted"  # the real blocker, wounded
        assert sim.result.wounds == 1
        # read batch granted
        assert sorted(site.holders(sim.entity_id("x"))) == [0, 1]

    def test_young_shared_request_waits_behind_older_writer(self):
        """The dual: a *young* reader behind an older writer just
        waits (wound-wait), preserving FIFO writer fairness."""
        sim, old, young, writer, site = self._reader_writer_reader(
            "wound-wait"
        )
        old.timestamp = 7.0  # now younger than the writer (5.0)
        sim._request_lock(old, sim.system[0].lock_node("x"))
        assert writer.status == "running"
        assert sim.result.wounds == 0
        assert site.waiters(sim.entity_id("x")) == [2, 0]

    def test_commits_through_a_crashed_primary(self):
        """Routing around a down primary must carry through the whole
        transaction: Actions and Unlocks execute at the replica sites
        actually locked, not at the primary (regression: the non-LOCK
        site check used to abort on the down primary)."""
        for protocol in ("rowa-available", "quorum"):
            sim = self._sim(protocol)
            self._crash(sim, "s0")  # the primary of x
            result = sim.run()
            assert result.committed == 1, protocol
            assert result.crash_aborts == 0, protocol
            locked = sim.instance(0).lock_sites[sim.entity_id("x")]
            assert sim.site_id("s0") not in locked
            # The commit round is coordinated by a site the attempt
            # actually locked — never the crashed primary.
            coordinator, participants = sim.transaction_sites(0)
            assert coordinator != "s0"
            assert coordinator in participants

    def test_quorum_masks_minority_crash(self):
        sim = self._sim("quorum")
        self._crash(sim, "s1")
        assert sim.replicas.write_sites("x") is not None
        assert sim.replicas.read_sites("x") is not None
        self._crash(sim, "s2")
        assert sim.replicas.write_sites("x") is None

    def test_recovering_site_catches_up_before_serving_reads(self):
        sim = self._sim("rowa-available")
        self._crash(sim, "s0")
        self._recover(sim, "s0")
        # Recovery alone does not revalidate: the site waits for its
        # anti-entropy scan.
        assert "s0" in sim.replicas.stale_replicas("x")
        assert sim.replicas.read_sites("x") is not None  # peers serve
        sim.replicas._on_catchup("s0")
        assert "s0" not in sim.replicas.stale_replicas("x")

    def test_missed_write_keeps_replica_stale_through_catchup(self):
        sim = self._sim("rowa-available")
        self._crash(sim, "s0")
        # A write to x commits while s0 is down: s0 misses it.
        inst = sim.instance(0)
        inst.lock_sites[sim.entity_id("x")] = (
            sim.site_id("s1"), sim.site_id("s2"),
        )
        sim.replicas.on_commit(inst)
        assert "s0" in sim.replicas.missed_replicas("x")
        self._recover(sim, "s0")
        sim.replicas._on_catchup("s0")
        # Catch-up *can* repair it here because a current copy (s1) is
        # up — the copy syncs rather than staying stale.
        assert "s0" not in sim.replicas.missed_replicas("x")

    def test_missed_write_without_source_stays_stale(self):
        sim = self._sim("rowa-available")
        self._crash(sim, "s0")
        inst = sim.instance(0)
        inst.lock_sites[sim.entity_id("x")] = (
            sim.site_id("s1"), sim.site_id("s2"),
        )
        sim.replicas.on_commit(inst)
        self._crash(sim, "s1")
        self._crash(sim, "s2")
        self._recover(sim, "s0")
        sim.replicas._on_catchup("s0")
        # Both current copies are down: the stale copy must not serve.
        assert "s0" in sim.replicas.missed_replicas("x")
        assert sim.replicas.read_sites("x") is None
