"""Closed-batch equivalence: the open-system engine at rate 0.

The golden digests below were captured from the pre-open-system
simulator (PR 1's engine) over a 120-cell matrix of workloads x
policies x commit protocols x failure rates x seeds. With
``arrival_rate == 0`` the engine must keep reproducing them bit for
bit — this is the contract that lets every closed-batch result in the
repo's history stay comparable across refactors, and it pins the
hash-seed independence of the site-ordering fix (the digests were
verified identical under several ``PYTHONHASHSEED`` values).

If a change legitimately alters simulation behaviour, regenerate the
digests with the helper at the bottom and say so in the PR. Two
``failure_rate=0.03`` cells — (11, 'timeout', *, 0.03, 5) — were
regenerated when the failure injector learned to keep a site's crash
chain alive while retained locks still await their release
retransmission; every rate-0 cell is untouched from the seed capture.

``test_paxos_f0_degenerates_to_two_phase`` extends the matrix with the
Paxos Commit degeneracy contract: at ``commit_fault_tolerance=0`` the
single acceptor is co-located with the coordinator, so every cell must
be digest-identical to classic 2PC (only the protocol name differs).
"""

import hashlib
import random

from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

WORKLOAD_SEEDS = (3, 11)
POLICIES = ("blocking", "wound-wait", "wait-die", "timeout", "detect")
PROTOCOLS = ("instant", "two-phase", "presumed-abort")
SIM_SEEDS = (0, 5)
FAILURE_RATES = (0.0, 0.03)

SPEC = WorkloadSpec(
    n_transactions=5,
    n_entities=5,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=1.0,
)

# The seed-era result surface: every field the pre-open-system
# simulator produced (the new steady-state fields are deliberately
# excluded — they did not exist in the baseline).
FIELDS = (
    "policy", "commit_protocol", "committed", "total", "end_time",
    "aborts", "wounds", "deaths", "timeouts", "detected", "crash_aborts",
    "commit_aborts", "crashes", "deadlocked", "deadlock_cycle", "waits",
    "wait_time", "commit_messages", "prepared_blocks",
    "prepared_block_time", "latencies", "exec_latencies",
    "commit_latencies", "serializable", "truncated",
)


def digest(result) -> str:
    blob = ";".join(f"{f}={getattr(result, f)!r}" for f in FIELDS)
    return hashlib.md5(blob.encode()).hexdigest()[:12]


GOLDEN = {
    (3, 'blocking', 'instant', 0.0, 0): '5d4b0fe440de',
    (3, 'blocking', 'instant', 0.0, 5): 'd1ce2dc46926',
    (3, 'blocking', 'instant', 0.03, 0): 'ed30f60d38c5',
    (3, 'blocking', 'instant', 0.03, 5): '45a73b303437',
    (3, 'blocking', 'two-phase', 0.0, 0): '23e4e1188096',
    (3, 'blocking', 'two-phase', 0.0, 5): 'af355b36fd1e',
    (3, 'blocking', 'two-phase', 0.03, 0): '92f9efbacd13',
    (3, 'blocking', 'two-phase', 0.03, 5): '34c508a1f23a',
    (3, 'blocking', 'presumed-abort', 0.0, 0): '321d98294b93',
    (3, 'blocking', 'presumed-abort', 0.0, 5): '9d13a94bb67e',
    (3, 'blocking', 'presumed-abort', 0.03, 0): '99d002b73d22',
    (3, 'blocking', 'presumed-abort', 0.03, 5): '79a8c251682c',
    (3, 'wound-wait', 'instant', 0.0, 0): 'b0e2f7027f54',
    (3, 'wound-wait', 'instant', 0.0, 5): '51c827d974bb',
    (3, 'wound-wait', 'instant', 0.03, 0): '157b4bd6c4a9',
    (3, 'wound-wait', 'instant', 0.03, 5): '3440ab555de1',
    (3, 'wound-wait', 'two-phase', 0.0, 0): 'acefb19fc665',
    (3, 'wound-wait', 'two-phase', 0.0, 5): 'b66e16643836',
    (3, 'wound-wait', 'two-phase', 0.03, 0): 'b335e6974020',
    (3, 'wound-wait', 'two-phase', 0.03, 5): '7fb6fcf3a893',
    (3, 'wound-wait', 'presumed-abort', 0.0, 0): 'bd62ddd137ba',
    (3, 'wound-wait', 'presumed-abort', 0.0, 5): '77563c23bf17',
    (3, 'wound-wait', 'presumed-abort', 0.03, 0): '4dc14ed4068c',
    (3, 'wound-wait', 'presumed-abort', 0.03, 5): '05bba5191967',
    (3, 'wait-die', 'instant', 0.0, 0): '143f4a027fe8',
    (3, 'wait-die', 'instant', 0.0, 5): 'f4b134d445e4',
    (3, 'wait-die', 'instant', 0.03, 0): 'a6ffb9990f5e',
    (3, 'wait-die', 'instant', 0.03, 5): 'c0bbf21e3f1a',
    (3, 'wait-die', 'two-phase', 0.0, 0): 'dc726d1cd221',
    (3, 'wait-die', 'two-phase', 0.0, 5): '31481c5e0097',
    (3, 'wait-die', 'two-phase', 0.03, 0): '8e049378b602',
    (3, 'wait-die', 'two-phase', 0.03, 5): '60a8db1919ab',
    (3, 'wait-die', 'presumed-abort', 0.0, 0): '0993561bcdef',
    (3, 'wait-die', 'presumed-abort', 0.0, 5): 'f6b94aa593ee',
    (3, 'wait-die', 'presumed-abort', 0.03, 0): 'bc53d7c79c9e',
    (3, 'wait-die', 'presumed-abort', 0.03, 5): '858f57fea02e',
    (3, 'timeout', 'instant', 0.0, 0): '4605b929d64c',
    (3, 'timeout', 'instant', 0.0, 5): 'c763cfabe5c4',
    (3, 'timeout', 'instant', 0.03, 0): 'd02e651e7e2d',
    (3, 'timeout', 'instant', 0.03, 5): '80b55f240901',
    (3, 'timeout', 'two-phase', 0.0, 0): 'c2fbbdf3ff7e',
    (3, 'timeout', 'two-phase', 0.0, 5): '6d07d4d73c36',
    (3, 'timeout', 'two-phase', 0.03, 0): 'a34cacc9f647',
    (3, 'timeout', 'two-phase', 0.03, 5): '09cebb741b90',
    (3, 'timeout', 'presumed-abort', 0.0, 0): '75c71b5a7b7b',
    (3, 'timeout', 'presumed-abort', 0.0, 5): 'ed9475edc62c',
    (3, 'timeout', 'presumed-abort', 0.03, 0): 'add7efb47e14',
    (3, 'timeout', 'presumed-abort', 0.03, 5): '19d9aea31aaa',
    (3, 'detect', 'instant', 0.0, 0): '427fd8e5c27e',
    (3, 'detect', 'instant', 0.0, 5): 'b44c86311f9a',
    (3, 'detect', 'instant', 0.03, 0): '4e77f1490cd1',
    (3, 'detect', 'instant', 0.03, 5): 'a069f41c68d9',
    (3, 'detect', 'two-phase', 0.0, 0): 'c4470515bf01',
    (3, 'detect', 'two-phase', 0.0, 5): '42af3d8ed427',
    (3, 'detect', 'two-phase', 0.03, 0): 'c210c8324485',
    (3, 'detect', 'two-phase', 0.03, 5): '52ef693ac5c5',
    (3, 'detect', 'presumed-abort', 0.0, 0): 'eeb4fa01434a',
    (3, 'detect', 'presumed-abort', 0.0, 5): '907af48607fe',
    (3, 'detect', 'presumed-abort', 0.03, 0): '69c943ff5b06',
    (3, 'detect', 'presumed-abort', 0.03, 5): 'f5eba46f60c1',
    (11, 'blocking', 'instant', 0.0, 0): 'ef6b66ed6aa8',
    (11, 'blocking', 'instant', 0.0, 5): 'f2e4a3b9abcb',
    (11, 'blocking', 'instant', 0.03, 0): '0122cb35e338',
    (11, 'blocking', 'instant', 0.03, 5): 'd6d9de24b9ad',
    (11, 'blocking', 'two-phase', 0.0, 0): 'f63f2ec99a63',
    (11, 'blocking', 'two-phase', 0.0, 5): 'b158645c0ae4',
    (11, 'blocking', 'two-phase', 0.03, 0): '22fd2133ab8b',
    (11, 'blocking', 'two-phase', 0.03, 5): 'bdd11fd73de3',
    (11, 'blocking', 'presumed-abort', 0.0, 0): '4bfa166dd3a8',
    (11, 'blocking', 'presumed-abort', 0.0, 5): 'ae3dd84b9630',
    (11, 'blocking', 'presumed-abort', 0.03, 0): '77a921772061',
    (11, 'blocking', 'presumed-abort', 0.03, 5): '3870ac74b571',
    (11, 'wound-wait', 'instant', 0.0, 0): 'e08b9211a45a',
    (11, 'wound-wait', 'instant', 0.0, 5): '2dd9b20ed21c',
    (11, 'wound-wait', 'instant', 0.03, 0): '7717022d7829',
    (11, 'wound-wait', 'instant', 0.03, 5): '66a01ac52a62',
    (11, 'wound-wait', 'two-phase', 0.0, 0): '8a4acdbf8020',
    (11, 'wound-wait', 'two-phase', 0.0, 5): '5c296df74538',
    (11, 'wound-wait', 'two-phase', 0.03, 0): 'b6d424b35d17',
    (11, 'wound-wait', 'two-phase', 0.03, 5): 'd36ba1de4e23',
    (11, 'wound-wait', 'presumed-abort', 0.0, 0): '0c6c12d08066',
    (11, 'wound-wait', 'presumed-abort', 0.0, 5): 'c4ad0f08a870',
    (11, 'wound-wait', 'presumed-abort', 0.03, 0): '51a1a7ecd7e0',
    (11, 'wound-wait', 'presumed-abort', 0.03, 5): '967db9f3fe7f',
    (11, 'wait-die', 'instant', 0.0, 0): 'c1bcfa15f2d2',
    (11, 'wait-die', 'instant', 0.0, 5): '45506ee4055b',
    (11, 'wait-die', 'instant', 0.03, 0): 'fddf02f25e40',
    (11, 'wait-die', 'instant', 0.03, 5): 'cdbed938817e',
    (11, 'wait-die', 'two-phase', 0.0, 0): 'f2734b4eec75',
    (11, 'wait-die', 'two-phase', 0.0, 5): 'e1ecd511d3c8',
    (11, 'wait-die', 'two-phase', 0.03, 0): '005edda18885',
    (11, 'wait-die', 'two-phase', 0.03, 5): '796587132ed4',
    (11, 'wait-die', 'presumed-abort', 0.0, 0): '9696e358551c',
    (11, 'wait-die', 'presumed-abort', 0.0, 5): '4b7524422bb6',
    (11, 'wait-die', 'presumed-abort', 0.03, 0): '462afc4d99dc',
    (11, 'wait-die', 'presumed-abort', 0.03, 5): 'cdee3f8dd4b6',
    (11, 'timeout', 'instant', 0.0, 0): '5e794e169917',
    (11, 'timeout', 'instant', 0.0, 5): '458865e5d60e',
    (11, 'timeout', 'instant', 0.03, 0): '62c8469611bf',
    (11, 'timeout', 'instant', 0.03, 5): 'b75c48225bd9',
    (11, 'timeout', 'two-phase', 0.0, 0): '2a1f68db3758',
    (11, 'timeout', 'two-phase', 0.0, 5): '938b005a0016',
    (11, 'timeout', 'two-phase', 0.03, 0): '4f96f161927a',
    (11, 'timeout', 'two-phase', 0.03, 5): '7471cc659508',
    (11, 'timeout', 'presumed-abort', 0.0, 0): '7945d57098ec',
    (11, 'timeout', 'presumed-abort', 0.0, 5): '07f814874c0d',
    (11, 'timeout', 'presumed-abort', 0.03, 0): '66ae36ddf222',
    (11, 'timeout', 'presumed-abort', 0.03, 5): '45034a02d8e5',
    (11, 'detect', 'instant', 0.0, 0): '8f8b2aa660ea',
    (11, 'detect', 'instant', 0.0, 5): '4b3f34c59df6',
    (11, 'detect', 'instant', 0.03, 0): '0796ec149f66',
    (11, 'detect', 'instant', 0.03, 5): 'e4ae72d7c60c',
    (11, 'detect', 'two-phase', 0.0, 0): 'e1193761a235',
    (11, 'detect', 'two-phase', 0.0, 5): 'e26321d701b8',
    (11, 'detect', 'two-phase', 0.03, 0): '63b6d6e7ef1f',
    (11, 'detect', 'two-phase', 0.03, 5): '0af6db8a75c1',
    (11, 'detect', 'presumed-abort', 0.0, 0): '5da66f06c659',
    (11, 'detect', 'presumed-abort', 0.0, 5): '75cba5185348',
    (11, 'detect', 'presumed-abort', 0.03, 0): 'aea04b5eb5a9',
    (11, 'detect', 'presumed-abort', 0.03, 5): 'd462c92b5335',
}


def _cell_result(wseed, policy, protocol, rate, seed, replication=None):
    system = random_system(random.Random(wseed), SPEC)
    config = SimulationConfig(
        seed=seed,
        network_delay=0.5,
        commit_protocol=protocol,
        failure_rate=rate,
        repair_time=8.0,
        **(replication or {}),
    )
    return simulate(system, policy, config)


def test_closed_batch_matches_the_seed_simulator():
    mismatches = []
    for (wseed, policy, protocol, rate, seed), expected in GOLDEN.items():
        result = _cell_result(wseed, policy, protocol, rate, seed)
        if digest(result) != expected:
            mismatches.append((wseed, policy, protocol, rate, seed))
    assert mismatches == []


def test_attribution_enabled_matches_the_seed_simulator():
    """The full golden matrix with the attribution engine attached.

    Latency attribution is a probe consumer: enabling it (with the
    tracer alongside) must leave every digest in the matrix untouched,
    while conserving every cell's latency split exactly.
    """
    from repro.sim.observe import ObserveConfig
    from repro.sim.runtime import Simulator

    mismatches = []
    for (wseed, policy, protocol, rate, seed), expected in GOLDEN.items():
        system = random_system(random.Random(wseed), SPEC)
        config = SimulationConfig(
            seed=seed,
            network_delay=0.5,
            commit_protocol=protocol,
            failure_rate=rate,
            repair_time=8.0,
            observe=ObserveConfig(trace=True, attribution=True),
        )
        sim = Simulator(system, policy, config)
        result = sim.run()
        if digest(result) != expected:
            mismatches.append((wseed, policy, protocol, rate, seed))
        assert sim.observe.attribution.engine.check() == []
        assert result.attribution["conservation"]["exact"] is True
    assert mismatches == []


def test_replication_factor_one_matches_the_seed_simulator():
    """The replication_factor=1 column of the matrix.

    With the replication layer *engaged* (a workload spec carrying
    ``replication_factor=1`` plus any replica-control protocol) every
    cell must still reproduce the seed-era digests bit for bit — the
    reduction guarantee is pinned here, not assumed. The exclusive-only
    workload is what makes all three protocols coincide: single-copy
    writes behave identically under rowa, rowa-available, and quorum.
    """
    mismatches = []
    for replica_protocol in ("rowa", "rowa-available", "quorum"):
        replication = {
            "workload": SPEC,  # replication_factor defaults to 1
            "replica_protocol": replica_protocol,
        }
        for (wseed, policy, protocol, rate, seed), expected in (
            GOLDEN.items()
        ):
            result = _cell_result(
                wseed, policy, protocol, rate, seed, replication
            )
            if digest(result) != expected:
                mismatches.append(
                    (replica_protocol, wseed, policy, protocol, rate, seed)
                )
    assert mismatches == []


def test_paxos_f0_degenerates_to_two_phase():
    """Paxos Commit at F=0 is digest-for-digest classic 2PC.

    Gray & Lamport's degeneracy claim, pinned mechanically: with one
    acceptor co-located at the coordinator site every vote relay is
    free and takeover has no candidate, so the message bill, the event
    timing, and hence the entire result surface coincide with 2PC —
    at failure rate 0 *and* under crashes. Only the protocol name
    differs; it is normalised out before hashing.
    """

    def normalised(result) -> str:
        result.commit_protocol = "two-phase"
        return digest(result)

    mismatches = []
    for wseed in WORKLOAD_SEEDS:
        for policy in POLICIES:
            for rate in FAILURE_RATES:
                for seed in SIM_SEEDS:
                    expected = GOLDEN[(wseed, policy, "two-phase", rate,
                                       seed)]
                    system = random_system(random.Random(wseed), SPEC)
                    config = SimulationConfig(
                        seed=seed,
                        network_delay=0.5,
                        commit_protocol="paxos-commit",
                        commit_fault_tolerance=0,
                        failure_rate=rate,
                        repair_time=8.0,
                    )
                    result = simulate(system, policy, config)
                    if normalised(result) != expected:
                        mismatches.append((wseed, policy, rate, seed))
    assert mismatches == []


def test_goldens_cover_the_whole_matrix():
    assert len(GOLDEN) == (
        len(WORKLOAD_SEEDS) * len(POLICIES) * len(PROTOCOLS)
        * len(FAILURE_RATES) * len(SIM_SEEDS)
    )


def regenerate() -> None:  # pragma: no cover - maintenance helper
    """Print a fresh GOLDEN dict (run after an intentional change)."""
    print("GOLDEN = {")
    for wseed in WORKLOAD_SEEDS:
        for policy in POLICIES:
            for protocol in PROTOCOLS:
                for rate in FAILURE_RATES:
                    for seed in SIM_SEEDS:
                        r = _cell_result(wseed, policy, protocol, rate, seed)
                        key = (wseed, policy, protocol, rate, seed)
                        print(f"    {key!r}: {digest(r)!r},")
    print("}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
