"""Property tests for latency attribution: conservation is exact.

The attribution engine's contract is an *identity*, not an estimate:
for every committed transaction, the six segments must reproduce the
run's own measured latency split with ``==`` — zero tolerance — and
no segment may be meaningfully negative.  Hypothesis sweeps that
identity across the behaviour space: random contended workloads x
policies x commit protocols x failure injection x replication, closed
and open, sampled and unsampled.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import TransactionSystem
from repro.sim.observe import ObserveConfig
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

seeds = st.integers(min_value=0, max_value=2_000)
policies = st.sampled_from(["wound-wait", "wait-die", "detect"])
protocols = st.sampled_from(
    ["instant", "two-phase", "presumed-abort", "paxos-commit"]
)
failure_rates = st.sampled_from([0.0, 0.02])
sample_rates = st.sampled_from([1, 3])


def assert_attribution_conserves(sim) -> None:
    engine = sim.observe.attribution.engine
    result = sim.result
    assert engine.check() == []
    for txn, entry in engine.transactions.items():
        seg = entry["segments"]
        exec_latency = result.exec_latencies[txn]
        assert entry["exec_done"] - entry["start"] == exec_latency
        assert seg["commit"] == result.commit_latencies[txn]
        assert seg["service"] == (
            exec_latency
            - seg["admission"]
            - seg["lock_wait"]
            - seg["coordinator"]
            - seg["fanout"]
        )
        assert min(seg.values()) >= -1e-9
    summary = result.attribution
    assert summary["conservation"]["exact"] is True
    assert summary["committed"] == len(engine.transactions)


def run(system, policy, **config_kwargs):
    config_kwargs.setdefault(
        "observe", ObserveConfig(attribution=True)
    )
    sim = Simulator(system, policy, SimulationConfig(**config_kwargs))
    sim.run()
    return sim


class TestClosedBatchConservation:
    @given(seeds, policies, protocols)
    @settings(max_examples=30, deadline=None)
    def test_closed_batch(self, seed, policy, protocol):
        spec = WorkloadSpec(
            n_transactions=6, n_entities=4, n_sites=2,
            entities_per_txn=(2, 3), hotspot_skew=1.5,
        )
        system = random_system(random.Random(seed), spec)
        sim = run(
            system, policy, seed=seed, network_delay=0.5,
            commit_protocol=protocol,
        )
        assert_attribution_conserves(sim)


class TestOpenSystemConservation:
    @given(seeds, policies, protocols, failure_rates)
    @settings(max_examples=25, deadline=None)
    def test_open_system(self, seed, policy, protocol, failure_rate):
        spec = WorkloadSpec(
            n_entities=6, n_sites=3, entities_per_txn=(2, 3),
            hotspot_skew=1.0,
        )
        sim = run(
            TransactionSystem([]), policy, seed=seed,
            network_delay=0.3, commit_protocol=protocol,
            arrival_rate=0.5, max_transactions=40, warmup_time=5.0,
            workload=spec, failure_rate=failure_rate, repair_time=6.0,
        )
        assert_attribution_conserves(sim)


class TestReplicatedConservation:
    @given(seeds, st.sampled_from(["rowa", "rowa-available", "quorum"]))
    @settings(max_examples=15, deadline=None)
    def test_replicated(self, seed, replica_protocol):
        spec = WorkloadSpec(
            n_entities=8, n_sites=3, entities_per_txn=(2, 3),
            hotspot_skew=0.8, read_fraction=0.4, replication_factor=2,
        )
        sim = run(
            TransactionSystem([]), "wound-wait", seed=seed,
            network_delay=0.3, arrival_rate=0.5,
            max_transactions=40, warmup_time=5.0, workload=spec,
            replica_protocol=replica_protocol,
            failure_rate=0.01, repair_time=6.0,
        )
        assert_attribution_conserves(sim)


class TestSampledConservation:
    @given(seeds, sample_rates)
    @settings(max_examples=15, deadline=None)
    def test_sampling_preserves_the_identity(self, seed, every):
        spec = WorkloadSpec(
            n_entities=6, n_sites=3, entities_per_txn=(2, 3),
            hotspot_skew=1.0,
        )
        sim = run(
            TransactionSystem([]), "wound-wait", seed=seed,
            network_delay=0.3, commit_protocol="two-phase",
            arrival_rate=0.5, max_transactions=40, warmup_time=5.0,
            workload=spec,
            observe=ObserveConfig(attribution=True, sample_every=every),
        )
        assert_attribution_conserves(sim)
        summary = sim.result.attribution
        assert summary["sampled"] is (every > 1)
        # Sampling must track exactly the 1-in-N committed population.
        expected = {
            txn
            for txn in range(sim.result.total)
            if txn % every == 0
            and sim.result.commit_latencies[txn] >= 0
        }
        engine = sim.observe.attribution.engine
        assert set(engine.transactions) == expected
