"""Property tests for the core model invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exhaustive import enumerate_complete_schedules
from repro.core.prefix import SystemPrefix
from repro.core.schedule import Schedule
from repro.core.serialization import d_graph, is_serializable
from repro.util.bitset import bits_of

from tests.helpers import small_random_system

seeds = st.integers(min_value=0, max_value=10_000)


class TestTransactionInvariants:
    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_lock_before_unlock_everywhere(self, seed):
        system = small_random_system(seed, n_transactions=2)
        for t in system.transactions:
            for entity in t.entities:
                assert t.precedes(
                    t.lock_node(entity), t.unlock_node(entity)
                )

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_same_site_total_order(self, seed):
        system = small_random_system(seed, n_transactions=2)
        for t in system.transactions:
            for site in t.sites_touched():
                nodes = t.nodes_at_site(site)
                for a, b in zip(nodes, nodes[1:]):
                    assert t.precedes(a, b)

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_lock_skeleton_preserves_lock_order(self, seed):
        system = small_random_system(seed, n_transactions=1)
        t = system[0]
        skeleton = t.lock_skeleton()
        for a in t.entities:
            for b in t.entities:
                if a == b:
                    continue
                assert t.precedes(
                    t.lock_node(a), t.lock_node(b)
                ) == skeleton.precedes(
                    skeleton.lock_node(a), skeleton.lock_node(b)
                )


class TestScheduleInvariants:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_enumerated_schedules_replay(self, seed):
        system = small_random_system(
            seed, n_transactions=2, n_entities=3
        )
        for schedule in enumerate_complete_schedules(system, limit=30):
            replayed = Schedule(system, schedule.steps)
            assert replayed.is_complete()
            prefix = replayed.prefix()
            for i, t in enumerate(system.transactions):
                assert prefix.masks[i] == t.dag.all_nodes_mask()

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_serial_schedules_always_serializable(self, seed):
        system = small_random_system(seed, n_transactions=3)
        order = list(range(len(system)))
        random.Random(seed).shuffle(order)
        schedule = Schedule.serial(system, order)
        assert is_serializable(schedule)
        graph = d_graph(schedule)
        # arcs must all agree with the serial order
        position = {txn: i for i, txn in enumerate(order)}
        for u, v, _label in graph.arcs():
            assert position[u] < position[v]

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_sparse_and_full_d_graph_agree(self, seed):
        system = small_random_system(
            seed, n_transactions=2, n_entities=3
        )
        for schedule in enumerate_complete_schedules(system, limit=20):
            assert d_graph(schedule, full=True).is_acyclic() == d_graph(
                schedule, full=False
            ).is_acyclic()


class TestPrefixInvariants:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_schedule_prefixes_are_down_sets(self, seed):
        system = small_random_system(seed, n_transactions=2)
        for schedule in enumerate_complete_schedules(system, limit=10):
            for cut in range(0, len(schedule.steps), 3):
                partial = Schedule(system, schedule.steps[:cut])
                prefix = partial.prefix()
                for i, t in enumerate(system.transactions):
                    assert t.dag.is_down_set(prefix.masks[i])

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_holders_unique_along_executions(self, seed):
        system = small_random_system(seed, n_transactions=2)
        for schedule in enumerate_complete_schedules(system, limit=10):
            for cut in range(len(schedule.steps) + 1):
                partial = Schedule(system, schedule.steps[:cut])
                partial.prefix().holders()  # must not raise

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_complete_prefix_holds_nothing(self, seed):
        system = small_random_system(seed, n_transactions=2)
        prefix = SystemPrefix.complete(system)
        assert prefix.holders() == {}
        for i in range(len(system)):
            assert prefix.locked_not_unlocked(i) == frozenset()
            assert list(bits_of(prefix.remaining_mask(i))) == []
