"""Chaos conformance: invariants every protocol must hold under an
adversarial network ("jepsen-lite").

Parametrized over ``protocol_names()`` x ``replica_control_names()`` —
a protocol added to either registry is automatically under test. Each
cell runs a replicated workload through message loss, duplication,
jitter, scripted and Poisson partitions, and (in one configuration)
composed site crashes, then asserts the invariants chaos is not
allowed to break:

* atomicity: every transaction ends committed exactly once — no
  half-aborted instances, no split-brain double commit, and the
  latency ledgers agree with the instance states;
* lock-table drain: a finished run leaves every site's lock table
  empty (retransmission chains and partition episodes terminate);
* ``aborts_by_cause`` partitions ``aborts`` exactly — chaos-induced
  aborts are attributed, never silently dropped;
* the message ledger balances: every physical copy put on the wire is
  delivered, dropped, or suppressed as a duplicate, with the remainder
  still in flight at the end of the run, and every accepted copy was
  acked.

The degradation tests pin the headline behaviour: through a partition
a majority-quorum system keeps committing while a ROWA/2PC system
stalls, and after the heal both converge (retransmissions deliver,
missed replicas catch up, every transaction commits).
"""

import random

import pytest

from repro.core.system import TransactionSystem
from repro.sim.commit import protocol_names
from repro.sim.durability import DurabilityConfig
from repro.sim.network import NetworkConfig
from repro.sim.replication import replica_control_names
from repro.sim.runtime import _COMMITTED, SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

SPEC = WorkloadSpec(
    n_transactions=30,
    n_entities=10,
    n_sites=4,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.6,
    read_fraction=0.3,
    replication_factor=3,
)


def chaos_configs():
    """The adversarial-network variants each cell must survive."""
    yield "lossy", NetworkConfig(
        loss_rate=0.15, dup_rate=0.1, jitter=0.3
    ), 0.0
    yield "partitioned", NetworkConfig(
        loss_rate=0.05,
        partition_schedule=((8.0, 25.0, ("s0",)), (60.0, 20.0, ("s2", "s3"))),
    ), 0.0
    yield "composed", NetworkConfig(
        loss_rate=0.1, dup_rate=0.05, jitter=0.2, partition_rate=0.01,
        partition_duration=15.0,
    ), 0.01


def chaos_runs(protocol, replica):
    """Yield (sim, result) for every completed cell of the matrix."""
    system = random_system(random.Random(7), SPEC)
    for _name, network, failure_rate in chaos_configs():
        for seed in range(2):
            sim = Simulator(
                system,
                "wound-wait",
                SimulationConfig(
                    seed=seed,
                    workload=SPEC,
                    commit_protocol=protocol,
                    replica_protocol=replica,
                    network_delay=0.5,
                    commit_timeout=6.0,
                    failure_rate=failure_rate,
                    repair_time=8.0,
                    network=network,
                ),
            )
            result = sim.run()
            assert not result.truncated
            assert not result.deadlocked
            yield sim, result


@pytest.mark.parametrize("replica", replica_control_names())
@pytest.mark.parametrize("protocol", protocol_names())
class TestChaosConformance:
    def test_atomicity_and_final_states(self, protocol, replica):
        for sim, result in chaos_runs(protocol, replica):
            statuses = [inst.status for inst in sim._instances]
            assert all(status is _COMMITTED for status in statuses)
            assert result.committed == result.total == len(statuses)
            assert len(result.latencies) == result.committed
            assert len(result.commit_latencies) == result.committed
            for inst in sim._instances:
                assert inst.retained == set()
                assert inst.waiting == {}

    def test_locks_drain_at_end(self, protocol, replica):
        for sim, _result in chaos_runs(protocol, replica):
            for name, site in sim._sites.items():
                assert site.involved() == [], (protocol, replica, name)

    def test_aborts_by_cause_partition(self, protocol, replica):
        for _sim, result in chaos_runs(protocol, replica):
            assert sum(result.aborts_by_cause.values()) == result.aborts

    def test_message_ledger_balances(self, protocol, replica):
        saw_chaos = False
        for _sim, result in chaos_runs(protocol, replica):
            assert result.net_sent == (
                result.net_delivered
                + result.net_dropped
                + result.net_duplicates
                + result.net_inflight
            )
            # Every accepted copy — fresh or suppressed — was acked.
            assert result.net_acks == (
                result.net_delivered + result.net_duplicates
            )
            assert result.net_inflight >= 0
            assert result.net_retransmits <= result.net_sent
            if result.net_dropped > 0 or result.net_duplicates > 0:
                saw_chaos = True
        # The battery actually exercised the adversary.
        assert saw_chaos


class TestChaosWithDurability:
    """The full stack: lossy partitioned network, site crashes, and a
    faulty disk (tail loss on every crash) — composed, the invariants
    must still hold and recovery must actually run."""

    PROTOCOLS = [p for p in protocol_names() if p != "instant"]

    def _run(self, protocol, seed):
        system = random_system(random.Random(7), SPEC)
        sim = Simulator(
            system,
            "wound-wait",
            SimulationConfig(
                seed=seed,
                workload=SPEC,
                commit_protocol=protocol,
                replica_protocol="quorum",
                network_delay=0.5,
                commit_timeout=6.0,
                failure_rate=0.01,
                repair_time=8.0,
                network=NetworkConfig(
                    loss_rate=0.1, dup_rate=0.05, jitter=0.2,
                    partition_rate=0.01, partition_duration=15.0,
                ),
                durability=DurabilityConfig(
                    flush_time=0.5, tail_loss_rate=0.3,
                    torn_write_rate=0.1,
                ),
            ),
        )
        result = sim.run()
        return sim, result

    def test_composed_faults_hold_invariants(self):
        saw_replay = False
        for protocol in self.PROTOCOLS:
            for seed in range(3):
                sim, result = self._run(protocol, seed)
                tag = (protocol, seed)
                assert not result.truncated, tag
                statuses = [inst.status for inst in sim._instances]
                assert all(s is _COMMITTED for s in statuses), tag
                assert result.committed == result.total, tag
                for inst in sim._instances:
                    assert inst.retained == set(), tag
                for name, site in sim._sites.items():
                    assert site.involved() == [], tag + (name,)
                assert sim.durability.in_doubt() == set(), tag
                assert (
                    sum(result.aborts_by_cause.values()) == result.aborts
                ), tag
                assert result.log_forces > 0, tag
                if result.log_replays > 0:
                    saw_replay = True
        # The battery exercised crash-recovery replay, not just forces.
        assert saw_replay


class TestNetworkConfigValidation:
    @pytest.mark.parametrize("field", ["loss_rate", "dup_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_bounded(self, field, value):
        with pytest.raises(ValueError, match=field):
            NetworkConfig(**{field: value})

    @pytest.mark.parametrize(
        "field", ["jitter", "partition_rate", "partition_duration"]
    )
    def test_negatives_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            NetworkConfig(**{field: -1.0})

    @pytest.mark.parametrize(
        "field", ["retransmit_timeout", "retransmit_cap", "suspect_timeout"]
    )
    def test_zero_timers_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            NetworkConfig(**{field: 0.0})

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="retransmit_backoff"):
            NetworkConfig(retransmit_backoff=0.5)

    @pytest.mark.parametrize(
        "episode",
        [(-1.0, 5.0, ("s0",)), (1.0, 0.0, ("s0",)), (1.0, 5.0, ())],
    )
    def test_bad_episodes_rejected(self, episode):
        with pytest.raises(ValueError, match="partition"):
            NetworkConfig(partition_schedule=(episode,))

    def test_default_config_is_inert(self):
        config = NetworkConfig()
        assert not config.enabled
        assert not config.partitions_possible


class TestWiring:
    def test_inert_config_attaches_nothing(self):
        system = random_system(random.Random(7), SPEC)
        sim = Simulator(
            system, "wound-wait",
            SimulationConfig(workload=SPEC, network=NetworkConfig()),
        )
        assert sim.network is None

    def test_enabled_config_attaches(self):
        system = random_system(random.Random(7), SPEC)
        sim = Simulator(
            system, "wound-wait",
            SimulationConfig(
                workload=SPEC, network_delay=0.5,
                network=NetworkConfig(loss_rate=0.1),
            ),
        )
        assert sim.network is not None
        result = sim.run()
        assert result.net_sent > 0

    def test_partition_side_must_be_proper_subset(self):
        system = random_system(random.Random(7), SPEC)
        with pytest.raises(ValueError, match="proper subset"):
            Simulator(
                system, "wound-wait",
                SimulationConfig(
                    workload=SPEC,
                    network=NetworkConfig(
                        partition_schedule=(
                            (1.0, 5.0, ("s0", "s1", "s2", "s3")),
                        )
                    ),
                ),
            )

    def test_partition_counters(self):
        system = random_system(random.Random(7), SPEC)
        sim = Simulator(
            system, "wound-wait",
            SimulationConfig(
                workload=SPEC, network_delay=0.5, seed=1,
                network=NetworkConfig(
                    partition_schedule=((5.0, 20.0, ("s0",)),)
                ),
            ),
        )
        result = sim.run()
        assert result.partitions == 1
        assert result.partition_time == pytest.approx(20.0)


def _window_commits(sim, start, stop):
    return sum(
        1 for inst in sim._instances if start <= inst.commit_time <= stop
    )


class TestGracefulDegradation:
    """Majority sides ride through a partition; ROWA/2PC stalls."""

    START, DURATION = 10.0, 60.0

    def _run(self, protocol, replica, seed=5):
        spec = WorkloadSpec(
            n_transactions=40,
            n_entities=10,
            n_sites=5,
            entities_per_txn=(2, 3),
            actions_per_entity=(0, 1),
            hotspot_skew=0.5,
            read_fraction=0.3,
            replication_factor=3,
        )
        system = random_system(random.Random(11), spec)
        sim = Simulator(
            system,
            "wound-wait",
            SimulationConfig(
                seed=seed,
                workload=spec,
                commit_protocol=protocol,
                replica_protocol=replica,
                network_delay=0.5,
                commit_timeout=6.0,
                network=NetworkConfig(
                    partition_schedule=(
                        (self.START, self.DURATION, ("s0",)),
                    )
                ),
            ),
        )
        result = sim.run()
        return sim, result

    def test_quorum_commits_through_partition(self):
        sim, result = self._run("paxos-commit", "quorum")
        stop = self.START + self.DURATION
        # The majority side kept deciding while the cut was up...
        assert _window_commits(sim, self.START, stop) > 0
        # ...and the run converged after the heal: everything commits.
        assert result.committed == result.total

    def test_rowa_two_phase_degrades_harder(self):
        quorum_sims = self._run("paxos-commit", "quorum")
        rowa_sims = self._run("two-phase", "rowa")
        stop = self.START + self.DURATION
        q = _window_commits(quorum_sims[0], self.START, stop)
        r = _window_commits(rowa_sims[0], self.START, stop)
        # ROWA writes need every replica, and 2PC cannot decide without
        # all participants: strictly fewer in-partition commits.
        assert q > r
        # No wrong answers either way: both converge post-heal.
        assert quorum_sims[1].committed == quorum_sims[1].total
        assert rowa_sims[1].committed == rowa_sims[1].total

    def test_partition_stall_is_attributed_not_fatal(self):
        _sim, result = self._run("two-phase", "rowa")
        # The stall shows up as unavailable aborts and retransmissions,
        # never as truncation or leftover state.
        assert not result.truncated
        assert result.net_retransmits > 0
        assert sum(result.aborts_by_cause.values()) == result.aborts
