"""Structural properties of the Theorem 2 construction that the
converse proof (Claims 1-2) relies on, verified over random formulas.

These are the load-bearing facts of the proof: if the encoder drifted
from the paper's arc families, the certificate tests might still pass
by luck, but these invariants would break.
"""

import random

import pytest

from repro.core.operations import OpKind
from repro.reductions.cnf import random_three_sat_prime
from repro.reductions.encoding import encode_formula
from repro.util.bitset import bits_of


@pytest.fixture(scope="module")
def instances():
    rng = random.Random(1234)
    result = []
    for n in (3, 4, 5):
        formula = random_three_sat_prime(n, rng)
        result.append((formula, encode_formula(formula)))
    return result


def _outgoing_labels(t, node):
    return sorted(
        str(t.ops[v]) for v in bits_of(t.dag.successors(node))
    )


class TestProofConstraints:
    def test_every_lock_reaches_its_unlock_directly(self, instances):
        for _formula, system in instances:
            for t in system.transactions:
                for entity in t.entities:
                    assert (
                        t.lock_node(entity),
                        t.unlock_node(entity),
                    ) in t.dag.arcs

    def test_l1_xpp_has_only_its_unlock(self, instances):
        """Claim 1 uses: 'the cycle cannot contain a node L¹x″ because
        such a node has an arc only to its matching Unlock node'."""
        for formula, system in instances:
            t1 = system[0]
            for variable in formula.variables:
                node = t1.lock_node(f"{variable}''")
                assert _outgoing_labels(t1, node) == [f"U{variable}''"]

    def test_l1_x_forced_successor(self, instances):
        """'a node L¹x_j must be succeeded by U¹x″_j' — besides its own
        unlock, L¹x_j has exactly the arc to U¹x″_j."""
        for formula, system in instances:
            t1 = system[0]
            for variable in formula.variables:
                node = t1.lock_node(variable)
                assert _outgoing_labels(t1, node) == sorted(
                    [f"U{variable}", f"U{variable}''"]
                )

    def test_l2_xpp_forced_successor(self, instances):
        """'node L²x″_j (must be succeeded) by U²x′_j'."""
        for formula, system in instances:
            t2 = system[1]
            for variable in formula.variables:
                node = t2.lock_node(f"{variable}''")
                assert _outgoing_labels(t2, node) == sorted(
                    [f"U{variable}''", f"U{variable}'"]
                )

    def test_lc_prime_forced_successor(self, instances):
        """'a node Lc′_i for p = 1,2 must be succeeded by U^p c_i'."""
        for formula, system in instances:
            for t in system.transactions:
                for i in range(1, formula.clause_count + 1):
                    node = t.lock_node(f"c{i}'")
                    assert _outgoing_labels(t, node) == sorted(
                        [f"Uc{i}'", f"Uc{i}"]
                    )

    def test_u2_x_unique_predecessor(self, instances):
        """'the only node that can precede U²x_j is L²c_l' (besides the
        matching lock)."""
        for formula, system in instances:
            t2 = system[1]
            table = formula.occurrence_table()
            for variable, occ in table.items():
                unlock = t2.unlock_node(variable)
                preds = sorted(
                    str(t2.ops[u])
                    for u in bits_of(t2.dag.predecessors(unlock))
                )
                assert preds == sorted(
                    [f"L{variable}", f"Lc{occ.negative}"]
                )

    def test_t1_clause_locks_point_at_positive_occurrences(
        self, instances
    ):
        """Claim 2: L¹c_i's successors are U¹c_i plus U¹y_j for the
        positive literals of c_i (y = x on first occurrence, x' on
        second)."""
        for formula, system in instances:
            t1 = system[0]
            table = formula.occurrence_table()
            for i, clause in enumerate(formula.clauses, start=1):
                expected = {f"Uc{i}"}
                for lit in clause:
                    if not lit.positive:
                        continue
                    occ = table[lit.variable]
                    if occ.first_positive == i:
                        expected.add(f"U{lit.variable}")
                    if occ.second_positive == i:
                        expected.add(f"U{lit.variable}'")
                node = t1.lock_node(f"c{i}")
                assert set(_outgoing_labels(t1, node)) == expected

    def test_t2_clause_locks_point_at_negative_occurrences(
        self, instances
    ):
        """Claim 2: L²c_i's successors are U²c_i plus U²x_j for the
        negative literals of c_i."""
        for formula, system in instances:
            t2 = system[1]
            for i, clause in enumerate(formula.clauses, start=1):
                expected = {f"Uc{i}"}
                for lit in clause:
                    if not lit.positive:
                        expected.add(f"U{lit.variable}")
                node = t2.lock_node(f"c{i}")
                assert set(_outgoing_labels(t2, node)) == expected

    def test_all_locks_minimal_all_unlocks_maximal(self, instances):
        for _formula, system in instances:
            for t in system.transactions:
                for node, op in enumerate(t.ops):
                    if op.kind is OpKind.LOCK:
                        assert t.dag.ancestors(node) == 0
                    else:
                        assert t.dag.descendants(node) == 0
