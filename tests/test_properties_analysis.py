"""Property-based cross-validation of the paper's algorithms against the
exhaustive oracle and against each other.

Random instances come from the workload generator keyed by a
hypothesis-drawn seed: deterministic, shrinkable, and guaranteed valid
by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exhaustive import (
    find_deadlock,
    find_lemma1_violation,
    is_safe_and_deadlock_free,
)
from repro.analysis.minimal_prefix import check_pair_minimal_prefix
from repro.analysis.pairs import check_pair
from repro.analysis.theorem1 import find_deadlock_prefix
from repro.core.reduction import (
    is_deadlock_partial_schedule,
    is_deadlock_prefix,
    reduction_graph,
)
from repro.core.schedule import Schedule
from repro.core.serialization import d_graph

from tests.helpers import small_random_system

seeds = st.integers(min_value=0, max_value=10_000)


class TestPairAlgorithms:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_theorem3_matches_oracle(self, seed):
        system = small_random_system(seed, n_transactions=2)
        expected = bool(
            is_safe_and_deadlock_free(system, max_states=250_000)
        )
        assert bool(check_pair(system[0], system[1])) == expected

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_minimal_prefix_matches_theorem3(self, seed):
        system = small_random_system(seed, n_transactions=2)
        assert bool(check_pair(system[0], system[1])) == bool(
            check_pair_minimal_prefix(system[0], system[1])
        )

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_theorem3_on_centralized_matches_lemma2(self, seed):
        from repro.analysis.centralized import check_centralized_pair

        system = small_random_system(
            seed, n_transactions=2, n_sites=1, shape="sequential"
        )
        assert bool(check_pair(system[0], system[1])) == bool(
            check_centralized_pair(system[0], system[1])
        )


class TestTheorem1:
    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_deadlock_iff_deadlock_prefix(self, seed):
        system = small_random_system(seed, n_transactions=2)
        direct = find_deadlock(system, max_states=250_000)
        prefix = find_deadlock_prefix(system, max_states=250_000)
        assert (direct is None) == (prefix is None)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_deadlock_witness_properties(self, seed):
        system = small_random_system(seed, n_transactions=2)
        witness = find_deadlock(system, max_states=250_000)
        if witness is None:
            return
        # The witness is a genuine deadlock partial schedule, and its
        # prefix's reduction graph is cyclic (Theorem 1, "if" direction).
        assert is_deadlock_partial_schedule(witness)
        assert reduction_graph(witness.prefix()).find_cycle() is not None
        assert is_deadlock_prefix(witness.prefix())

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_deadlock_prefix_witness_properties(self, seed):
        system = small_random_system(seed, n_transactions=2)
        witness = find_deadlock_prefix(system, max_states=250_000)
        if witness is None:
            return
        assert is_deadlock_prefix(witness.prefix)
        graph = reduction_graph(witness.prefix)
        cycle = list(witness.cycle)
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            assert graph.has_arc(a, b)


class TestLemma1:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_violation_schedule_has_cyclic_digraph(self, seed):
        system = small_random_system(seed, n_transactions=2)
        violation = find_lemma1_violation(system, max_states=250_000)
        if violation is None:
            return
        # replay the witness and re-derive the cycle
        replayed = Schedule(system, violation.schedule.steps)
        assert d_graph(replayed).find_cycle() is not None

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_lemma1_is_conjunction(self, seed):
        from repro.analysis.exhaustive import (
            find_unserializable_schedule,
        )

        system = small_random_system(seed, n_transactions=2)
        unsafe = find_unserializable_schedule(system, max_states=250_000)
        deadlock = find_deadlock(system, max_states=250_000)
        lemma1 = find_lemma1_violation(system, max_states=250_000)
        assert ((unsafe is None) and (deadlock is None)) == (
            lemma1 is None
        )


class TestCorollary1:
    """Pair safe+DF ⇔ every pair of linear extensions is safe+DF."""

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_extension_reducibility(self, seed):
        from repro.analysis.centralized import check_centralized_pair

        system = small_random_system(
            seed, n_transactions=2, n_entities=3
        )
        t1, t2 = system[0], system[1]
        pair_ok = bool(check_pair(t1, t2))
        extensions_ok = all(
            bool(check_centralized_pair(e1, e2))
            for e1 in t1.linear_extensions()
            for e2 in t2.linear_extensions()
        )
        assert pair_ok == extensions_ok
