"""Unit tests for repro.reductions.cnf."""

import random

import pytest

from repro.reductions.cnf import (
    CnfFormula,
    Literal,
    NotThreeSatPrimeError,
    random_three_sat_prime,
)


class TestLiteral:
    def test_parse_positive(self):
        assert Literal.parse("x1") == Literal("x1", True)

    def test_parse_negations(self):
        for text in ("~x", "!x", "-x", "~ x"):
            assert Literal.parse(text) == Literal("x", False)

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            Literal.parse("~")

    def test_negated(self):
        assert Literal("x").negated() == Literal("x", False)

    def test_value_under(self):
        assert Literal("x").value_under({"x": True})
        assert Literal("x", False).value_under({"x": False})

    def test_str(self):
        assert str(Literal("x")) == "x"
        assert str(Literal("x", False)) == "~x"


class TestCnfFormula:
    def test_from_lists(self):
        f = CnfFormula.from_lists([["x", "~y"], ["y"]])
        assert f.clause_count == 2
        assert f.variables == ["x", "y"]

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula.from_lists([[]])

    def test_duplicate_variable_in_clause_rejected(self):
        with pytest.raises(ValueError):
            CnfFormula.from_lists([["x", "~x"]])

    def test_evaluate(self):
        f = CnfFormula.from_lists([["x", "y"], ["~x"]])
        assert f.evaluate({"x": False, "y": True})
        assert not f.evaluate({"x": False, "y": False})

    def test_evaluate_missing_variable_raises(self):
        f = CnfFormula.from_lists([["x"]])
        with pytest.raises(KeyError):
            f.evaluate({})

    def test_satisfying_literals(self):
        f = CnfFormula.from_lists([["x", "y"], ["~x", "y"]])
        chosen = f.satisfying_literals({"x": True, "y": True})
        assert len(chosen) == 2
        assert str(chosen[0]) == "x"

    def test_satisfying_literals_raises_when_unsatisfied(self):
        f = CnfFormula.from_lists([["x"]])
        with pytest.raises(ValueError):
            f.satisfying_literals({"x": False})

    def test_str(self):
        f = CnfFormula.from_lists([["x", "~y"]])
        assert str(f) == "(x | ~y)"

    def test_equality(self):
        a = CnfFormula.from_lists([["x"]])
        b = CnfFormula.from_lists([["x"]])
        assert a == b and len({a, b}) == 1


class TestThreeSatPrime:
    def test_figure5_valid(self):
        f = CnfFormula.from_lists(
            [["x1", "x2"], ["x1", "~x2"], ["~x1", "x2"]]
        )
        assert f.is_three_sat_prime()
        table = f.occurrence_table()
        assert table["x1"].first_positive == 1
        assert table["x1"].second_positive == 2
        assert table["x1"].negative == 3

    def test_wrong_counts_invalid(self):
        f = CnfFormula.from_lists([["x"], ["~x"]])
        assert not f.is_three_sat_prime()
        with pytest.raises(NotThreeSatPrimeError):
            f.occurrence_table()

    def test_oversize_clause_invalid(self):
        f = CnfFormula.from_lists(
            [["a", "b", "c", "d"], ["a"], ["~a"],
             ["b"], ["~b"], ["c"], ["~c"], ["d"], ["~d"],
             ["a", "b"], ["c", "d"]]
        )
        assert not f.is_three_sat_prime()

    def test_unsat_instance_valid_shape(self):
        f = CnfFormula.from_lists([["a"], ["a"], ["~a"]])
        assert f.is_three_sat_prime()


class TestGenerator:
    def test_generates_valid_instances(self):
        rng = random.Random(0)
        for n in (3, 4, 6):
            f = random_three_sat_prime(n, rng)
            assert f.is_three_sat_prime()
            assert len(f.variables) == n
            assert f.clause_count == n

    def test_deterministic_under_seed(self):
        a = random_three_sat_prime(4, random.Random(9))
        b = random_three_sat_prime(4, random.Random(9))
        assert a == b

    def test_too_few_variables_rejected(self):
        with pytest.raises(ValueError):
            random_three_sat_prime(2, random.Random(0))

    def test_indivisible_clause_size_rejected(self):
        with pytest.raises(ValueError):
            random_three_sat_prime(4, random.Random(0), clause_size=5)
