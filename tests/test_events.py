"""Unit tests for repro.sim.events."""

import pytest

from repro.sim.events import EventQueue, HandlerRegistry


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, "late")
        q.push(1.0, "early")
        assert q.pop() == (1.0, "early")
        assert q.pop() == (5.0, "late")

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(2.0, "x")
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "x")
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, "x")

    def test_nan_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), "x")


class TestHandlerRegistry:
    def test_dispatch_unpacks_payload(self):
        reg = HandlerRegistry()
        seen = []
        reg.register("ping", lambda a, b: seen.append((a, b)))
        reg.dispatch(("ping", 1, "x"))
        assert seen == [(1, "x")]

    def test_zero_argument_events(self):
        reg = HandlerRegistry()
        seen = []
        reg.register("tick", lambda: seen.append("t"))
        reg.dispatch(("tick",))
        assert seen == ["t"]

    def test_duplicate_kind_rejected(self):
        reg = HandlerRegistry()
        reg.register("ping", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("ping", lambda: None)

    def test_unknown_kind_raises(self):
        reg = HandlerRegistry()
        with pytest.raises(RuntimeError, match="unknown event"):
            reg.dispatch(("nope", 1))

    def test_kinds_and_contains(self):
        reg = HandlerRegistry()
        reg.register("b", lambda: None)
        reg.register("a", lambda: None)
        assert reg.kinds() == ["a", "b"]
        assert "a" in reg
        assert "z" not in reg
