"""Unit tests for repro.core.operations."""

import pytest

from repro.core.operations import Operation, OpKind


class TestConstruction:
    def test_lock(self):
        op = Operation.lock("x")
        assert op.kind is OpKind.LOCK
        assert op.entity == "x"
        assert op.is_lock and not op.is_unlock and not op.is_action

    def test_unlock(self):
        op = Operation.unlock("y")
        assert op.is_unlock

    def test_action(self):
        op = Operation.action("z")
        assert op.is_action


class TestParsing:
    def test_parse_lock(self):
        assert Operation.parse("Lx") == Operation.lock("x")

    def test_parse_unlock(self):
        assert Operation.parse("Uabc") == Operation.unlock("abc")

    def test_parse_action(self):
        assert Operation.parse("A.x") == Operation.action("x")

    def test_parse_strips_whitespace(self):
        assert Operation.parse("  Lx ") == Operation.lock("x")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Operation.parse("Qx")

    def test_parse_rejects_empty_entity(self):
        with pytest.raises(ValueError):
            Operation.parse("L")
        with pytest.raises(ValueError):
            Operation.parse("A.")

    def test_roundtrip(self):
        for text in ["Lx", "Ux", "A.x", "Lfoo", "A.account-7"]:
            assert str(Operation.parse(text)) == text


class TestDunder:
    def test_str(self):
        assert str(Operation.lock("x")) == "Lx"
        assert str(Operation.action("x")) == "A.x"

    def test_frozen(self):
        op = Operation.lock("x")
        with pytest.raises(AttributeError):
            op.entity = "y"

    def test_hashable(self):
        assert len({Operation.lock("x"), Operation.lock("x")}) == 1
