"""Property tests linking the simulator to the static theory.

The two headline invariants:

* **soundness of certification** — a system the paper's static test
  certifies safe-and-deadlock-free never deadlocks under the pure
  blocking scheduler, for any arrival order, and every trace it produces
  is serializable;
* **witness realism** — when the simulator does wedge, the static
  machinery must agree a deadlock is reachable.

The conservation classes below sweep the enlarged behaviour space —
random workloads x every policy x every commit protocol x failure
rates, closed and open — and pin the bookkeeping invariants any run
must satisfy: committed schedules pass the D(S) test (for 2PL-shaped
workloads, where the classical theorem guarantees it), lock tables
drain, commit/abort accounting balances.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.fixed_k import check_system
from repro.analysis.policies import repair_system
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.core.system import TransactionSystem
from repro.sim.runtime import SimulationConfig, Simulator, simulate
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import small_random_system

seeds = st.integers(min_value=0, max_value=5_000)
all_policies = st.sampled_from(
    ["blocking", "wound-wait", "wait-die", "timeout", "detect"]
)
all_protocols = st.sampled_from(
    ["instant", "two-phase", "presumed-abort"]
)
failure_rates = st.sampled_from([0.0, 0.05])


def contended_system(seed: int):
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=4,
        n_entities=4,
        n_sites=2,
        entities_per_txn=(2, 3),
        actions_per_entity=(0, 1),
        hotspot_skew=1.5,
    )
    return random_system(rng, spec)


class TestCertifiedSystemsNeverDeadlock:
    @given(seeds, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_certified_blocking_run(self, workload_seed, sim_seed):
        system = contended_system(workload_seed)
        if not check_system(system):
            repaired, _ = repair_system(system)
            system = repaired
        assert check_system(system)
        result = simulate(
            system, "blocking", SimulationConfig(seed=sim_seed)
        )
        assert not result.deadlocked
        assert result.committed == len(system)
        assert result.serializable is True


class TestSimulatorDeadlocksAreReal:
    @given(seeds, st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_runtime_deadlock_implies_static_deadlock(
        self, workload_seed, sim_seed
    ):
        system = small_random_system(
            workload_seed, n_transactions=3, n_entities=4
        )
        result = simulate(
            system, "blocking", SimulationConfig(seed=sim_seed)
        )
        if result.deadlocked:
            assert find_deadlock(system, max_states=400_000) is not None


class TestTraceReplayInvariant:
    @given(seeds, st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_committed_trace_is_legal_schedule(
        self, workload_seed, sim_seed
    ):
        system = contended_system(workload_seed)
        sim = Simulator(
            system, "wound-wait", SimulationConfig(seed=sim_seed)
        )
        result = sim.run()
        schedule = sim.committed_schedule()
        # replays through full validation
        Schedule(system, schedule.steps)
        if result.committed == len(system):
            assert schedule.is_complete()


class TestPreventionPoliciesAlwaysFinish:
    @given(seeds, st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_wound_wait_and_wait_die_commit_everything(
        self, workload_seed, sim_seed
    ):
        system = contended_system(workload_seed)
        for policy in ("wound-wait", "wait-die"):
            result = simulate(
                system, policy, SimulationConfig(seed=sim_seed)
            )
            assert not result.deadlocked
            assert result.committed == len(system)


def _check_conservation(sim: Simulator, result) -> None:
    """The bookkeeping invariants every run must satisfy."""
    # (c) committed and aborted are disjoint final states: the commit
    # count, the committed-latency count, and the instance statuses all
    # tell the same story.
    committed_latencies = sum(1 for lat in result.latencies if lat >= 0)
    assert result.committed == committed_latencies
    assert 0 <= result.committed <= result.total
    statuses = [sim.instance(i).status for i in range(result.total)]
    assert sum(1 for s in statuses if s == "committed") == result.committed
    # (d) the per-cause abort counters partition the abort total.
    assert sum(result.aborts_by_cause.values()) == result.aborts
    # (a) the committed trace replays as a legal schedule and passes
    # the D(S) serializability check (the workloads below are 2PL
    # shaped, so the classical theorem promises acyclicity).
    schedule = sim.committed_schedule()
    assert is_serializable(schedule)
    # (b) a complete, untruncated run leaves every lock table drained.
    if result.committed == result.total and not result.truncated:
        for site in sim.lock_tables().values():
            assert site.involved() == [], site


class TestClosedRunConservation:
    @given(seeds, all_policies, all_protocols, failure_rates)
    @settings(max_examples=40, deadline=None)
    def test_invariants_across_the_matrix(
        self, workload_seed, policy, protocol, failure_rate
    ):
        spec = WorkloadSpec(
            n_transactions=5,
            n_entities=5,
            n_sites=3,
            entities_per_txn=(2, 3),
            actions_per_entity=(0, 1),
            hotspot_skew=1.0,
            shape="two_phase",
        )
        system = random_system(random.Random(workload_seed), spec)
        sim = Simulator(
            system,
            policy,
            SimulationConfig(
                seed=workload_seed,
                commit_protocol=protocol,
                failure_rate=failure_rate,
                repair_time=6.0,
                network_delay=0.25,
            ),
        )
        _check_conservation(sim, sim.run())


class TestOpenRunConservation:
    @given(
        seeds,
        all_policies,
        all_protocols,
        failure_rates,
        st.sampled_from(["two_phase", "ordered_2pl"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_with_arrivals(
        self, seed, policy, protocol, failure_rate, shape
    ):
        config = SimulationConfig(
            seed=seed,
            arrival_rate=0.8,
            max_transactions=20,
            warmup_time=5.0,
            workload=WorkloadSpec(
                n_entities=8,
                n_sites=3,
                entities_per_txn=(2, 3),
                actions_per_entity=(0, 1),
                shape=shape,
            ),
            commit_protocol=protocol,
            failure_rate=failure_rate,
            repair_time=6.0,
        )
        sim = Simulator(TransactionSystem([]), policy, config)
        result = sim.run()
        assert result.injected <= 20
        assert result.total == result.injected
        assert result.measured_committed <= result.committed
        assert result.inflight_area >= 0.0
        p = result.latency_percentiles("total")
        assert p["p50"] <= p["p95"] <= p["p99"]
        _check_conservation(sim, result)
