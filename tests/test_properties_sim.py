"""Property tests linking the simulator to the static theory.

The two headline invariants:

* **soundness of certification** — a system the paper's static test
  certifies safe-and-deadlock-free never deadlocks under the pure
  blocking scheduler, for any arrival order, and every trace it produces
  is serializable;
* **witness realism** — when the simulator does wedge, the static
  machinery must agree a deadlock is reachable.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exhaustive import find_deadlock
from repro.analysis.fixed_k import check_system
from repro.analysis.policies import repair_system
from repro.core.schedule import Schedule
from repro.sim.runtime import SimulationConfig, Simulator, simulate
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import small_random_system

seeds = st.integers(min_value=0, max_value=5_000)


def contended_system(seed: int):
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=4,
        n_entities=4,
        n_sites=2,
        entities_per_txn=(2, 3),
        actions_per_entity=(0, 1),
        hotspot_skew=1.5,
    )
    return random_system(rng, spec)


class TestCertifiedSystemsNeverDeadlock:
    @given(seeds, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_certified_blocking_run(self, workload_seed, sim_seed):
        system = contended_system(workload_seed)
        if not check_system(system):
            repaired, _ = repair_system(system)
            system = repaired
        assert check_system(system)
        result = simulate(
            system, "blocking", SimulationConfig(seed=sim_seed)
        )
        assert not result.deadlocked
        assert result.committed == len(system)
        assert result.serializable is True


class TestSimulatorDeadlocksAreReal:
    @given(seeds, st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_runtime_deadlock_implies_static_deadlock(
        self, workload_seed, sim_seed
    ):
        system = small_random_system(
            workload_seed, n_transactions=3, n_entities=4
        )
        result = simulate(
            system, "blocking", SimulationConfig(seed=sim_seed)
        )
        if result.deadlocked:
            assert find_deadlock(system, max_states=400_000) is not None


class TestTraceReplayInvariant:
    @given(seeds, st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_committed_trace_is_legal_schedule(
        self, workload_seed, sim_seed
    ):
        system = contended_system(workload_seed)
        sim = Simulator(
            system, "wound-wait", SimulationConfig(seed=sim_seed)
        )
        result = sim.run()
        schedule = sim.committed_schedule()
        # replays through full validation
        Schedule(system, schedule.steps)
        if result.committed == len(system):
            assert schedule.is_complete()


class TestPreventionPoliciesAlwaysFinish:
    @given(seeds, st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_wound_wait_and_wait_die_commit_everything(
        self, workload_seed, sim_seed
    ):
        system = contended_system(workload_seed)
        for policy in ("wound-wait", "wait-die"):
            result = simulate(
                system, policy, SimulationConfig(seed=sim_seed)
            )
            assert not result.deadlocked
            assert result.committed == len(system)
