"""Shared builders for the test suite."""

from __future__ import annotations

import random

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.workload import WorkloadSpec, random_system

TWO_SITES = DatabaseSchema.from_groups({"s1": ["x", "y"], "s2": ["z", "w"]})


def seq(name: str, ops: list[str], schema: DatabaseSchema | None = None) -> (
        Transaction):
    """Shorthand for a sequential transaction from op labels."""
    return Transaction.sequential(name, ops, schema)


def pair_system(
    ops1: list[str],
    ops2: list[str],
    schema: DatabaseSchema | None = None,
) -> TransactionSystem:
    """A two-transaction system of sequential transactions."""
    if schema is None:
        entities = {
            label.split(".")[-1] if label.startswith("A.") else label[1:]
            for label in ops1 + ops2
        }
        schema = DatabaseSchema.single_site(entities)
    return TransactionSystem(
        [seq("T1", ops1, schema), seq("T2", ops2, schema)]
    )


def small_random_system(
    seed: int,
    n_transactions: int = 2,
    n_entities: int = 4,
    n_sites: int = 2,
    shape: str = "random",
) -> TransactionSystem:
    """A small random system for oracle-vs-algorithm comparisons."""
    rng = random.Random(seed)
    spec = WorkloadSpec(
        n_transactions=n_transactions,
        n_entities=n_entities,
        n_sites=n_sites,
        entities_per_txn=(2, 3),
        actions_per_entity=(0, 0),
        cross_arc_p=0.3,
        shape=shape,
    )
    return random_system(rng, spec)
