"""Tests for repro.analysis.policies (lock ordering, repairs)."""

from repro.analysis.exhaustive import is_safe_and_deadlock_free
from repro.analysis.fixed_k import check_system
from repro.analysis.policies import (
    certify_prevention,
    find_global_lock_order,
    follows_lock_order,
    relock_two_phase_ordered,
    repair_system,
)
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem

from tests.helpers import seq, small_random_system


class TestFollowsLockOrder:
    def test_follows(self):
        t = seq("T", ["Lx", "Ly", "Ux", "Uy"])
        assert follows_lock_order(t, ["x", "y"])
        assert not follows_lock_order(t, ["y", "x"])

    def test_unranked_entities_ignored(self):
        t = seq("T", ["Lq", "Lx", "Uq", "Ux"])
        assert follows_lock_order(t, ["x"])

    def test_incomparable_locks_fail(self):
        from repro.paper.figures import figure3

        t = figure3()[0]
        assert not follows_lock_order(t, ["x", "y"])


class TestFindGlobalLockOrder:
    def test_consistent_workload(self):
        schema = DatabaseSchema.single_site(["x", "y", "z"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Ly", "Lz", "Uy", "Uz"], schema),
            ]
        )
        order = find_global_lock_order(system)
        assert order is not None
        assert order.index("x") < order.index("y") < order.index("z")

    def test_conflicting_workload(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
            ]
        )
        assert find_global_lock_order(system) is None
        assert not certify_prevention(system)

    def test_certify_prevention_positive(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Lx", "Ly", "Uy", "Ux"], schema),
            ]
        )
        verdict = certify_prevention(system)
        assert verdict
        assert verdict.details["order"]


class TestRelockAndRepair:
    def test_relock_preserves_entities_and_actions(self):
        t = seq("T", ["Ly", "A.y", "Uy", "Lx", "A.x", "A.x", "Ux"])
        fixed = relock_two_phase_ordered(t, ["x", "y"])
        assert fixed.entities == {"x", "y"}
        assert len(fixed.action_nodes("x")) == 2
        assert len(fixed.action_nodes("y")) == 1
        assert fixed.is_two_phase()
        assert follows_lock_order(fixed, ["x", "y"])

    def test_repair_makes_system_safe(self):
        """Repairing the classic deadlock pair yields a certified
        system (Theorem 4 and the oracle agree)."""
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
            ]
        )
        assert not check_system(system)
        repaired, order = repair_system(system)
        assert check_system(repaired)
        assert is_safe_and_deadlock_free(repaired)
        assert sorted(order) == ["x", "y"]

    def test_repair_random_workloads(self):
        for seed in range(15):
            system = small_random_system(seed + 300, n_transactions=3)
            repaired, _order = repair_system(system)
            assert check_system(repaired), f"seed {seed + 300}"
