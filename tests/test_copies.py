"""Unit tests for repro.analysis.copies (Corollary 3, Theorem 5)."""

import random

from repro.analysis.copies import check_copies, check_two_copies
from repro.analysis.exhaustive import (
    find_deadlock,
    is_safe_and_deadlock_free,
)
from repro.analysis.pairs import check_pair
from repro.core.system import TransactionSystem
from repro.sim.workload import WorkloadSpec, random_schema, random_transaction

from tests.helpers import seq


class TestCheckTwoCopies:
    def test_ordered_two_phase_passes(self):
        t = seq("T", ["Lx", "Ly", "Lz", "Uz", "Uy", "Ux"])
        verdict = check_two_copies(t)
        assert verdict
        assert verdict.details["x"] == "x"

    def test_early_release_fails(self):
        t = seq("T", ["Lx", "Ux", "Ly", "Uy"])
        verdict = check_two_copies(t)
        assert not verdict
        assert verdict.witness.condition == 2

    def test_no_first_lock_fails(self):
        from repro.paper.figures import figure3

        system = figure3()
        verdict = check_two_copies(system[0])
        assert not verdict
        assert verdict.witness.condition == 1

    def test_single_entity_passes(self):
        assert check_two_copies(seq("T", ["Lx", "A.x", "Ux"]))

    def test_guard_chain_passes(self):
        # x guards y, y guards z (non-2PL but each lock is covered).
        t = seq("T", ["Lx", "Ly", "Ux", "Lz", "Uy", "Uz"])
        assert check_two_copies(t)


class TestAgainstTheorem3:
    def test_matches_pair_check_on_copies(self):
        """Corollary 3 is Theorem 3 specialized to two copies."""
        rng = random.Random(5)
        spec = WorkloadSpec(
            n_transactions=1,
            entities_per_txn=(2, 4),
            actions_per_entity=(0, 0),
        )
        for seed in range(80):
            rng = random.Random(seed)
            schema = random_schema(rng, 5, 2)
            t = random_transaction("T", rng, schema, spec)
            pair = TransactionSystem.of_copies(t, 2)
            assert bool(check_two_copies(t)) == bool(
                check_pair(pair[0], pair[1])
            ), f"seed {seed}"


class TestTheorem5:
    def test_copies_counts(self):
        t = seq("T", ["Lx", "Ly", "Uy", "Ux"])
        for d in (1, 2, 3, 5):
            assert check_copies(t, d)

    def test_failing_transaction_fails_for_all_counts(self):
        t = seq("T", ["Lx", "Ux", "Ly", "Uy"])
        assert check_copies(t, 1)  # single copy trivially fine
        for d in (2, 3, 4):
            assert not check_copies(t, d)

    def test_oracle_agreement_three_copies(self):
        """d=3 copies verdict matches the exhaustive Lemma 1 oracle."""
        cases = [
            seq("T", ["Lx", "Ly", "Uy", "Ux"]),
            seq("T", ["Lx", "Ux", "Ly", "Uy"]),
            seq("T", ["Lx", "Ly", "Ux", "Uy"]),
        ]
        for t in cases:
            system = TransactionSystem.of_copies(t, 3)
            assert bool(check_copies(t, 3)) == bool(
                is_safe_and_deadlock_free(system, max_states=500_000)
            )

    def test_figure6_breaks_deadlock_only_analogue(self):
        """Theorem 5 concerns safe+DF; for deadlock-freedom alone the
        2-copy/3-copy equivalence FAILS (Figure 6)."""
        from repro.paper.figures import figure6

        t = figure6()
        two = TransactionSystem.of_copies(t, 2)
        three = TransactionSystem.of_copies(t, 3)
        assert find_deadlock(two) is None
        assert find_deadlock(three) is not None
        # and consistently, safe+DF already fails at two copies:
        assert not check_copies(t, 2)
