"""Tests for repro.analysis.bipartite (lock-only prefix scan)."""

import pytest

from repro.analysis.bipartite import (
    find_lock_only_deadlock_prefix,
    is_deadlock_free_lock_minimal,
    is_lock_minimal,
)
from repro.analysis.exhaustive import find_deadlock
from repro.core.entity import DatabaseSchema
from repro.core.reduction import is_deadlock_prefix
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction, TransactionBuilder

from tests.helpers import seq


def lock_minimal_pair(deadlocking: bool) -> TransactionSystem:
    """Two lock-minimal transactions over x, y (one site each)."""
    schema = DatabaseSchema.site_per_entity(["x", "y"])

    def build(name: str, cross: list[tuple[str, str]]) -> Transaction:
        b = TransactionBuilder(name, schema)
        nodes = {}
        for e in ("x", "y"):
            nodes[f"L{e}"] = b.lock(e)
            nodes[f"U{e}"] = b.unlock(e)
            b.arc(nodes[f"L{e}"], nodes[f"U{e}"])
        for a, c in cross:
            b.arc(nodes[a], nodes[c])
        return b.build()

    if deadlocking:
        # Each holds one entity while its other unlock waits on the
        # other's lock: Lx -> Uy in T1, Ly -> Ux in T2.
        t1 = build("T1", [("Lx", "Uy")])
        t2 = build("T2", [("Ly", "Ux")])
    else:
        t1 = build("T1", [])
        t2 = build("T2", [])
    return TransactionSystem([t1, t2])


class TestIsLockMinimal:
    def test_true_for_bipartite(self):
        assert is_lock_minimal(lock_minimal_pair(False))

    def test_false_for_sequential(self):
        system = TransactionSystem([seq("T1", ["Lx", "Ly", "Ux", "Uy"])])
        assert not is_lock_minimal(system)

    def test_figure2_is_lock_minimal(self):
        from repro.paper.figures import figure2

        assert is_lock_minimal(figure2())


class TestScan:
    def test_rejects_non_lock_minimal(self):
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"]),
                seq("T2", ["Lx", "Ly", "Ux", "Uy"]),
            ]
        )
        with pytest.raises(ValueError):
            find_lock_only_deadlock_prefix(system)

    def test_finds_deadlock(self):
        system = lock_minimal_pair(True)
        witness = find_lock_only_deadlock_prefix(system)
        assert witness is not None
        assert is_deadlock_prefix(witness.prefix)

    def test_agrees_with_general_search(self):
        for deadlocking in (True, False):
            system = lock_minimal_pair(deadlocking)
            scan = find_lock_only_deadlock_prefix(system) is not None
            general = find_deadlock(system) is not None
            assert scan == general == deadlocking

    def test_figure2(self):
        from repro.paper.figures import figure2

        witness = find_lock_only_deadlock_prefix(figure2())
        assert witness is not None
        # 4-entity cycle: 8 nodes
        assert len(witness.cycle) == 8

    def test_verdict(self):
        assert is_deadlock_free_lock_minimal(lock_minimal_pair(False))
        assert not is_deadlock_free_lock_minimal(lock_minimal_pair(True))
