"""Property tests for the replication subsystem.

Four invariant families from the PR's contract:

* lock-mode safety — shared grants never coexist with an exclusive
  grant, whatever request/release/cancel interleaving the lock table
  sees;
* quorum intersection — every write quorum the protocol can hand out
  intersects every read quorum it can hand out, whatever the up-sets
  (this is what lets quorum reads mask staleness);
* drained lock tables per mode — complete replicated runs (any
  protocol, shared and exclusive locks in play) leave every site's
  table empty;
* no stale reads — ``rowa-available`` never chooses a replica that
  missed a committed write, under arbitrary crash/recover/catch-up
  /write interleavings.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.locks import EXCLUSIVE, SHARED, SiteLockManager
from repro.sim.replication import make_replica_control
from repro.sim.replication.protocols import majority
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

from tests.helpers import seq

replica_protocols = st.sampled_from(["rowa", "rowa-available", "quorum"])


# ----------------------------------------------------------------------
# lock-mode safety
# ----------------------------------------------------------------------

lock_ops = st.lists(
    st.tuples(
        st.sampled_from(["request", "release", "cancel"]),
        st.integers(min_value=0, max_value=5),  # txn
        st.sampled_from(["x", "y"]),
        st.sampled_from([SHARED, EXCLUSIVE]),
    ),
    max_size=60,
)


def _check_lock_invariants(mgr: SiteLockManager) -> None:
    for entity in ("x", "y"):
        holders = mgr.holders(entity)
        mode = mgr.mode(entity)
        if mode == EXCLUSIVE:
            # An exclusive grant is always sole: no shared coexistence.
            assert len(holders) == 1
        waiters = mgr.waiters(entity)
        # FIFO queue holds no duplicates, and (upgrades aside) no
        # current holder waits for its own entity in shared mode.
        assert len(waiters) == len(set(waiters))


class TestLockModeSafety:
    @given(lock_ops)
    @settings(max_examples=60, deadline=None)
    def test_shared_never_coexists_with_exclusive(self, ops):
        mgr = SiteLockManager("s0")
        for action, txn, entity, mode in ops:
            try:
                if action == "request":
                    mgr.request(txn, entity, mode)
                elif action == "release":
                    mgr.release(txn, entity)
                else:
                    mgr.cancel_wait(txn, entity)
            except ValueError:
                pass  # double requests / foreign releases are caller bugs
            _check_lock_invariants(mgr)

    @given(lock_ops)
    @settings(max_examples=40, deadline=None)
    def test_releasing_everything_drains_the_table(self, ops):
        mgr = SiteLockManager("s0")
        for action, txn, entity, mode in ops:
            try:
                if action == "request":
                    mgr.request(txn, entity, mode)
                elif action == "release":
                    mgr.release(txn, entity)
                else:
                    mgr.cancel_wait(txn, entity)
            except ValueError:
                pass
        for txn in range(6):
            for entity in ("x", "y"):
                mgr.cancel_wait(txn, entity)
            mgr.release_all(txn)
        assert mgr.involved() == []


# ----------------------------------------------------------------------
# quorum intersection
# ----------------------------------------------------------------------

class TestQuorumIntersection:
    @given(
        st.integers(min_value=1, max_value=9),
        st.sets(st.integers(min_value=0, max_value=8)),
        st.sets(st.integers(min_value=0, max_value=8)),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_write_quorum_meets_any_read_quorum(
        self, n, up_at_write, up_at_read
    ):
        replicas = tuple(f"s{i}" for i in range(n))
        control = make_replica_control("quorum")
        write = control.write_sites(
            replicas, {f"s{i}" for i in up_at_write}
        )
        read = control.read_sites(
            replicas, {f"s{i}" for i in up_at_read}, frozenset()
        )
        if write is not None:
            assert len(write) == majority(n)
        if write is not None and read is not None:
            # The intersection property: a read quorum always contains
            # a replica of every earlier committed write.
            assert set(write) & set(read)

    @given(
        st.integers(min_value=1, max_value=7),
        st.lists(
            st.sets(st.integers(min_value=0, max_value=6)), max_size=8
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_committed_writes_visible_to_all_later_reads(
        self, n, up_sets
    ):
        """Every committed write's quorum intersects every subsequent
        read quorum, across an arbitrary up/down history."""
        replicas = tuple(f"s{i}" for i in range(n))
        control = make_replica_control("quorum")
        committed: list[set[str]] = []
        for up_ids in up_sets:
            up = {f"s{i}" for i in up_ids}
            write = control.write_sites(replicas, up)
            if write is not None:
                committed.append(set(write))
            read = control.read_sites(replicas, up, frozenset())
            if read is not None:
                for write_quorum in committed:
                    assert write_quorum & set(read)


# ----------------------------------------------------------------------
# lock tables drain per mode (end to end)
# ----------------------------------------------------------------------

class TestReplicatedRunsDrain:
    @given(
        st.integers(min_value=0, max_value=2_000),
        replica_protocols,
        st.integers(min_value=1, max_value=3),
        st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lock_tables_drain_and_accounting_balances(
        self, seed, protocol, factor, read_fraction
    ):
        spec = WorkloadSpec(
            n_transactions=5,
            n_entities=5,
            n_sites=3,
            entities_per_txn=(2, 3),
            actions_per_entity=(0, 1),
            shape="two_phase",
            read_fraction=read_fraction,
            replication_factor=factor,
        )
        system = random_system(random.Random(seed), spec)
        sim = Simulator(
            system,
            "wound-wait",
            SimulationConfig(
                seed=seed, workload=spec, replica_protocol=protocol,
            ),
        )
        result = sim.run()
        assert result.committed == len(system)
        assert not result.deadlocked
        assert sum(result.aborts_by_cause.values()) == result.aborts
        assert result.serializable is True
        for site in sim.lock_tables().values():
            assert site.involved() == [], (protocol, factor, site)
        # Failure-free runs are fully available under every protocol
        # (up to float accumulation in the time integral).
        assert result.availability >= 1.0 - 1e-9


# ----------------------------------------------------------------------
# rowa-available never reads a stale replica
# ----------------------------------------------------------------------

def _manager_sim():
    schema = DatabaseSchema.from_groups(
        {"s0": ["x"], "s1": ["y"], "s2": ["z"]}
    )
    # One single-entity writer per entity, so a simulated write to any
    # entity can ride the real on_commit bookkeeping of its writer.
    system = TransactionSystem([
        seq("Tx", ["Lx", "Ux"], schema),
        seq("Ty", ["Ly", "Uy"], schema),
        seq("Tz", ["Lz", "Uz"], schema),
    ])
    spec = WorkloadSpec(n_sites=3, n_entities=3, replication_factor=3)
    return Simulator(
        system,
        "wound-wait",
        SimulationConfig(
            workload=spec,
            replica_protocol="rowa-available",
            failure_rate=0.0001,  # create the injector; never fires
            max_time=1.0,
        ),
    )


manager_events = st.lists(
    st.tuples(
        st.sampled_from(["crash", "recover", "catchup", "write"]),
        st.sampled_from(["s0", "s1", "s2"]),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=40,
)


class TestRowaAvailableNeverReadsStale:
    @given(manager_events)
    @settings(max_examples=60, deadline=None)
    def test_read_choice_never_missed_a_write(self, events):
        sim = _manager_sim()
        manager = sim.replicas
        injector = sim.failures
        down: set[str] = set()
        for kind, site, entity in events:
            if kind == "crash" and site not in down:
                manager.on_crash(site)
                injector.mark_down(site)
                down.add(site)
            elif kind == "recover" and site in down:
                manager.on_recover(site)
                injector.mark_up(site)
                down.discard(site)
            elif kind == "catchup" and site not in down:
                manager._on_catchup(site)
            elif kind == "write":
                reached = manager.write_sites(entity)
                if reached is None:
                    continue
                writer = {"x": 0, "y": 1, "z": 2}[entity]
                inst = sim.instance(writer)
                inst.lock_sites = {
                    sim.entity_id(entity): tuple(
                        sim.site_id(s) for s in reached
                    )
                }
                # Commit the write through the real bookkeeping hook.
                manager.on_commit(inst)
            for probe in ("x", "y", "z"):
                chosen = manager.read_sites(probe)
                if chosen is None:
                    continue
                missed = manager.missed_replicas(probe)
                stale = manager.stale_replicas(probe)
                assert not (set(chosen) & missed), (probe, chosen, missed)
                assert not (set(chosen) & stale), (probe, chosen, stale)
                assert all(s not in down for s in chosen)
