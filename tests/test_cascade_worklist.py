"""Extreme-contention wound cascades run on the explicit worklist.

The scenario: one long-running transaction holds a hot entity while
hundreds of waiters queue behind it in *reverse age order* (youngest
first — each waiter's private prework delays its request by an amount
decreasing with age). When the holder finally releases, the youngest
waiter is granted, every older waiter wounds it, its abort grants the
next-youngest, and so on — one grant/wound/abort link per waiter, all
inside a single release event.

The historical implementation ran this cascade as mutual recursion
between the grant delivery, the waiter re-evaluation, and ``_abort``
(several interpreter frames per link), and a few hundred waiters blew
the default recursion limit. The worklist implementation must complete
the same cascade within the *default* interpreter stack — no
``sys.setrecursionlimit`` escape hatch — replaying the recursive
depth-first order exactly, which the pinned digest certifies.
"""

import hashlib
import random
import sys
from collections import deque

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.runtime import SimulationConfig, Simulator

N_WAITERS = 400
SEED = 0
SPREAD = 0.4

DIGEST_FIELDS = (
    "committed", "total", "end_time", "aborts", "wounds", "deaths",
    "waits", "wait_time", "deadlocked", "serializable", "truncated",
    "latencies",
)

# Pinned behaviour of the cascade scenario (see regenerate() below).
EXPECTED_DIGEST = "a145ceea9b69"


def cascade_scenario():
    """(system, config) for the reverse-age hot-entity pile-up."""
    n = N_WAITERS
    rng = random.Random(SEED)
    # The simulator draws one uniform start per transaction, in index
    # order, from Random(seed) — reproduce the stream to learn each
    # transaction's timestamp up front.
    starts = [rng.uniform(0, SPREAD) for _ in range(n + 1)]
    holder = min(range(n + 1), key=lambda i: starts[i])
    waiters = sorted(
        (i for i in range(n + 1) if i != holder), key=lambda i: starts[i]
    )
    # Oldest waiter gets the longest private prework, so it requests
    # the hot entity last and sits at the back of the FIFO queue; the
    # queue ends up youngest-first, the worst case for wound-wait.
    prework = {i: n - 1 - rank for rank, i in enumerate(waiters)}
    placement = {"h": "s0"}
    for i in range(n + 1):
        if i != holder:
            placement[f"p{i}"] = "s0"
    schema = DatabaseSchema(placement)
    transactions = []
    hold_time = n + 4  # hold h until every waiter has queued
    for i in range(n + 1):
        if i == holder:
            ops = ["Lh"] + ["A.h"] * hold_time + ["Uh"]
        else:
            k = prework[i]
            ops = [f"Lp{i}"] + [f"A.p{i}"] * k + [f"Up{i}", "Lh", "Uh"]
        transactions.append(Transaction.sequential(f"T{i + 1}", ops, schema))
    config = SimulationConfig(
        seed=SEED,
        arrival_spread=SPREAD,
        restart_delay=10.0 * n,  # aborted waiters stay out of the way
        max_time=3.0 * n,
    )
    return TransactionSystem(transactions), config


def digest(result) -> str:
    blob = ";".join(f"{f}={getattr(result, f)!r}" for f in DIGEST_FIELDS)
    return hashlib.md5(blob.encode()).hexdigest()[:12]


def test_extreme_contention_cascade_completes_at_default_stack():
    limit = sys.getrecursionlimit()
    system, config = cascade_scenario()
    sim = Simulator(system, "wound-wait", config)

    # Instrument the worklist so the test certifies the cascade really
    # is hundreds of frames deep (the recursive implementation needed
    # several interpreter frames per link and died here).
    depths = {"max": 0}
    original = Simulator._drive_cascade

    def measured(root):
        child = next(root, None)
        if child is None:
            return
        stack = deque((root, child))
        while stack:
            if len(stack) > depths["max"]:
                depths["max"] = len(stack)
            child = next(stack[-1], None)
            if child is None:
                stack.pop()
            else:
                stack.append(child)

    sim._drive_cascade = measured
    sys.setrecursionlimit(1000)  # the interpreter default, pinned
    try:
        result = sim.run()
    finally:
        sys.setrecursionlimit(limit)

    # One wound per waiter, delivered in a single cascade whose
    # worklist grows ~2 frames per link.
    assert result.wounds == N_WAITERS - 1
    assert depths["max"] > N_WAITERS
    assert digest(result) == EXPECTED_DIGEST
    assert original is Simulator._drive_cascade  # sanity: class intact


def test_cascade_digest_is_stable_across_runs():
    system, config = cascade_scenario()
    first = digest(Simulator(system, "wound-wait", config).run())
    system2, config2 = cascade_scenario()
    second = digest(Simulator(system2, "wound-wait", config2).run())
    assert first == second == EXPECTED_DIGEST


def regenerate() -> None:  # pragma: no cover - maintenance helper
    """Print a fresh EXPECTED_DIGEST after an intentional change."""
    system, config = cascade_scenario()
    print(digest(Simulator(system, "wound-wait", config).run()))


if __name__ == "__main__":  # pragma: no cover
    regenerate()
