"""Unit tests for repro.analysis.sets (R_T(s), L_T(s))."""

from repro.analysis.sets import l_set, r_set
from repro.core.entity import DatabaseSchema
from repro.core.operations import Operation
from repro.core.transaction import Transaction

from tests.helpers import seq


class TestRSet:
    def test_sequential(self):
        t = seq("T", ["Lx", "Ly", "Ux", "Lz", "Uy", "Uz"])
        assert r_set(t, t.lock_node("z")) == {"x", "y"}
        assert r_set(t, t.lock_node("x")) == set()
        assert r_set(t, t.unlock_node("z")) == {"x", "y", "z"}

    def test_incomparable_lock_not_included(self):
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        ops = [
            Operation.lock("x"), Operation.unlock("x"),
            Operation.lock("y"), Operation.unlock("y"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3)], schema)
        assert r_set(t, t.lock_node("y")) == set()


class TestLSet:
    def test_sequential_held(self):
        t = seq("T", ["Lx", "Ly", "Ux", "Lz", "Uy", "Uz"])
        # at Lz: x was unlocked already, y still held
        assert l_set(t, t.lock_node("z")) - {"z"} == {"y"}

    def test_own_entity_membership_is_harmless(self):
        """The paper's literal definition puts y in L_T(Ly); it never
        matters because R sets use strict precedence."""
        t = seq("T", ["Lx", "Ly", "Ux", "Uy"])
        assert "y" in l_set(t, t.lock_node("y"))
        assert "y" not in r_set(t, t.lock_node("y"))

    def test_incomparable_unlock_excluded(self):
        """If Uz is incomparable with s, an extension may unlock z before
        s, so z is not guaranteed held: the definition requires
        s ≺ Uz."""
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["z"]})
        ops = [
            Operation.lock("x"), Operation.unlock("x"),
            Operation.lock("z"), Operation.unlock("z"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3)], schema)
        assert "z" not in l_set(t, t.lock_node("x"))

    def test_incomparable_lock_included(self):
        """If Lz is incomparable with s but s ≺ Uz, the delaying
        extension locks z before s: z ∈ L_T(s)."""
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["z"]})
        ops = [
            Operation.lock("x"), Operation.unlock("x"),
            Operation.lock("z"), Operation.unlock("z"),
        ]
        # Lx -> Uz makes Uz after Lx; Lz stays incomparable with Lx.
        t = Transaction("T", ops, [(0, 1), (2, 3), (0, 3)], schema)
        assert "z" in l_set(t, t.lock_node("x"))

    def test_l_not_subset_of_r_for_distributed(self):
        """The paper remarks L_T(s) ⊆ R_T(s) can fail in the distributed
        case."""
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["z"]})
        ops = [
            Operation.lock("x"), Operation.unlock("x"),
            Operation.lock("z"), Operation.unlock("z"),
        ]
        t = Transaction("T", ops, [(0, 1), (2, 3), (0, 3)], schema)
        step = t.lock_node("x")
        assert not l_set(t, step) <= r_set(t, step)


class TestConsistencyWithSequenceDefinitions:
    def test_matches_centralized_scan(self):
        from repro.analysis.centralized import (
            sequence_l_set,
            sequence_r_set,
        )

        t = seq("T", ["Lx", "Ly", "Ux", "Lz", "Uy", "Uz"])
        ops = [t.ops[n] for n in t.dag.topological_order()]
        for entity in t.entities:
            node = t.lock_node(entity)
            position = t.dag.topological_order().index(node)
            assert r_set(t, node) == sequence_r_set(ops, position)
            # modulo the harmless own-entity member:
            assert l_set(t, node) - {entity} == sequence_l_set(
                ops, position
            ) - {entity}
