"""Unit tests for repro.core.entity."""

import pytest

from repro.core.entity import DatabaseSchema


class TestConstruction:
    def test_basic(self):
        schema = DatabaseSchema({"x": "s1", "y": "s1", "z": "s2"})
        assert schema.site_of("x") == "s1"
        assert schema.site_of("z") == "s2"

    def test_empty_entity_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema({"": "s1"})

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema({"x": ""})


class TestConstructors:
    def test_single_site(self):
        schema = DatabaseSchema.single_site(["a", "b"])
        assert schema.is_centralized()
        assert schema.site_of("a") == schema.site_of("b")

    def test_site_per_entity(self):
        schema = DatabaseSchema.site_per_entity(["a", "b"])
        assert schema.site_of("a") != schema.site_of("b")
        assert not schema.is_centralized()

    def test_from_groups(self):
        schema = DatabaseSchema.from_groups({"s1": ["x", "y"], "s2": ["z"]})
        assert schema.entities_at("s1") == {"x", "y"}
        assert schema.colocated("x", "y")
        assert not schema.colocated("x", "z")

    def test_from_groups_rejects_conflict(self):
        with pytest.raises(ValueError):
            DatabaseSchema.from_groups({"s1": ["x"], "s2": ["x"]})


class TestQueries:
    def test_entities_and_sites(self):
        schema = DatabaseSchema({"x": "s1", "y": "s2"})
        assert schema.entities == {"x", "y"}
        assert schema.sites == {"s1", "s2"}

    def test_contains(self):
        schema = DatabaseSchema({"x": "s1"})
        assert "x" in schema
        assert "y" not in schema

    def test_unknown_site_empty(self):
        schema = DatabaseSchema({"x": "s1"})
        assert schema.entities_at("nowhere") == frozenset()

    def test_site_of_unknown_raises(self):
        schema = DatabaseSchema({"x": "s1"})
        with pytest.raises(KeyError):
            schema.site_of("y")


class TestMerge:
    def test_merge_disjoint(self):
        a = DatabaseSchema({"x": "s1"})
        b = DatabaseSchema({"y": "s2"})
        merged = a.merged_with(b)
        assert merged.entities == {"x", "y"}

    def test_merge_overlapping_consistent(self):
        a = DatabaseSchema({"x": "s1"})
        b = DatabaseSchema({"x": "s1", "y": "s2"})
        assert a.merged_with(b).entities == {"x", "y"}

    def test_merge_conflict_raises(self):
        a = DatabaseSchema({"x": "s1"})
        b = DatabaseSchema({"x": "s2"})
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestEquality:
    def test_equal(self):
        assert DatabaseSchema({"x": "s"}) == DatabaseSchema({"x": "s"})

    def test_not_equal(self):
        assert DatabaseSchema({"x": "s"}) != DatabaseSchema({"x": "t"})

    def test_hashable(self):
        assert len({DatabaseSchema({"x": "s"}), DatabaseSchema({"x": "s"})}) == 1
