"""Tests for the fault-injection layer (repro.sim.failures)."""

import pytest

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.failures import FailureInjector
from repro.sim.runtime import (
    _ABORTED,
    _PREPARED,
    _RUNNING,
    SimulationConfig,
    Simulator,
    simulate,
)

from tests.helpers import seq

SCHEMA = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})


def cross_pair() -> TransactionSystem:
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], SCHEMA),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], SCHEMA),
        ]
    )


def failure_config(**kw) -> SimulationConfig:
    defaults = dict(failure_rate=0.02, repair_time=5.0)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestWiring:
    def test_zero_rate_creates_no_injector(self):
        sim = Simulator(cross_pair(), "wound-wait", SimulationConfig())
        assert sim.failures is None
        assert sim.site_is_up("s1")

    def test_positive_rate_creates_injector(self):
        sim = Simulator(
            cross_pair(), "wound-wait", failure_config(seed=3)
        )
        assert isinstance(sim.failures, FailureInjector)
        assert sim.failures.down_sites == []

    def test_injector_rejects_zero_rate(self):
        sim = Simulator(cross_pair(), "wound-wait", SimulationConfig())
        with pytest.raises(ValueError):
            FailureInjector(sim)


class TestCrashSemantics:
    def test_crash_aborts_running_holder(self):
        sim = Simulator(cross_pair(), "wound-wait", failure_config())
        x = sim.entity_id("x")
        site = sim._site_for_entity("x")
        site.request(0, x)
        assert sim.instance(0).status == _RUNNING
        sim.crash_site("s1")
        assert sim.instance(0).status == _ABORTED
        assert sim.result.crash_aborts == 1
        assert site.holder(x) is None

    def test_crash_aborts_waiters_too(self):
        sim = Simulator(cross_pair(), "wound-wait", failure_config())
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(0, x)
        site.request(1, x)
        sim.instance(1).waiting[(x, s1)] = 0.0
        sim.crash_site("s1")
        assert sim.instance(0).status == _ABORTED
        assert sim.instance(1).status == _ABORTED
        assert sim.result.crash_aborts == 2
        assert site.involved() == []

    def test_prepared_transaction_survives_crash(self):
        """PREPARED state is on the write-ahead log: a crash must not
        abort the transaction nor free its retained locks."""
        sim = Simulator(
            cross_pair(),
            "wound-wait",
            failure_config(commit_protocol="two-phase"),
        )
        inst = sim.instance(0)
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(0, x)
        sim.mark_prepared(inst)
        inst.retained.add((x, s1))
        sim._retained_total += 1
        sim.crash_site("s1")
        assert inst.status == _PREPARED
        assert site.holder(x) == 0
        assert sim.result.crash_aborts == 0

    def test_issue_to_down_site_aborts(self):
        sim = Simulator(cross_pair(), "wound-wait", failure_config())
        sim.failures.mark_down("s1")
        inst = sim.instance(0)
        inst.issued |= 1
        sim._issue_one(inst, 0)  # T1's Lx lives at the down site s1
        assert inst.status == _ABORTED
        assert sim.result.crash_aborts == 1


class TestEndToEnd:
    def test_deterministic_under_seed(self):
        config = failure_config(
            seed=4, commit_protocol="two-phase", network_delay=0.5
        )
        a = simulate(cross_pair(), "wound-wait", config)
        b = simulate(cross_pair(), "wound-wait", config)
        assert a.end_time == b.end_time
        assert a.crashes == b.crashes
        assert a.aborts == b.aborts
        assert a.latencies == b.latencies
        assert a.commit_messages == b.commit_messages

    def test_failure_stream_does_not_disturb_arrivals(self):
        """The injector draws from a private RNG stream: start times
        and timestamps match the failure-free run exactly."""
        plain = Simulator(
            cross_pair(), "wound-wait", SimulationConfig(seed=9)
        )
        plain.run()
        faulty = Simulator(
            cross_pair(), "wound-wait", failure_config(seed=9)
        )
        faulty.run()
        assert [i.start_time for i in plain._instances] == [
            i.start_time for i in faulty._instances
        ]

    def test_crashes_happen_and_work_still_finishes(self):
        crashes = crash_aborts = 0
        for s in range(10):
            result = simulate(
                cross_pair(),
                "wound-wait",
                failure_config(
                    seed=s, failure_rate=0.05, repair_time=4.0,
                    commit_protocol="two-phase", network_delay=0.5,
                ),
            )
            assert result.committed == 2, f"seed {s}"
            assert result.serializable is True
            crashes += result.crashes
            crash_aborts += result.crash_aborts
        assert crashes > 0
        assert crash_aborts > 0

    def test_two_phase_with_crashes_shows_commit_costs(self):
        """The acceptance-criteria shape: crashes + 2PC produce nonzero
        prepared-blocked time and commit-phase latency."""
        blocked = commit_latency = 0.0
        for s in range(10):
            result = simulate(
                cross_pair(),
                "wound-wait",
                failure_config(
                    seed=s, failure_rate=0.05, repair_time=4.0,
                    commit_protocol="two-phase", network_delay=0.5,
                ),
            )
            blocked += result.prepared_block_time
            commit_latency += result.mean_commit_latency
        assert blocked > 0.0
        assert commit_latency > 0.0

    def test_run_ends_promptly_after_last_commit(self):
        """Trailing crash/recover events scheduled during the run must
        not drag end_time past the last piece of real work (they would
        deflate throughput and inflate the crash count)."""
        result = simulate(
            cross_pair(),
            "wound-wait",
            failure_config(
                seed=11, commit_protocol="two-phase", network_delay=0.5
            ),
        )
        assert result.committed == 2
        # Both transactions finish within ~50 time units; without the
        # early stop this seed ran on to the next crash at t~450.
        assert result.end_time < 100.0

    def test_successful_run_not_truncated_by_trailing_failures(self):
        """A fully committed run under a tight horizon must not be
        flagged truncated just because a future crash event lies past
        max_time."""
        for s in range(10):
            result = simulate(
                cross_pair(),
                "wound-wait",
                failure_config(
                    seed=s, commit_protocol="two-phase",
                    network_delay=0.5, max_time=60.0,
                ),
            )
            if result.committed == 2:
                assert not result.truncated, f"seed {s}"

    def test_instant_commit_unaffected_by_protocol_knobs(self):
        """commit_timeout/repair knobs are inert under instant+0 rate:
        results equal the default-config run bit for bit."""
        base = simulate(
            cross_pair(), "wait-die", SimulationConfig(seed=6)
        )
        tweaked = simulate(
            cross_pair(),
            "wait-die",
            SimulationConfig(
                seed=6, commit_timeout=99.0, repair_time=123.0
            ),
        )
        assert base.latencies == tweaked.latencies
        assert base.end_time == tweaked.end_time
        assert base.aborts == tweaked.aborts


class TestChainContinuation:
    """A recovery is the only point where a site's crash chain can
    end; these pin the continuation decision (``_work_pending``)."""

    def test_work_pending_sources(self):
        sim = Simulator(cross_pair(), "wound-wait", failure_config())
        injector = sim.failures
        assert injector._work_pending()  # the batch is uncommitted
        sim.result.committed = len(sim.system)
        assert not injector._work_pending()
        # All transactions committed, but a commit decision is still
        # retransmitting to a down participant: the protocol
        # conversation is alive and its targets can crash again.
        sim._retained_total = 1
        assert injector._work_pending()

    def test_chain_survives_idle_open_system_gaps(self):
        """A recovery landing in an idle gap of a slow arrival process
        (everything injected so far committed, more traffic on the
        clock) must reschedule the site's next crash — otherwise fault
        injection silently dies early in any long low-rate run."""
        from repro.sim.workload import WorkloadSpec

        spec = WorkloadSpec(
            n_entities=8,
            n_sites=3,
            entities_per_txn=(2, 3),
            actions_per_entity=(0, 1),
            hotspot_skew=0.5,
        )
        config = SimulationConfig(
            seed=2,
            arrival_rate=0.01,  # idle gaps ~100 time units
            max_transactions=12,
            workload=spec,
            failure_rate=0.02,
            repair_time=5.0,
            commit_protocol="two-phase",
            network_delay=0.5,
        )
        sim = Simulator(TransactionSystem([]), "wound-wait", config)
        handlers = sim._registry._handlers
        idle_recoveries: list[float] = []
        crash_times: list[float] = []
        orig_recover = handlers["site_recover"]
        orig_crash = handlers["site_crash"]

        def on_recover(site):
            injected_all_done = (
                sim.result.committed >= sim.result.injected
                and not sim.arrivals.finished
            )
            if injected_all_done:
                idle_recoveries.append(sim._now)
            orig_recover(site)

        def on_crash(site):
            crash_times.append(sim._now)
            orig_crash(site)

        handlers["site_recover"] = on_recover
        handlers["site_crash"] = on_crash
        result = sim.run()
        assert result.committed == result.injected == 12
        # The kill-switch: if an idle-gap recovery ended its site's
        # chain, each of the 3 sites could contribute at most ONE such
        # recovery before fault injection died for the rest of the run.
        # A surviving chain produces them throughout the ~1200-unit
        # span (this seed yields ~80).
        assert len(idle_recoveries) > 3 * len(sim.site_names())
        # And crashes demonstrably continue after early idle gaps.
        assert sum(1 for t in crash_times if t > idle_recoveries[2]) > 10


class TestPartitionInterplay:
    """Partitions (repro.sim.network) and crashes compose: a
    partitioned site is unreachable but *up*, and a crash during a
    partition must still drain cleanly."""

    def _replicated(self):
        import random

        from repro.sim.workload import WorkloadSpec, random_system

        spec = WorkloadSpec(
            n_transactions=25,
            n_entities=10,
            n_sites=4,
            entities_per_txn=(2, 3),
            actions_per_entity=(0, 1),
            hotspot_skew=0.5,
            read_fraction=0.3,
            replication_factor=3,
        )
        return spec, random_system(random.Random(13), spec)

    def test_partitioned_site_is_not_crashed(self):
        """A partition episode alone marks nothing down: no crashes,
        no crash aborts, and every site reads as up throughout."""
        from repro.sim.network import NetworkConfig

        spec, system = self._replicated()
        sim = Simulator(
            system,
            "wound-wait",
            SimulationConfig(
                seed=2,
                workload=spec,
                network_delay=0.5,
                replica_protocol="quorum",
                commit_protocol="paxos-commit",
                network=NetworkConfig(
                    partition_schedule=((5.0, 30.0, ("s0",)),)
                ),
            ),
        )
        # No failure injection: the up-flag path must never engage.
        assert sim.failures is None
        up_during_cut: list[bool] = []
        handlers = sim._registry._handlers
        orig_stop = handlers["net_partition_stop"]

        def on_stop(idx):
            up_during_cut.append(
                all(sim.site_is_up(s) for s in sim.site_names())
            )
            orig_stop(idx)

        handlers["net_partition_stop"] = on_stop
        result = sim.run()
        assert result.partitions == 1
        assert result.crashes == 0
        # Partition-induced aborts are *unavailability* (a documented
        # subset of crash_aborts), never actual-crash kills.
        assert result.crash_aborts == result.unavailable_aborts
        assert up_during_cut == [True]
        assert result.committed == result.total

    def test_crash_during_partition_still_drains(self):
        """Crashes composed with partition episodes: locks drain, every
        transaction commits, and both fault ledgers are populated."""
        from repro.sim.network import NetworkConfig

        spec, system = self._replicated()
        sim = Simulator(
            system,
            "wound-wait",
            SimulationConfig(
                seed=4,
                workload=spec,
                network_delay=0.5,
                replica_protocol="quorum",
                commit_protocol="paxos-commit",
                failure_rate=0.01,
                repair_time=6.0,
                network=NetworkConfig(
                    loss_rate=0.05,
                    partition_schedule=((5.0, 25.0, ("s1",)),),
                ),
            ),
        )
        result = sim.run()
        assert not result.truncated
        assert result.committed == result.total
        assert result.partitions == 1
        for name, site in sim._sites.items():
            assert site.involved() == [], name
        for inst in sim._instances:
            assert inst.retained == set()
            assert inst.waiting == {}
