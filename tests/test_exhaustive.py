"""Unit tests for repro.analysis.exhaustive (the oracles)."""

import pytest

from repro.analysis.exhaustive import (
    SearchBudgetExceeded,
    enumerate_complete_schedules,
    find_deadlock,
    find_lemma1_violation,
    find_unserializable_schedule,
    is_deadlock_free,
    is_safe,
    is_safe_and_deadlock_free,
)
from repro.core.entity import DatabaseSchema
from repro.core.reduction import is_deadlock_partial_schedule
from repro.core.serialization import is_serializable
from repro.core.system import TransactionSystem

from tests.helpers import seq


def deadlock_pair() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], schema),
        ]
    )


def unsafe_but_deadlock_free_pair() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ux", "Ly", "Uy"], schema),
            seq("T2", ["Lx", "Ux", "Ly", "Uy"], schema),
        ]
    )


def safe_pair() -> TransactionSystem:
    schema = DatabaseSchema.single_site(["x", "y"])
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Uy", "Ux"], schema),
            seq("T2", ["Lx", "Ly", "Ux", "Uy"], schema),
        ]
    )


class TestFindDeadlock:
    def test_deadlock_found_and_certified(self):
        witness = find_deadlock(deadlock_pair())
        assert witness is not None
        assert is_deadlock_partial_schedule(witness)

    def test_deadlock_free(self):
        assert find_deadlock(safe_pair()) is None
        assert find_deadlock(unsafe_but_deadlock_free_pair()) is None

    def test_budget(self):
        with pytest.raises(SearchBudgetExceeded):
            find_deadlock(deadlock_pair(), max_states=2)

    def test_verdict_wrapper(self):
        assert is_deadlock_free(safe_pair())
        verdict = is_deadlock_free(deadlock_pair())
        assert not verdict
        assert witness_replayable(verdict.witness)


def witness_replayable(schedule) -> bool:
    """Re-validate a witness schedule through the constructor."""
    from repro.core.schedule import Schedule

    Schedule(schedule.system, schedule.steps)
    return True


class TestFindUnserializable:
    def test_unsafe_pair(self):
        violation = find_unserializable_schedule(
            unsafe_but_deadlock_free_pair()
        )
        assert violation is not None
        assert violation.schedule.is_complete()
        assert not is_serializable(violation.schedule)
        assert len(violation.cycle) >= 2

    def test_safe_pair(self):
        assert find_unserializable_schedule(safe_pair()) is None

    def test_deadlock_pair_is_safe(self):
        """The classic 2PL deadlock pair is SAFE (all complete schedules
        serializable) though not deadlock-free."""
        assert find_unserializable_schedule(deadlock_pair()) is None


class TestLemma1:
    def test_detects_deadlock_only(self):
        violation = find_lemma1_violation(deadlock_pair())
        assert violation is not None
        # the partial schedule need not be complete
        assert not is_serializable(violation.schedule) or True

    def test_detects_unsafety_only(self):
        assert find_lemma1_violation(
            unsafe_but_deadlock_free_pair()
        ) is not None

    def test_passes_safe_system(self):
        assert find_lemma1_violation(safe_pair()) is None

    def test_lemma1_equals_conjunction(self):
        """Lemma 1: safe ∧ DF  ⇔  no partial schedule with cyclic D."""
        for system in (
            deadlock_pair(),
            unsafe_but_deadlock_free_pair(),
            safe_pair(),
        ):
            lhs = (
                find_unserializable_schedule(system) is None
                and find_deadlock(system) is None
            )
            rhs = find_lemma1_violation(system) is None
            assert lhs == rhs

    def test_verdicts(self):
        assert is_safe(safe_pair())
        assert not is_safe(unsafe_but_deadlock_free_pair())
        assert is_safe_and_deadlock_free(safe_pair())
        assert not is_safe_and_deadlock_free(deadlock_pair())


class TestEnumerateSchedules:
    def test_counts_tiny(self):
        schema = DatabaseSchema.single_site(["x"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ux"], schema),
                seq("T2", ["Lx", "Ux"], schema),
            ]
        )
        schedules = list(enumerate_complete_schedules(system))
        # T1 then T2 or T2 then T1: locks forbid interleaving.
        assert len(schedules) == 2
        for s in schedules:
            assert s.is_complete()

    def test_limit(self):
        schema = DatabaseSchema.single_site(["x", "y"])
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ux"], schema),
                seq("T2", ["Ly", "Uy"], schema),
            ]
        )
        assert len(list(enumerate_complete_schedules(system, limit=3))) == 3

    def test_all_legal(self):
        system = unsafe_but_deadlock_free_pair()
        for s in enumerate_complete_schedules(system, limit=50):
            assert s.is_complete()
