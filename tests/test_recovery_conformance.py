"""Recovery conformance: a crash-point harness over the durability
model.

Parametrized over the forcing commit protocols x
``replica_control_names()``. For each cell a fault-free run first
enumerates the forced-write boundaries (every
:meth:`~repro.sim.durability.DurabilityManager.force` call); the
harness then re-runs the same workload, crashing the forcing site at
each sampled boundary twice — once *during* the flush (0.5 x
``flush_time`` after the force was issued, so the record is lost and
the cancel hook must re-arm the protocol) and once *after* it (1.5 x
``flush_time``, so the record is durable and recovery must replay it).
Every crashed run must satisfy the recovery invariants:

* atomicity: every transaction ends committed exactly once, with the
  latency ledgers agreeing — a crash at any force boundary may delay
  but never corrupt the decision;
* recovery replay is exact: each recovery report's re-acquired lock
  set equals the log-implied lock set (no lock resurrected without a
  durable prepare record, none implied by the log left unheld);
* in-doubt resolution terminates: the in-doubt set is empty at drain
  and every opened entry was resolved (by decision, status answer, or
  presumption);
* lock tables drain and ``aborts_by_cause`` partitions ``aborts``.

The boundary count is capped per cell (evenly spread over the force
sequence) to keep the battery fast; the cap is generous enough to
cover prepare, decision, release, accept, and ballot records in every
protocol.
"""

import random

import pytest

from repro.sim.commit import protocol_names
from repro.sim.durability import DurabilityConfig
from repro.sim.replication import replica_control_names
from repro.sim.runtime import _COMMITTED, SimulationConfig, Simulator
from repro.sim.workload import WorkloadSpec, random_system

SPEC = WorkloadSpec(
    n_transactions=8,
    n_entities=8,
    n_sites=3,
    entities_per_txn=(2, 3),
    actions_per_entity=(0, 1),
    hotspot_skew=0.5,
    read_fraction=0.3,
    replication_factor=2,
)

FLUSH = 0.5
#: crash-point boundaries sampled per (cell, offset); spread evenly.
MAX_CRASH_POINTS = 6
#: crash instants relative to the force call, in flush_time units:
#: mid-flush (record lost, cancel hook fires) and post-flush (record
#: durable, recovery must replay it).
OFFSETS = (0.5, 1.5)

FORCING_PROTOCOLS = [p for p in protocol_names() if p != "instant"]


def _config(protocol, replica, seed=2):
    return SimulationConfig(
        seed=seed,
        workload=SPEC,
        commit_protocol=protocol,
        replica_protocol=replica,
        network_delay=0.5,
        commit_timeout=6.0,
        # Registers the injector (and its site_crash handler) without
        # ever firing a spontaneous crash within the run horizon.
        failure_rate=1e-9,
        repair_time=2.0,
        durability=DurabilityConfig(flush_time=FLUSH),
    )


def _simulator(protocol, replica):
    system = random_system(random.Random(13), SPEC)
    return Simulator(system, "wound-wait", _config(protocol, replica))


def _count_forces(protocol, replica):
    """The fault-free run's force count — the crash-point space."""
    sim = _simulator(protocol, replica)
    calls = [0]
    orig = sim.durability.force

    def counting(site, record, cont, cancel=None):
        calls[0] += 1
        orig(site, record, cont, cancel)

    sim.durability.force = counting
    result = sim.run()
    assert result.committed == result.total
    assert calls[0] > 0, "cell never forced a record"
    return calls[0]


def _crash_points(total):
    """Up to MAX_CRASH_POINTS boundaries, spread over [1, total]."""
    if total <= MAX_CRASH_POINTS:
        return list(range(1, total + 1))
    step = total / MAX_CRASH_POINTS
    points = {round((i + 1) * step) for i in range(MAX_CRASH_POINTS)}
    return sorted(max(1, min(total, p)) for p in points)


def _crash_run(protocol, replica, target, offset):
    """One run, crashing the forcing site at force boundary ``target``."""
    sim = _simulator(protocol, replica)
    dur = sim.durability
    orig = dur.force
    fired = [0]

    def crashing(site, record, cont, cancel=None):
        fired[0] += 1
        if fired[0] == target:
            sim.schedule(offset * FLUSH, ("site_crash", site))
        orig(site, record, cont, cancel)

    dur.force = crashing
    result = sim.run()
    assert fired[0] >= target, (protocol, replica, target, offset)
    return sim, result


def crashed_runs(protocol, replica):
    """Yield (sim, result) for every sampled crash point x offset."""
    total = _count_forces(protocol, replica)
    for target in _crash_points(total):
        for offset in OFFSETS:
            yield _crash_run(protocol, replica, target, offset)


@pytest.mark.parametrize("replica", replica_control_names())
@pytest.mark.parametrize("protocol", FORCING_PROTOCOLS)
class TestRecoveryConformance:
    def test_crash_points_hold_invariants(self, protocol, replica):
        saw_recovery = False
        for sim, result in crashed_runs(protocol, replica):
            tag = (protocol, replica, result.crashes)
            assert not result.truncated, tag
            assert not result.deadlocked, tag
            # The final boundary's post-flush crash can land after the
            # run already drained (the last release completed): that
            # is a finished run, not a missed crash.
            assert result.crashes <= 1, tag
            if result.crashes == 0:
                assert sim.durability.recovery_reports == []

            # Atomicity: everything committed exactly once, ledgers
            # agree with the instance states.
            statuses = [inst.status for inst in sim._instances]
            assert all(status is _COMMITTED for status in statuses), tag
            assert result.committed == result.total == len(statuses)
            assert len(result.latencies) == result.committed
            assert len(result.commit_latencies) == result.committed

            # Locks drain: no retained entries, no queued waiters, no
            # re-acquired recovery locks left behind.
            for inst in sim._instances:
                assert inst.retained == set(), tag
                assert inst.waiting == {}, tag
            for name, site in sim._sites.items():
                assert site.involved() == [], tag + (name,)

            # Recovery replay is exact: re-acquired == log-implied.
            dur = sim.durability
            for report in dur.recovery_reports:
                assert report["reacquired"] == report["implied"], (
                    tag, report
                )
                saw_recovery = saw_recovery or report["in_doubt"] > 0

            # In-doubt resolution terminated.
            assert dur.in_doubt() == set(), tag
            assert result.in_doubt_resolved >= 0

            # Abort attribution partitions exactly.
            assert sum(result.aborts_by_cause.values()) == result.aborts

            # The harness exercised the log.
            assert result.log_forces > 0, tag
        # Across the sampled boundaries at least one crash landed on a
        # durable-but-undecided prepare: the in-doubt path ran.
        assert saw_recovery, (protocol, replica)


class TestInstantCommitUnderDurability:
    """Instant commit never forces: attach-but-idle must stay safe."""

    def test_no_forces_and_everything_commits(self):
        sim = _simulator("instant", "rowa")
        result = sim.run()
        assert result.committed == result.total
        assert result.log_forces == 0
        assert result.log_replays == 0
        assert sim.durability.in_doubt() == set()
