"""Tests for the atomic-commit subsystem (repro.sim.commit)."""

import pytest

from repro.cli import main
from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.sim.commit import (
    CommitProtocol,
    InstantCommit,
    PaxosCommit,
    PresumedAbortCommit,
    TwoPhaseCommit,
    make_protocol,
    protocol_names,
)
from repro.sim.runtime import (
    _ABORTED,
    _PREPARED,
    _RUNNING,
    SimulationConfig,
    Simulator,
    simulate,
)

from tests.helpers import seq

TWO_SITE_SCHEMA = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})


def deadlock_pair() -> TransactionSystem:
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ly", "Ux", "Uy"], TWO_SITE_SCHEMA),
            seq("T2", ["Ly", "Lx", "Uy", "Ux"], TWO_SITE_SCHEMA),
        ]
    )


def shared_x_pair() -> TransactionSystem:
    schema = DatabaseSchema.from_groups({"s1": ["x"]})
    return TransactionSystem(
        [
            seq("T1", ["Lx", "Ux"], schema),
            seq("T2", ["Lx", "Ux"], schema),
        ]
    )


class TestRegistry:
    def test_names(self):
        assert protocol_names() == [
            "instant", "paxos-commit", "presumed-abort", "two-phase"
        ]

    def test_make_protocol(self):
        assert isinstance(make_protocol("instant"), InstantCommit)
        assert isinstance(make_protocol("two-phase"), TwoPhaseCommit)
        assert isinstance(
            make_protocol("presumed-abort"), PresumedAbortCommit
        )
        assert isinstance(make_protocol("paxos-commit"), PaxosCommit)

    def test_unknown_protocol(self):
        with pytest.raises(KeyError, match="unknown commit protocol"):
            make_protocol("three-phase")

    def test_unknown_protocol_in_config(self):
        config = SimulationConfig(commit_protocol="nope")
        with pytest.raises(KeyError):
            Simulator(deadlock_pair(), "blocking", config)

    def test_base_protocol_is_abstract(self):
        proto = CommitProtocol()
        with pytest.raises(NotImplementedError):
            proto.on_execution_complete(None)


class TestInstant:
    def test_instant_has_no_commit_phase(self):
        result = simulate(
            deadlock_pair(),
            "wound-wait",
            SimulationConfig(seed=1, commit_protocol="instant"),
        )
        assert result.committed == 2
        assert result.commit_messages == 0
        assert result.prepared_block_time == 0.0
        assert all(lat == 0.0 for lat in result.commit_latencies)
        assert result.latencies == [
            e + c
            for e, c in zip(
                result.exec_latencies, result.commit_latencies
            )
        ]


class TestTwoPhase:
    def test_commits_with_exact_message_count(self):
        # Each transaction spans both sites: one completed round costs
        # PREPARE + VOTE + COMMIT + ACK per participant = 8 messages.
        result = simulate(
            deadlock_pair(),
            "wound-wait",
            SimulationConfig(
                seed=1, commit_protocol="two-phase", network_delay=0.25
            ),
        )
        assert result.committed == 2
        assert result.serializable is True
        assert result.commit_messages == 16

    def test_commit_latency_is_one_round_trip(self):
        delay = 0.25
        result = simulate(
            deadlock_pair(),
            "wound-wait",
            SimulationConfig(
                seed=1, commit_protocol="two-phase", network_delay=delay
            ),
        )
        # Decision lands when the remote participant's vote arrives.
        assert result.commit_latencies == [2 * delay, 2 * delay]
        for total, exec_, commit in zip(
            result.latencies,
            result.exec_latencies,
            result.commit_latencies,
        ):
            assert total == pytest.approx(exec_ + commit)

    @pytest.mark.parametrize(
        "policy", ["blocking", "wound-wait", "wait-die", "timeout",
                   "detect"]
    )
    @pytest.mark.parametrize("protocol", ["two-phase", "presumed-abort"])
    def test_all_policies_commit_and_serialize(self, policy, protocol):
        for s in range(6):
            result = simulate(
                deadlock_pair(),
                policy,
                SimulationConfig(
                    seed=s, commit_protocol=protocol, network_delay=0.5
                ),
            )
            if policy == "blocking" and result.deadlocked:
                continue  # the paper's regime: blocking may wedge
            assert result.committed == 2, f"{policy} seed {s}"
            assert result.serializable is True

    def test_locks_drain_at_end(self):
        sim = Simulator(
            deadlock_pair(),
            "wound-wait",
            SimulationConfig(
                seed=3, commit_protocol="two-phase", network_delay=0.5
            ),
        )
        result = sim.run()
        assert result.committed == 2
        for site in sim._sites.values():
            assert site.involved() == []

    def test_retained_locks_block_later_requests(self):
        """Under 2PC a conflicting request waits out the PREPARED
        window of the holder even though the Unlock already executed:
        T2's Lx is blocked for T1's commit round trip to site s2."""
        schema = DatabaseSchema.from_groups({"s1": ["x"], "s2": ["y"]})
        system = TransactionSystem(
            [
                seq("T1", ["Lx", "Ly", "Ux", "Uy"], schema),
                seq("T2", ["Lx", "Ux"], schema),
            ]
        )
        blocked = 0.0
        for s in range(10):
            result = simulate(
                system,
                "blocking",
                SimulationConfig(
                    seed=s, commit_protocol="two-phase",
                    network_delay=1.0,
                ),
            )
            assert result.committed == 2
            assert not result.deadlocked
            blocked += result.prepared_block_time
        assert blocked > 0.0


class TestPreparedWindow:
    def _prepared_simulator(self) -> Simulator:
        sim = Simulator(
            shared_x_pair(),
            "wound-wait",
            SimulationConfig(
                commit_protocol="two-phase", network_delay=1.0
            ),
        )
        holder = sim.instance(1)
        holder.timestamp = 5.0  # younger than the requester below
        x, s1 = sim.entity_id("x"), sim.site_id("s1")
        site = sim._site_for_entity("x")
        site.request(1, x)
        sim.mark_prepared(holder)
        holder.lock_sites[x] = (s1,)
        holder.retained.add((x, s1))
        sim._retained_total += 1
        return sim

    def test_wound_wait_does_not_wound_prepared_holder(self):
        sim = self._prepared_simulator()
        requester = sim.instance(0)
        requester.timestamp = 1.0  # older: would normally wound
        sim._request_lock(requester, sim.system[0].lock_node("x"))
        assert sim.instance(1).status == _PREPARED
        assert sim.result.wounds == 0
        assert sim.result.prepared_blocks == 1
        assert [key[0] for key in requester.waiting] == [sim.entity_id("x")]

    def test_no_wound_on_committed_holder_awaiting_release(self):
        """After the commit decision the holder is _COMMITTED but its
        cm_release may still be in flight: it is just as unwoundable
        as a prepared holder, and the conflict counts as a prepared
        block, not a wound."""
        sim = self._prepared_simulator()
        holder = sim.instance(1)
        sim.finish_commit(holder)  # decision taken, release in flight
        assert {e for e, _s in holder.retained} == {sim.entity_id("x")}
        requester = sim.instance(0)
        requester.timestamp = 1.0  # older: would normally wound
        sim._request_lock(requester, sim.system[0].lock_node("x"))
        assert sim.result.wounds == 0
        assert sim.result.prepared_blocks == 1
        assert [key[0] for key in requester.waiting] == [sim.entity_id("x")]

    def test_release_retained_charges_blocked_time(self):
        sim = self._prepared_simulator()
        requester = sim.instance(0)
        requester.timestamp = 1.0
        sim._request_lock(requester, sim.system[0].lock_node("x"))
        holder = sim.instance(1)
        sim._now = 7.5  # decision arrives later
        sim.finish_commit(holder)
        sim.release_retained(holder)
        assert sim._site_for_entity("x").holder(sim.entity_id("x")) == 0
        assert not holder.retained
        assert sim.result.prepared_block_time == pytest.approx(7.5)

    def test_abort_from_commit_restarts_transaction(self):
        sim = self._prepared_simulator()
        holder = sim.instance(1)
        sim.abort_from_commit(holder)
        assert holder.status == _ABORTED
        assert holder.retained == set()
        assert sim._site_for_entity("x").holder(sim.entity_id("x")) is None
        assert sim.result.commit_aborts == 1
        assert sim.result.aborts == 1

    def test_abort_from_commit_ignores_unprepared(self):
        sim = self._prepared_simulator()
        runner = sim.instance(0)
        assert runner.status == _RUNNING
        sim.abort_from_commit(runner)
        assert runner.status == _RUNNING
        assert sim.result.commit_aborts == 0


class TestAckAccounting:
    def test_ack_counted_at_delivery_not_at_decision(self):
        """The regression: ``_decide_commit`` used to charge every
        participant's ACK the instant the decision was taken, crediting
        acknowledgements from a participant that was *down* and had not
        even received the decision. The ACK now lands when the
        participant actually processes ``cm_release``."""
        from repro.sim.commit.twophase import _Round

        sim = Simulator(
            deadlock_pair(),
            "wound-wait",
            SimulationConfig(
                commit_protocol="two-phase", network_delay=0.5
            ),
        )
        # Make site_is_up() consult the per-site flags (no injector).
        sim.failures = object()
        proto = sim.commit
        round = _Round(0, "s1", frozenset({"s1", "s2"}))
        round.votes = {"s1", "s2"}
        proto._rounds[0] = round
        inst = sim.instance(0)
        sim.mark_prepared(inst)
        sim._mark_site("s2", False)  # participant down at decision time

        proto._decide_commit(0, round)
        # Exactly the two RELEASE sends — no ACK from anyone yet, and
        # in particular none from the crashed s2.
        assert sim.result.commit_messages == 2

        proto._on_release(0, "s1", 0)
        assert sim.result.commit_messages == 3  # s1's ACK

        proto._on_release(0, "s2", 0)
        # s2 is down: the decision is retransmitted (one message), but
        # still no ACK — the participant never saw it.
        assert sim.result.commit_messages == 4

        sim._mark_site("s2", True)
        proto._on_release(0, "s2", 0)
        assert sim.result.commit_messages == 5  # s2's ACK, at delivery


class TestPresumedAbort:
    def test_presumed_abort_is_a_two_phase_variant(self):
        proto = make_protocol("presumed-abort")
        assert isinstance(proto, TwoPhaseCommit)
        assert proto.notify_on_abort is False
        assert proto.retains_locks is True

    def test_same_decisions_fewer_messages_under_failures(self):
        """PA makes identical decisions at identical times but skips
        the abort round, so it never sends more messages than 2PC."""
        base = dict(network_delay=0.5, failure_rate=0.02,
                    repair_time=8.0)
        tp_msgs = pa_msgs = commit_aborts = 0
        for s in range(8):
            tp = simulate(
                deadlock_pair(), "wound-wait",
                SimulationConfig(
                    seed=s, commit_protocol="two-phase", **base
                ),
            )
            pa = simulate(
                deadlock_pair(), "wound-wait",
                SimulationConfig(
                    seed=s, commit_protocol="presumed-abort", **base
                ),
            )
            assert pa.committed == tp.committed
            assert pa.latencies == tp.latencies
            tp_msgs += tp.commit_messages
            pa_msgs += pa.commit_messages
            commit_aborts += tp.commit_aborts
        assert pa_msgs <= tp_msgs
        if commit_aborts:
            assert pa_msgs < tp_msgs


class TestCommitCli:
    def test_simulate_with_commit_flags(self, tmp_path, capsys):
        path = tmp_path / "pair.txn"
        path.write_text(
            "schema s1: x\nschema s2: y\n\n"
            "txn T1\n  seq Lx Ly Ux Uy\nend\n\n"
            "txn T2\n  seq Ly Lx Uy Ux\nend\n"
        )
        code = main(
            [
                "simulate", str(path),
                "--policies", "wound-wait",
                "--commit", "instant", "two-phase", "presumed-abort",
                "--network-delay", "0.5",
                "--failure-rate", "0.01",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "two-phase" in out
        assert "presumed-abort" in out
        assert "c-latency" in out
