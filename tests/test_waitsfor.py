"""The incrementally maintained waits-for graph.

Unit tests pin the observer protocol's edge accounting (reference
counts across multi-cell waits, grant hand-offs, cancellations), and
the hypothesis invariant asserts the fast-path contract end to end:
after *every* dispatched event of a real simulation, the maintained
graph equals a from-scratch rebuild over the live instances — for
closed and open runs, with commit protocols, failures, replication,
and shared read locks in the mix.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import TransactionSystem
from repro.sim.runtime import SimulationConfig, Simulator
from repro.sim.waitsfor import WaitsForGraph
from repro.sim.workload import WorkloadSpec, random_system

seeds = st.integers(min_value=0, max_value=5_000)
# The graph is maintained exactly for the policies that consume it:
# the periodic detector and the blocking policy's final verdict.
graph_policies = st.sampled_from(["blocking", "detect"])


class TestWaitsForGraph:
    def test_empty(self):
        wf = WaitsForGraph()
        assert not wf
        assert wf.cycle() is None
        assert wf.as_sets() == {}
        assert wf.waiters() == []

    def test_wait_then_hold_order(self):
        wf = WaitsForGraph()
        wf.hold(0, 10)
        wf.wait(0, 11)
        assert wf.as_sets() == {11: {10}}
        # Hand-off: holder leaves, waiter becomes holder.
        wf.unhold(0, 10)
        wf.unwait(0, 11)
        wf.hold(0, 11)
        assert wf.as_sets() == {}

    def test_new_holder_gains_edges_from_waiters(self):
        wf = WaitsForGraph()
        wf.hold(0, 1)
        wf.wait(0, 2)
        wf.wait(0, 3)
        wf.unhold(0, 1)
        wf.unwait(0, 2)
        wf.hold(0, 2)  # 3 now waits for 2
        assert wf.as_sets() == {3: {2}}

    def test_refcounts_across_cells(self):
        wf = WaitsForGraph()
        # txn 5 holds two entities; txn 6 waits for both.
        wf.hold(0, 5)
        wf.hold(1, 5)
        wf.wait(0, 6)
        wf.wait(1, 6)
        assert wf.as_sets() == {6: {5}}
        wf.unwait(0, 6)
        # Still one edge left through the second cell.
        assert wf.as_sets() == {6: {5}}
        wf.unwait(1, 6)
        assert wf.as_sets() == {}

    def test_cycle_detection_and_order(self):
        wf = WaitsForGraph()
        wf.hold(0, 1)
        wf.wait(0, 2)
        wf.hold(1, 2)
        wf.wait(1, 1)
        cycle = wf.cycle()
        assert cycle is not None
        assert sorted(cycle) == [1, 2]
        wf.unwait(1, 1)
        assert wf.cycle() is None

    def test_site_observer_keys_do_not_collide(self):
        wf = WaitsForGraph()
        a = wf.observer(0, 2)  # site 0 of 2
        b = wf.observer(1, 2)  # site 1 of 2
        a.hold(0, 1)
        b.hold(0, 2)  # same entity id, different site
        a.wait(0, 3)
        assert wf.as_sets() == {3: {1}}
        b.wait(0, 3)
        assert wf.as_sets() == {3: {1, 2}}


def _checked_run(system, policy, config):
    """Run a simulation asserting incremental == rebuild per event."""
    sim = Simulator(system, policy, config)
    assert sim._waits_for is not None
    dispatch = sim._registry.dispatch

    failures = []

    def checking_dispatch(payload):
        dispatch(payload)
        incremental = sim._waits_for.as_sets()
        rebuilt = sim._wait_for_edges()
        if incremental != rebuilt and len(failures) < 3:
            failures.append((payload, incremental, rebuilt))

    # The registry instance is per-simulator; shadowing dispatch on it
    # hooks every event the run processes.
    sim._registry.dispatch = checking_dispatch
    result = sim.run()
    assert failures == [], failures[:1]
    assert sim._waits_for.as_sets() == sim._wait_for_edges()
    return sim, result


class TestIncrementalEqualsRebuild:
    @given(seed=seeds, policy=graph_policies)
    @settings(max_examples=30, deadline=None)
    def test_closed_batch(self, seed, policy):
        spec = WorkloadSpec(
            n_transactions=5, n_entities=4, n_sites=2,
            entities_per_txn=(2, 3), hotspot_skew=1.0,
        )
        system = random_system(random.Random(seed), spec)
        _checked_run(
            system, policy,
            SimulationConfig(seed=seed, max_time=400.0),
        )

    @given(seed=seeds, policy=graph_policies)
    @settings(max_examples=15, deadline=None)
    def test_open_system_with_failures_and_reads(self, seed, policy):
        spec = WorkloadSpec(
            n_entities=6, n_sites=3, entities_per_txn=(2, 3),
            hotspot_skew=1.0, read_fraction=0.4, replication_factor=2,
        )
        _checked_run(
            TransactionSystem([]), policy,
            SimulationConfig(
                seed=seed, arrival_rate=0.5, max_transactions=25,
                workload=spec, commit_protocol="two-phase",
                failure_rate=0.02, repair_time=6.0, max_time=400.0,
                replica_protocol="rowa-available",
            ),
        )

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_blocking_deadlock_verdict_uses_graph(self, seed):
        spec = WorkloadSpec(
            n_transactions=4, n_entities=3, n_sites=2,
            entities_per_txn=(2, 3), hotspot_skew=1.5,
        )
        system = random_system(random.Random(seed), spec)
        sim, result = _checked_run(
            system, "blocking", SimulationConfig(seed=seed)
        )
        if result.deadlocked:
            # The recorded cycle is a real cycle of the final graph.
            cycle = list(result.deadlock_cycle)
            edges = sim._wait_for_edges()
            for u, v in zip(cycle, cycle[1:] + cycle[:1]):
                assert v in edges[u]
