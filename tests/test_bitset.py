"""Unit tests for repro.util.bitset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit,
    bits_of,
    first_bit,
    from_indices,
    is_subset,
    popcount,
)


class TestBit:
    def test_bit_zero(self):
        assert bit(0) == 1

    def test_bit_positions(self):
        assert bit(3) == 8
        assert bit(10) == 1024

    def test_bits_disjoint(self):
        assert bit(2) & bit(5) == 0


class TestFromIndices:
    def test_empty(self):
        assert from_indices([]) == 0

    def test_roundtrip_small(self):
        assert from_indices([0, 2, 3]) == 0b1101

    def test_duplicates_ignored(self):
        assert from_indices([1, 1, 1]) == 2


class TestBitsOf:
    def test_empty(self):
        assert list(bits_of(0)) == []

    def test_increasing_order(self):
        assert list(bits_of(0b101101)) == [0, 2, 3, 5]

    def test_single(self):
        assert list(bits_of(1 << 40)) == [40]


class TestPopcountFirstBit:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_first_bit(self):
        assert first_bit(0b1000) == 3
        assert first_bit(1) == 0

    def test_first_bit_empty_raises(self):
        with pytest.raises(ValueError):
            first_bit(0)


class TestIsSubset:
    def test_empty_subset_of_everything(self):
        assert is_subset(0, 0)
        assert is_subset(0, 0b111)

    def test_proper_subset(self):
        assert is_subset(0b101, 0b111)
        assert not is_subset(0b1000, 0b111)


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_roundtrip_property(indices):
    mask = from_indices(indices)
    assert set(bits_of(mask)) == indices
    assert popcount(mask) == len(indices)


@given(
    st.sets(st.integers(min_value=0, max_value=100)),
    st.sets(st.integers(min_value=0, max_value=100)),
)
def test_subset_matches_set_semantics(a, b):
    assert is_subset(from_indices(a), from_indices(b)) == a.issubset(b)
