"""The Theorem 2 construction: 3SAT′ → deadlock of two transactions.

Given a 3SAT′ formula with clauses c_1..c_r and variables x_1..x_n, two
distributed transactions T1, T2 are built over the entities

    c_i, c'_i          for each clause i, and
    x_j, x'_j, x''_j   for each variable j,

each at its own site, such that **the formula is satisfiable iff
{T1, T2} has a deadlock prefix** (equivalently, by Theorem 1, iff the
pair can deadlock). Since the node count is linear in the formula size,
this establishes coNP-hardness of deadlock-freedom for two distributed
transactions.

Arc families (recovered arc-by-arc from the proof text; throughout,
``c_{r+1} = c_1``):

Common to T1 and T2:
    Ld -> Ud            for every entity d,
    Lc'_i -> Uc_i       for every clause i.

For each variable x_j — let h, k be the clauses of its two positive
occurrences and l the clause of its negative occurrence:

    T1:  Lc_h -> Ux_j,   Lc_k -> Ux'_j,
         Lx_j -> Ux''_j,
         Lx'_j -> Uc_{l+1},   Lx'_j -> Uc'_{l+1}.

    T2:  Lc_l -> Ux_j,
         Lx''_j -> Ux'_j,
         Lx_j -> Uc_{h+1},  Lx_j -> Uc'_{h+1},
         Lx'_j -> Uc_{k+1}, Lx'_j -> Uc'_{k+1}.

Every arc runs from a Lock to an Unlock, so both transactions are
trivially acyclic, and with one entity per site the per-site total-order
requirement is the Ld -> Ud chain.

Certificates run in both directions:

* :func:`assignment_to_prefix` maps a satisfying assignment to the
  deadlock prefix N = ∪ Z_i of the proof, and :func:`expected_cycle`
  produces the explicit reduction-graph cycle, component by component;
* :func:`decode_assignment` maps any cycle of any deadlock prefix's
  reduction graph back to a satisfying truth assignment (the converse
  direction of the proof: U¹x_j or U¹x'_j on the cycle ⇒ x_j true,
  U²x_j on the cycle ⇒ x_j false).
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence

from repro.core.entity import DatabaseSchema
from repro.core.operations import OpKind
from repro.core.prefix import SystemPrefix
from repro.core.system import GlobalNode, TransactionSystem
from repro.core.transaction import Transaction, TransactionBuilder
from repro.reductions.cnf import CnfFormula, Literal
from repro.util.graphs import Digraph

__all__ = [
    "assignment_to_prefix",
    "decode_assignment",
    "encode_formula",
    "expected_cycle",
    "verify_cycle",
]

_RESERVED = re.compile(r"^c\d+'?$")


def _validate_names(formula: CnfFormula) -> None:
    for variable in formula.variables:
        if "'" in variable or _RESERVED.match(variable):
            raise ValueError(
                f"variable name {variable!r} collides with the encoder's "
                "entity naming (c<i>, primes); rename it"
            )


def _clause_entity(i: int) -> str:
    return f"c{i}"


def _clause_prime_entity(i: int) -> str:
    return f"c{i}'"


def encode_formula(formula: CnfFormula) -> TransactionSystem:
    """Build the pair {T1, T2} of Theorem 2 for a 3SAT′ formula.

    Raises:
        NotThreeSatPrimeError: if the formula is not 3SAT′.
        ValueError: if a variable name collides with generated entities.
    """
    _validate_names(formula)
    table = formula.occurrence_table()
    r = formula.clause_count

    entities: list[str] = []
    for i in range(1, r + 1):
        entities.append(_clause_entity(i))
        entities.append(_clause_prime_entity(i))
    for variable in formula.variables:
        entities.extend([variable, f"{variable}'", f"{variable}''"])
    schema = DatabaseSchema.site_per_entity(entities)

    def nxt(i: int) -> int:
        return i % r + 1

    def build(name: str, second: bool) -> Transaction:
        b = TransactionBuilder(name, schema)
        lock: dict[str, int] = {}
        unlock: dict[str, int] = {}
        for entity in entities:
            lock[entity] = b.lock(entity)
            unlock[entity] = b.unlock(entity)
            b.arc(lock[entity], unlock[entity])
        for i in range(1, r + 1):
            b.arc(lock[_clause_prime_entity(i)], unlock[_clause_entity(i)])
        for variable, occ in table.items():
            x, xp, xpp = variable, f"{variable}'", f"{variable}''"
            h, k, l = occ.first_positive, occ.second_positive, occ.negative
            if not second:  # T1
                b.arc(lock[_clause_entity(h)], unlock[x])
                b.arc(lock[_clause_entity(k)], unlock[xp])
                b.arc(lock[x], unlock[xpp])
                b.arc(lock[xp], unlock[_clause_entity(nxt(l))])
                b.arc(lock[xp], unlock[_clause_prime_entity(nxt(l))])
            else:  # T2
                b.arc(lock[_clause_entity(l)], unlock[x])
                b.arc(lock[xpp], unlock[xp])
                b.arc(lock[x], unlock[_clause_entity(nxt(h))])
                b.arc(lock[x], unlock[_clause_prime_entity(nxt(h))])
                b.arc(lock[xp], unlock[_clause_entity(nxt(k))])
                b.arc(lock[xp], unlock[_clause_prime_entity(nxt(k))])
        return b.build()

    return TransactionSystem(
        [build("T1", second=False), build("T2", second=True)]
    )


# ----------------------------------------------------------------------
# satisfiable  ==>  deadlock prefix (+ explicit cycle)
# ----------------------------------------------------------------------

def assignment_to_prefix(
    formula: CnfFormula,
    system: TransactionSystem,
    assignment: Mapping[str, bool],
) -> SystemPrefix:
    """The deadlock prefix N = ∪ Z_i of the proof of Theorem 2.

    For each clause i, a satisfying literal z_i is chosen; then

    * z_i = x_j (positive):  Z_i = {L¹x_j, L¹x'_j, L²c_i, L¹c'_i};
    * z_i = ¬x_j (negative): Z_i = {L²x_j, L²x'_j, L¹x''_j, L¹c_i,
      L²c'_i}.

    All members are Lock nodes (minimal in both transactions), the two
    transactions hold disjoint entity sets (the chosen literals are
    consistent), so any interleaving of N is a legal partial schedule.

    Raises:
        ValueError: if the assignment does not satisfy the formula.
    """
    chosen = formula.satisfying_literals(assignment)
    t1, t2 = system[0], system[1]
    masks = [0, 0]

    def add(txn: int, entity: str) -> None:
        t = system[txn]
        masks[txn] |= 1 << t.lock_node(entity)

    for i, lit in enumerate(chosen, start=1):
        x, xp, xpp = lit.variable, f"{lit.variable}'", f"{lit.variable}''"
        if lit.positive:
            add(0, x)
            add(0, xp)
            add(1, _clause_entity(i))
            add(0, _clause_prime_entity(i))
        else:
            add(1, x)
            add(1, xp)
            add(0, xpp)
            add(0, _clause_entity(i))
            add(1, _clause_prime_entity(i))
    return SystemPrefix(system, masks)


def expected_cycle(
    formula: CnfFormula,
    system: TransactionSystem,
    assignment: Mapping[str, bool],
) -> list[GlobalNode]:
    """The explicit reduction-graph cycle, concatenating one component
    per clause exactly as in the proof of Theorem 2.

    Component for z_i (writing y_j for x_j on the first positive
    occurrence and x'_j on the second):

    * z_i positive, z_{i+1} positive:
      L¹c_i, U¹y_j, L²y_j, U²c_{i+1}
    * z_i positive, z_{i+1} negative:
      L¹c_i, U¹y_j, L²y_j, U²c'_{i+1}, L¹c'_{i+1}, U¹c_{i+1}
    * z_i negative, z_{i+1} positive:
      L²c_i, U²x_j, L¹x_j, U¹x''_j, L²x''_j, U²x'_j, L¹x'_j,
      U¹c'_{i+1}, L²c'_{i+1}, U²c_{i+1}
    * z_i negative, z_{i+1} negative:
      L²c_i, U²x_j, L¹x_j, U¹x''_j, L²x''_j, U²x'_j, L¹x'_j, U¹c_{i+1}
    """
    chosen = formula.satisfying_literals(assignment)
    table = formula.occurrence_table()
    r = formula.clause_count

    def gnode(txn: int, kind: OpKind, entity: str) -> GlobalNode:
        t = system[txn]
        node = (
            t.lock_node(entity)
            if kind is OpKind.LOCK
            else t.unlock_node(entity)
        )
        return GlobalNode(txn, node)

    L, U = OpKind.LOCK, OpKind.UNLOCK
    cycle: list[GlobalNode] = []
    for index, lit in enumerate(chosen):
        i = index + 1
        i_next = i % r + 1
        next_lit = chosen[(index + 1) % r]
        x = lit.variable
        xp, xpp = f"{x}'", f"{x}''"
        ci, ci1 = _clause_entity(i), _clause_entity(i_next)
        cpi1 = _clause_prime_entity(i_next)
        if lit.positive:
            occ = table[x]
            y = x if occ.first_positive == i else xp
            cycle += [gnode(0, L, ci), gnode(0, U, y), gnode(1, L, y)]
            if next_lit.positive:
                cycle += [gnode(1, U, ci1)]
            else:
                cycle += [
                    gnode(1, U, cpi1),
                    gnode(0, L, cpi1),
                    gnode(0, U, ci1),
                ]
        else:
            cycle += [
                gnode(1, L, ci),
                gnode(1, U, x),
                gnode(0, L, x),
                gnode(0, U, xpp),
                gnode(1, L, xpp),
                gnode(1, U, xp),
                gnode(0, L, xp),
            ]
            if next_lit.positive:
                cycle += [
                    gnode(0, U, cpi1),
                    gnode(1, L, cpi1),
                    gnode(1, U, ci1),
                ]
            else:
                cycle += [gnode(0, U, ci1)]
    return cycle


def verify_cycle(graph: Digraph, cycle: Sequence[GlobalNode]) -> bool:
    """Check that consecutive cycle members (cyclically) are arcs of the
    graph."""
    if not cycle:
        return False
    for a, b in zip(cycle, tuple(cycle[1:]) + (cycle[0],)):
        if not graph.has_arc(a, b):
            return False
    return True


# ----------------------------------------------------------------------
# deadlock prefix  ==>  satisfying assignment
# ----------------------------------------------------------------------

def decode_assignment(
    formula: CnfFormula,
    system: TransactionSystem,
    cycle: Sequence[GlobalNode],
) -> dict[str, bool]:
    """Extract a satisfying assignment from a reduction-graph cycle.

    The converse direction of the proof: on any cycle M of R(A'),

    * ``U¹x_j`` or ``U¹x'_j`` in M forces x_j **true**;
    * ``U²x_j`` in M forces x_j **false**;
    * untouched variables are set true arbitrarily.

    Raises:
        ValueError: if the cycle forces a variable both ways (cannot
            happen for a genuine reduction-graph cycle of an encoded
            pair — the proof rules it out).
    """
    variables = set(formula.variables)
    assignment: dict[str, bool] = {}

    def force(variable: str, value: bool) -> None:
        if assignment.get(variable, value) != value:
            raise ValueError(
                f"cycle forces {variable!r} both true and false; "
                "not a reduction-graph cycle of an encoded pair"
            )
        assignment[variable] = value

    for gnode in cycle:
        t = system[gnode.txn]
        op = t.ops[gnode.node]
        if op.kind is not OpKind.UNLOCK:
            continue
        entity = op.entity
        base = entity.rstrip("'")
        primes = len(entity) - len(base)
        if base not in variables or primes > 1:
            continue
        if gnode.txn == 0:
            force(base, True)  # U1x_j or U1x'_j
        elif primes == 0:
            force(base, False)  # U2x_j
    for variable in variables:
        assignment.setdefault(variable, True)
    return assignment
