"""The Theorem 2 machinery: 3SAT′ formulas, solvers, and the encoding
of satisfiability into deadlock of two distributed transactions."""

from repro.reductions.cnf import (
    CnfFormula,
    Literal,
    NotThreeSatPrimeError,
    random_three_sat_prime,
)
from repro.reductions.encoding import (
    assignment_to_prefix,
    decode_assignment,
    encode_formula,
    expected_cycle,
    verify_cycle,
)
from repro.reductions.solvers import (
    brute_force_satisfiable,
    count_models,
    dpll_solve,
)

__all__ = [
    "CnfFormula",
    "Literal",
    "NotThreeSatPrimeError",
    "assignment_to_prefix",
    "brute_force_satisfiable",
    "count_models",
    "decode_assignment",
    "dpll_solve",
    "encode_formula",
    "expected_cycle",
    "random_three_sat_prime",
    "verify_cycle",
]
