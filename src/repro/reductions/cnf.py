"""CNF formulas and the 3SAT′ fragment used by Theorem 2.

3SAT′ (the paper's notation, NP-complete per [GJ; J]): a CNF formula in
which every clause has at most three literals and every variable occurs
**exactly twice positively and once negatively** across the whole
formula. The Theorem 2 construction consumes exactly this fragment: the
two positive occurrence clauses (h, k) and the negative occurrence
clause (l) of each variable index the arcs of the built transactions.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

__all__ = [
    "CnfFormula",
    "Literal",
    "NotThreeSatPrimeError",
    "Occurrences",
    "random_three_sat_prime",
]


class NotThreeSatPrimeError(ValueError):
    """The formula violates the 3SAT′ occurrence discipline."""


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly negated propositional variable."""

    variable: str
    positive: bool = True

    def negated(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def value_under(self, assignment: Mapping[str, bool]) -> bool:
        value = assignment[self.variable]
        return value if self.positive else not value

    @classmethod
    def parse(cls, text: str) -> "Literal":
        """Parse ``"x"`` / ``"~x"`` / ``"!x"`` / ``"-x"`` forms."""
        text = text.strip()
        if text[:1] in ("~", "!", "-"):
            name = text[1:].strip()
            positive = False
        else:
            name = text
            positive = True
        if not name:
            raise ValueError(f"cannot parse literal {text!r}")
        return cls(name, positive)

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


@dataclass(frozen=True, slots=True)
class Occurrences:
    """Where one variable occurs: 1-based clause indices.

    Attributes:
        first_positive: clause of the first positive occurrence (h).
        second_positive: clause of the second positive occurrence (k).
        negative: clause of the negative occurrence (l).
    """

    first_positive: int
    second_positive: int
    negative: int


class CnfFormula:
    """An immutable CNF formula (conjunction of literal disjunctions)."""

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[Sequence[Literal]]):
        self.clauses: tuple[tuple[Literal, ...], ...] = tuple(
            tuple(clause) for clause in clauses
        )
        for index, clause in enumerate(self.clauses, start=1):
            if not clause:
                raise ValueError(f"clause {index} is empty")
            variables = [lit.variable for lit in clause]
            if len(set(variables)) != len(variables):
                raise ValueError(
                    f"clause {index} mentions a variable twice: {variables}"
                )

    @classmethod
    def from_lists(cls, clauses: Iterable[Iterable[str]]) -> "CnfFormula":
        """Build from string literals, e.g. ``[["x1", "~x2"], ...]``."""
        return cls(
            [[Literal.parse(text) for text in clause] for clause in clauses]
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        """Variable names in first-occurrence order."""
        seen: dict[str, None] = {}
        for clause in self.clauses:
            for lit in clause:
                seen.setdefault(lit.variable, None)
        return list(seen)

    @property
    def clause_count(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Truth value under a (total) assignment.

        Raises:
            KeyError: if the assignment misses a variable.
        """
        return all(
            any(lit.value_under(assignment) for lit in clause)
            for clause in self.clauses
        )

    def satisfying_literals(
        self, assignment: Mapping[str, bool]
    ) -> list[Literal]:
        """One true literal per clause (the z_i of the Theorem 2 proof).

        Raises:
            ValueError: if some clause is unsatisfied.
        """
        chosen = []
        for index, clause in enumerate(self.clauses, start=1):
            for lit in clause:
                if lit.value_under(assignment):
                    chosen.append(lit)
                    break
            else:
                raise ValueError(
                    f"assignment does not satisfy clause {index}"
                )
        return chosen

    # ------------------------------------------------------------------
    # the 3SAT' discipline
    # ------------------------------------------------------------------

    def occurrence_table(self) -> dict[str, Occurrences]:
        """Per-variable (h, k, l) clause indices.

        Raises:
            NotThreeSatPrimeError: if the formula is not 3SAT′.
        """
        positive: dict[str, list[int]] = {}
        negative: dict[str, list[int]] = {}
        for index, clause in enumerate(self.clauses, start=1):
            if len(clause) > 3:
                raise NotThreeSatPrimeError(
                    f"clause {index} has more than 3 literals"
                )
            for lit in clause:
                bucket = positive if lit.positive else negative
                bucket.setdefault(lit.variable, []).append(index)
        table = {}
        for variable in self.variables:
            pos = positive.get(variable, [])
            neg = negative.get(variable, [])
            if len(pos) != 2 or len(neg) != 1:
                raise NotThreeSatPrimeError(
                    f"variable {variable!r} occurs {len(pos)}x positively "
                    f"and {len(neg)}x negatively; 3SAT' requires 2 and 1"
                )
            table[variable] = Occurrences(pos[0], pos[1], neg[0])
        return table

    def is_three_sat_prime(self) -> bool:
        """True if the formula lies in the 3SAT′ fragment."""
        try:
            self.occurrence_table()
        except NotThreeSatPrimeError:
            return False
        return True

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        return " & ".join(
            "(" + " | ".join(str(lit) for lit in clause) + ")"
            for clause in self.clauses
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CnfFormula):
            return NotImplemented
        return self.clauses == other.clauses

    def __hash__(self) -> int:
        return hash(self.clauses)


def random_three_sat_prime(
    n_variables: int,
    rng: random.Random,
    clause_size: int = 3,
    max_attempts: int = 1000,
) -> CnfFormula:
    """Generate a random 3SAT′ formula over ``n_variables`` variables.

    Creates the 3·n occurrence tokens (two positive, one negative per
    variable), shuffles them, and deals them into ``n`` clauses of
    ``clause_size`` (= 3 by default, requiring ``clause_size`` to divide
    3·n) such that no clause repeats a variable, retrying on conflicts.

    Args:
        n_variables: number of variables (and, with size-3 clauses, of
            clauses). Must be at least 3 so that a conflict-free deal
            exists.
        rng: source of randomness (pass a seeded ``random.Random``).
        clause_size: literals per clause; must divide ``3 * n_variables``.
        max_attempts: shuffle retries before giving up.

    Raises:
        ValueError: on infeasible parameters or exhausted retries.
    """
    if n_variables < 3:
        raise ValueError("need at least 3 variables for 3SAT'")
    total = 3 * n_variables
    if total % clause_size:
        raise ValueError(
            f"clause size {clause_size} does not divide {total} tokens"
        )
    n_clauses = total // clause_size
    names = [f"x{j + 1}" for j in range(n_variables)]
    tokens = []
    for name in names:
        tokens.extend(
            [Literal(name), Literal(name), Literal(name, positive=False)]
        )
    for _ in range(max_attempts):
        rng.shuffle(tokens)
        clauses: list[list[Literal]] = [[] for _ in range(n_clauses)]
        ok = True
        for token in tokens:
            placed = False
            # Prefer the emptiest clause without this variable: keeps the
            # deal balanced and makes conflicts rare.
            candidates = sorted(
                range(n_clauses), key=lambda c: (len(clauses[c]), c)
            )
            for c in candidates:
                if len(clauses[c]) >= clause_size:
                    continue
                if any(t.variable == token.variable for t in clauses[c]):
                    continue
                clauses[c].append(token)
                placed = True
                break
            if not placed:
                ok = False
                break
        if ok:
            formula = CnfFormula(clauses)
            if formula.is_three_sat_prime():
                return formula
    raise ValueError(
        f"could not deal a 3SAT' formula with n={n_variables} in "
        f"{max_attempts} attempts"
    )
