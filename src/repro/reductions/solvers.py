"""SAT solvers for the reduction experiments.

Two independent deciders — exhaustive truth-table search and DPLL with
unit propagation and pure-literal elimination — cross-validated against
each other in the tests and used as the satisfiability side of the
Theorem 2 equivalence experiments.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.reductions.cnf import CnfFormula, Literal

__all__ = ["brute_force_satisfiable", "count_models", "dpll_solve"]


def brute_force_satisfiable(formula: CnfFormula) -> dict[str, bool] | None:
    """Truth-table search; returns a satisfying assignment or None.

    Exponential in the variable count; fine for the ≤ 20-variable
    instances of the experiments.
    """
    variables = formula.variables
    n = len(variables)
    for bits in range(1 << n):
        assignment = {
            variables[j]: bool(bits >> j & 1) for j in range(n)
        }
        if formula.evaluate(assignment):
            return assignment
    return None


def count_models(formula: CnfFormula) -> int:
    """Number of satisfying assignments (truth-table enumeration)."""
    variables = formula.variables
    n = len(variables)
    count = 0
    for bits in range(1 << n):
        assignment = {
            variables[j]: bool(bits >> j & 1) for j in range(n)
        }
        if formula.evaluate(assignment):
            count += 1
    return count


def dpll_solve(formula: CnfFormula) -> dict[str, bool] | None:
    """DPLL with unit propagation and pure-literal elimination.

    Returns:
        A satisfying assignment (total over the formula's variables), or
        None when unsatisfiable.
    """
    clauses = [frozenset(clause) for clause in formula.clauses]
    assignment = _dpll(clauses, {})
    if assignment is None:
        return None
    # Complete the partial assignment over untouched variables.
    for variable in formula.variables:
        assignment.setdefault(variable, True)
    return assignment


def _simplify(
    clauses: list[frozenset[Literal]], variable: str, value: bool
) -> list[frozenset[Literal]] | None:
    """Apply one assignment; None signals an emptied clause (conflict)."""
    result = []
    for clause in clauses:
        satisfied = False
        kept = []
        for lit in clause:
            if lit.variable == variable:
                if lit.positive == value:
                    satisfied = True
                    break
            else:
                kept.append(lit)
        if satisfied:
            continue
        if not kept:
            return None
        result.append(frozenset(kept))
    return result


def _dpll(
    clauses: list[frozenset[Literal]], assignment: dict[str, bool]
) -> dict[str, bool] | None:
    while True:
        if not clauses:
            return dict(assignment)

        # Unit propagation.
        unit = next((c for c in clauses if len(c) == 1), None)
        if unit is not None:
            lit = next(iter(unit))
            simplified = _simplify(clauses, lit.variable, lit.positive)
            if simplified is None:
                return None
            assignment[lit.variable] = lit.positive
            clauses = simplified
            continue

        # Pure-literal elimination.
        polarity: dict[str, set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(lit.variable, set()).add(lit.positive)
        pure = next(
            (
                (variable, next(iter(signs)))
                for variable, signs in polarity.items()
                if len(signs) == 1
            ),
            None,
        )
        if pure is not None:
            variable, value = pure
            simplified = _simplify(clauses, variable, value)
            if simplified is None:  # pragma: no cover - pure can't conflict
                return None
            assignment[variable] = value
            clauses = simplified
            continue

        # Branch on the first variable of the first clause.
        lit = next(iter(clauses[0]))
        for value in (lit.positive, not lit.positive):
            simplified = _simplify(clauses, lit.variable, value)
            if simplified is None:
                continue
            branch = dict(assignment)
            branch[lit.variable] = value
            solved = _dpll(simplified, branch)
            if solved is not None:
                return solved
        return None
