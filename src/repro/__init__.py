"""repro — deadlock-freedom and safety of distributed locked transactions.

A faithful, tested implementation of Wolfson & Yannakakis,
*Deadlock-Freedom (and Safety) of Transactions in a Distributed
Database* (PODS 1985; JCSS 33, 1986):

* the model of distributed locked transactions as partial orders
  (:mod:`repro.core`);
* the reduction-graph deadlock characterization (Theorem 1), the
  Theorem 3 O(n²) pair test, the Theorem 4 fixed-k test, the copies
  results (Corollary 3 / Theorem 5), the Lemma 2 centralized test, the
  minimal-prefix algorithm, and exhaustive oracles
  (:mod:`repro.analysis`);
* the Theorem 2 coNP-hardness construction with certificates in both
  directions (:mod:`repro.reductions`);
* a discrete-event distributed lock-scheduler simulator with classical
  runtime policies (:mod:`repro.sim`);
* executable reconstructions of the paper's figures
  (:mod:`repro.paper`).

Quickstart::

    from repro import Transaction, TransactionSystem, check_pair

    t1 = Transaction.sequential("T1", ["Lx", "A.x", "Ly", "Ux", "Uy"])
    t2 = Transaction.sequential("T2", ["Lx", "Ly", "A.y", "Uy", "Ux"])
    verdict = check_pair(t1, t2)
    print(bool(verdict), verdict.reason)
"""

from repro.analysis import (
    PairViolation,
    SerializationViolation,
    Verdict,
    check_centralized_pair,
    check_copies,
    check_pair,
    check_pair_minimal_prefix,
    check_system,
    check_two_copies,
    find_deadlock,
    is_deadlock_free,
    is_pair_safe_deadlock_free,
    is_safe,
    is_safe_and_deadlock_free,
    repair_system,
    tirri_check_pair,
)
from repro.analysis.theorem1 import (
    find_deadlock_prefix,
    is_deadlock_free_theorem1,
)
from repro.analysis.witnesses import DeadlockWitness
from repro.core import (
    DatabaseSchema,
    GlobalNode,
    IllegalScheduleError,
    MalformedTransactionError,
    Operation,
    OpKind,
    Schedule,
    SystemPrefix,
    Transaction,
    TransactionBuilder,
    TransactionSystem,
    d_graph,
    is_deadlock_partial_schedule,
    is_deadlock_prefix,
    is_serializable,
    prefix_has_schedule,
    reduction_graph,
)
from repro.reductions import (
    CnfFormula,
    encode_formula,
    random_three_sat_prime,
)
from repro.sim import SimulationConfig, Simulator, simulate

__version__ = "1.0.0"

__all__ = [
    "CnfFormula",
    "DatabaseSchema",
    "DeadlockWitness",
    "GlobalNode",
    "IllegalScheduleError",
    "MalformedTransactionError",
    "OpKind",
    "Operation",
    "PairViolation",
    "Schedule",
    "SerializationViolation",
    "SimulationConfig",
    "Simulator",
    "SystemPrefix",
    "Transaction",
    "TransactionBuilder",
    "TransactionSystem",
    "Verdict",
    "__version__",
    "check_centralized_pair",
    "check_copies",
    "check_pair",
    "check_pair_minimal_prefix",
    "check_system",
    "check_two_copies",
    "d_graph",
    "encode_formula",
    "find_deadlock",
    "find_deadlock_prefix",
    "is_deadlock_free",
    "is_deadlock_free_theorem1",
    "is_deadlock_partial_schedule",
    "is_deadlock_prefix",
    "is_pair_safe_deadlock_free",
    "is_safe",
    "is_safe_and_deadlock_free",
    "is_serializable",
    "prefix_has_schedule",
    "random_three_sat_prime",
    "reduction_graph",
    "repair_system",
    "simulate",
    "tirri_check_pair",
]
