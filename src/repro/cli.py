"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands:

* ``analyze FILE`` — polymorphic on the file's content.  For a
  transaction system in the text format: static safety-and-deadlock-
  freedom analysis (Theorem 3 pairs + Theorem 4 cycles), with
  certificates for refutations.  For a JSONL trace written by
  ``simulate --trace-jsonl``: offline latency attribution — the
  conserved segment decomposition, hot-cell/convoy profile, blame
  graph (``--dot``), and abort-cost report, with ``--check`` gating
  exact conservation for CI.
* ``deadlock FILE`` — exhaustive deadlock search and Theorem 1 deadlock-
  prefix search.
* ``simulate [FILE]`` — run the discrete-event simulator under one or
  more contention policies, optionally with an atomic-commit protocol
  (``--commit two-phase presumed-abort paxos-commit``), replicate runs
  (``--runs 5`` re-seeds and re-suffixes every output), fault injection
  (``--failure-rate``), and replication (``--replication 3
  --replica-protocol quorum --read-fraction 0.6``: reads take shared
  locks on one/a quorum of replicas, writes exclusive locks on
  all/available/a quorum). With ``--arrival-rate`` the run is an *open
  system*: fresh transactions arrive on a Poisson clock (FILE becomes
  optional and seeds the run as a closed batch if given) and the report
  shows steady-state throughput and latency percentiles.
* ``sweep`` — run a declarative grid (policy x commit protocol x
  replica protocol x arrival rate x failure rate x seeds) on a
  multiprocessing pool, with optional JSON/CSV output and opt-in
  per-cell metrics columns (``--cell-metrics``) and contention-
  attribution columns (``--cell-attribution``: hotspot share,
  wasted-work fraction, blame-graph size).
* ``trace FILE`` — summarize a trace written by ``simulate
  --trace-out/--trace-jsonl`` (either Chrome ``trace_event`` JSON or
  JSONL); JSONL summaries include the top blocking cells and the
  abort-cause breakdown.
* ``sat DIMACS-LIKE`` — encode a 3SAT′ formula as two transactions and
  demonstrate the Theorem 2 equivalence.
* ``figures`` — run the paper-figure demonstrations.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.io.textfmt import parse_system

__all__ = ["main"]


def _load_system(path: str):
    with open(path, encoding="utf-8") as handle:
        return parse_system(handle.read())


def _is_trace_artifact(path: str) -> bool:
    """True when the file's first non-blank line is a JSON object.

    The transaction-system text format never starts a line with ``{``,
    while both trace exports do (JSONL records and the Chrome
    ``trace_event`` document), so one line of content sniffing routes
    ``analyze`` without a mode flag.
    """
    import json

    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                return isinstance(json.loads(line), dict)
            except ValueError:
                return False
    return False


def _analyze_trace(args: argparse.Namespace) -> int:
    import json

    from repro.sim.observe.attribution import analyze_trace, render_report

    try:
        summary, engine = analyze_trace(args.file)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    print(render_report(summary, top=args.top))
    if args.dot:
        from repro.io.dot import blame_graph_to_dot

        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(blame_graph_to_dot(engine.blame_edge_list()))
        print(f"wrote {args.dot}")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"wrote {args.json_out}")
    if args.check:
        conservation = summary["conservation"]
        failures = []
        if not conservation["exact"]:
            failures.append("segment sums do not equal measured latency")
        if conservation["min_service"] < -1e-9:
            failures.append(
                f"negative service segment ({conservation['min_service']:g})"
            )
        if summary["blame"]["edge_count"] == 0:
            failures.append("blame graph is empty")
        if failures:
            print("check FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print(
            f"check OK: {conservation['transactions']} transactions "
            f"conserve exactly, {summary['blame']['edge_count']} blame "
            "edges"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if _is_trace_artifact(args.file):
        return _analyze_trace(args)
    from repro.analysis.reporting import audit_system

    system = _load_system(args.file)
    print(f"system: {', '.join(t.name for t in system.transactions)}")
    report = audit_system(system)
    print(report.to_text())
    return 0 if report.ok else 1


def _cmd_deadlock(args: argparse.Namespace) -> int:
    from repro.analysis.exhaustive import find_deadlock
    from repro.analysis.theorem1 import find_deadlock_prefix

    system = _load_system(args.file)
    witness = find_deadlock(system, max_states=args.max_states)
    if witness is None:
        print("deadlock-free (exhaustive search)")
        prefix_witness = find_deadlock_prefix(
            system, max_states=args.max_states
        )
        assert prefix_witness is None, "Theorem 1 disagreement"
        print("no deadlock prefix exists (Theorem 1 agrees)")
        return 0
    print("DEADLOCK reachable; partial schedule:")
    print(f"  {witness.describe()}")
    prefix_witness = find_deadlock_prefix(system, max_states=args.max_states)
    assert prefix_witness is not None, "Theorem 1 disagreement"
    print(prefix_witness.describe())
    return 1


def _workload_spec(args: argparse.Namespace):
    from repro.sim.workload import WorkloadSpec

    return WorkloadSpec(
        n_transactions=args.batch,
        n_entities=args.entities,
        n_sites=args.sites,
        entities_per_txn=tuple(args.entities_per_txn),
        actions_per_entity=tuple(args.actions_per_entity),
        cross_arc_p=args.cross_arc_p,
        shape=args.shape,
        hotspot_skew=args.hotspot_skew,
        read_fraction=args.read_fraction,
        replication_factor=args.replication,
    )


def _observe_config(args: argparse.Namespace, suffix: str = ""):
    """Observability config from simulate flags, or None.

    The flight-recorder directory is consumed while the run executes
    (dumps are written the moment a trigger fires), so — unlike the
    trace/metrics paths, which are suffixed at export time — it must be
    suffixed *here*, per run, or every run of a multi-run invocation
    would dump into the same directory and overwrite its predecessors'
    ``dump-NNN`` files.
    """
    from repro.sim.observe import ObserveConfig

    want_trace = bool(args.trace_out or args.trace_jsonl)
    want_attribution = bool(args.attribution or args.attribution_out)
    if not (
        want_trace
        or want_attribution
        or args.metrics_out
        or args.flight_recorder
    ):
        return None
    flight = args.flight_recorder
    if flight:
        flight = _suffixed(flight, suffix)
    return ObserveConfig(
        trace=want_trace,
        trace_capacity=args.trace_capacity,
        metrics_window=args.metrics_window if args.metrics_out else 0.0,
        flight_recorder=flight,
        flight_events=args.flight_events,
        flight_cascade_threshold=args.flight_cascade,
        attribution=want_attribution,
        sample_every=args.trace_sample,
    )


def _suffixed(path: str, suffix: str) -> str:
    if not suffix:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}-{suffix}{ext}"


def _export_observability(sim, args, suffix: str) -> None:
    """Write the requested trace/metrics/flight outputs of one run."""
    import json

    hub = sim.observe
    if hub.tracer is not None:
        if args.trace_out:
            path = _suffixed(args.trace_out, suffix)
            n = hub.tracer.export_chrome(path)
            print(f"wrote {path} ({n} trace events)")
        if args.trace_jsonl:
            path = _suffixed(args.trace_jsonl, suffix)
            n = hub.tracer.export_jsonl(path)
            print(f"wrote {path} ({n} records)")
    if hub.sampler is not None and args.metrics_out:
        path = _suffixed(args.metrics_out, suffix)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(sim.result.timeseries, fh, indent=2)
        print(
            f"wrote {path} "
            f"({len(sim.result.timeseries['windows'])} windows)"
        )
    if hub.flight is not None and hub.flight.dumps:
        print(
            f"flight recorder: {len(hub.flight.dumps)} dump(s) in "
            f"{hub.flight.out_dir}"
        )
    if hub.attribution is not None:
        from repro.sim.observe.attribution import render_report

        print(render_report(sim.result.attribution))
        if args.attribution_out:
            path = _suffixed(args.attribution_out, suffix)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(sim.result.attribution, fh, indent=2)
            print(f"wrote {path}")


def _parse_partition_episode(text: str):
    """Parse one ``START:DURATION:SITE[,SITE...]`` episode spec."""
    parts = text.split(":")
    if len(parts) != 3 or not parts[2]:
        raise argparse.ArgumentTypeError(
            f"expected START:DURATION:SITE[,SITE...], got {text!r}"
        )
    try:
        start, duration = float(parts[0]), float(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"episode start/duration must be numbers, got {text!r}"
        ) from None
    return (start, duration, tuple(parts[2].split(",")))


def _network_config(args: argparse.Namespace):
    """Build a NetworkConfig from CLI flags (None when all inert)."""
    from repro.sim.network import NetworkConfig

    config = NetworkConfig(
        loss_rate=args.loss_rate,
        dup_rate=args.dup_rate,
        jitter=args.jitter,
        partition_rate=args.partition_rate,
        partition_duration=args.partition_duration,
        partition_schedule=tuple(args.partition_at or ()),
        retransmit_timeout=args.retransmit_timeout,
    )
    return config if config.enabled else None


def _add_network_args(p: argparse.ArgumentParser) -> None:
    net = p.add_argument_group(
        "network chaos",
        "adversarial-network injection; all-default flags attach "
        "nothing and replay the perfect-network run bit for bit",
    )
    net.add_argument(
        "--loss-rate",
        type=float,
        default=0.0,
        help="i.i.d. drop probability per message copy",
    )
    net.add_argument(
        "--dup-rate",
        type=float,
        default=0.0,
        help="probability a delivered message is duplicated in flight",
    )
    net.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="per-copy delay jitter, uniform in [0, JITTER]",
    )
    net.add_argument(
        "--partition-rate",
        type=float,
        default=0.0,
        help="Poisson arrival rate of random partition episodes",
    )
    net.add_argument(
        "--partition-duration",
        type=float,
        default=20.0,
        help="duration of each Poisson-arriving partition episode",
    )
    net.add_argument(
        "--partition-at",
        type=_parse_partition_episode,
        action="append",
        metavar="START:DURATION:SITES",
        help="scripted partition episode cutting SITES (comma-"
        "separated) off the rest; repeatable",
    )
    net.add_argument(
        "--retransmit-timeout",
        type=float,
        default=2.0,
        help="first retransmission deadline of an unacked message "
        "(doubles per retry, capped)",
    )


def _durability_config(args: argparse.Namespace):
    """Build a DurabilityConfig from CLI flags (None when unset).

    ``--flush-time`` is the enabling flag: leaving it unset attaches
    no durability model, keeping the no-flag run bit-identical to the
    idealized-WAL simulator.
    """
    if args.flush_time is None:
        return None
    from repro.sim.durability import DurabilityConfig

    return DurabilityConfig(
        flush_time=args.flush_time,
        tail_loss_rate=args.tail_loss_rate,
        torn_write_rate=args.torn_write_rate,
        amnesia_rate=args.amnesia_rate,
    )


def _add_durability_args(p: argparse.ArgumentParser) -> None:
    dur = p.add_argument_group(
        "durability",
        "simulated write-ahead logging; without --flush-time no "
        "durability model attaches and PREPARED state survives "
        "crashes by fiat (the legacy idealization)",
    )
    dur.add_argument(
        "--flush-time",
        type=float,
        default=None,
        metavar="T",
        help="cost of one forced log write; giving this flag attaches "
        "the durability model (crashes then truncate each site to its "
        "log and recovery replays it)",
    )
    dur.add_argument(
        "--tail-loss-rate",
        type=float,
        default=0.0,
        help="probability a crash silently drops the newest durable "
        "log record",
    )
    dur.add_argument(
        "--torn-write-rate",
        type=float,
        default=0.0,
        help="probability the record being flushed at crash time is "
        "torn (lost even though the flush completed)",
    )
    dur.add_argument(
        "--amnesia-rate",
        type=float,
        default=0.0,
        help="probability a crash wipes the whole log; the site "
        "rejoins as a fresh replica via anti-entropy catch-up",
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.system import TransactionSystem
    from repro.sim.metrics import SimulationResult
    from repro.sim.runtime import SimulationConfig, Simulator

    open_system = args.arrival_rate > 0
    if args.file is None and not open_system:
        print(
            "simulate: FILE is required unless --arrival-rate is given",
            file=sys.stderr,
        )
        return 2
    system = (
        _load_system(args.file) if args.file else TransactionSystem([])
    )
    runs = max(1, args.runs)
    grid = len(args.policies) * len(args.commit) > 1
    results = []
    for policy in args.policies:
        for protocol in args.commit:
            for run in range(runs):
                parts = []
                if grid:
                    parts.append(f"{policy}-{protocol}")
                if runs > 1:
                    parts.append(f"run{run}")
                suffix = "-".join(parts)
                observe = _observe_config(args, suffix)
                config = SimulationConfig(
                    seed=args.seed + run,
                    max_time=args.max_time,
                    network_delay=args.network_delay,
                    commit_protocol=protocol,
                    commit_timeout=args.commit_timeout,
                    commit_fault_tolerance=args.commit_fault_tolerance,
                    failure_rate=args.failure_rate,
                    repair_time=args.repair_time,
                    replica_protocol=args.replica_protocol,
                    catchup_time=args.catchup_time,
                    arrival_rate=args.arrival_rate,
                    max_transactions=args.max_transactions,
                    warmup_time=args.warmup,
                    # The workload spec also carries the replication
                    # factor, so closed-batch (FILE) runs need it too.
                    workload=_workload_spec(args),
                    workload_seed=args.workload_seed,
                    observe=observe,
                    network=_network_config(args),
                    durability=_durability_config(args),
                )
                sim = Simulator(system, policy, config)
                results.append(sim.run())
                if observe is not None:
                    _export_observability(sim, args, suffix)
    if open_system:
        print(SimulationResult.open_summary_table(results))
    else:
        print(SimulationResult.summary_table(results))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.observe.trace import summarize_trace

    print(summarize_trace(args.file))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import (
        SweepSpec,
        run_sweep,
        sweep_records,
        write_csv,
        write_json,
    )
    from repro.sim.observe import ObserveConfig
    from repro.sim.runtime import SimulationConfig
    from repro.util.render import format_table

    observe = None
    if args.cell_metrics > 0 or args.cell_attribution:
        observe = ObserveConfig(
            metrics_window=args.cell_metrics,
            attribution=args.cell_attribution,
        )
    chaos = any(r > 0 for r in args.loss_rates) or any(
        r > 0 for r in args.partition_rates
    )
    network = None
    if chaos:
        from repro.sim.network import NetworkConfig

        # The template every chaos cell derives from (its loss and
        # partition rates are overridden per cell).
        network = NetworkConfig(
            partition_duration=args.partition_duration
        )
    spec = SweepSpec(
        policies=tuple(args.policies),
        protocols=tuple(args.commit),
        replica_protocols=tuple(args.replica_protocols),
        arrival_rates=tuple(args.arrival_rates),
        failure_rates=tuple(args.failure_rates),
        loss_rates=tuple(args.loss_rates),
        partition_rates=tuple(args.partition_rates),
        seeds=tuple(args.seeds),
        workload=_workload_spec(args),
        base=SimulationConfig(
            network_delay=args.network_delay,
            commit_timeout=args.commit_timeout,
            commit_fault_tolerance=args.commit_fault_tolerance,
            repair_time=args.repair_time,
            catchup_time=args.catchup_time,
            max_transactions=args.max_transactions,
            warmup_time=args.warmup,
            workload_seed=args.workload_seed,
            max_time=args.max_time,
            observe=observe,
            network=network,
            durability=_durability_config(args),
        ),
    )
    cells = spec.cells()
    mode = "serially" if args.serial else "in parallel"
    print(
        f"sweep: {len(cells)} cells "
        f"({len(spec.policies)} policies x {len(spec.protocols)} "
        f"protocols x {len(spec.replica_protocols)} replica protocols "
        f"x {len(spec.arrival_rates)} arrival rates x "
        f"{len(spec.failure_rates)} failure rates x "
        f"{len(spec.loss_rates)} loss rates x "
        f"{len(spec.partition_rates)} partition rates x "
        f"{len(spec.seeds)} seeds), running {mode}"
    )
    results = run_sweep(
        spec, processes=args.processes, parallel=not args.serial
    )
    headers = [
        "policy", "commit", "replica", "arr-rate", "f-rate", "seed",
        "committed", "aborts", "thruput", "avail", "p50", "p95", "p99",
    ]
    rows = [
        [
            record["policy"],
            record["protocol"],
            record["replica_protocol"],
            f"{record['arrival_rate']:g}",
            f"{record['failure_rate']:g}",
            record["seed"],
            f"{record['committed']}/{record['total']}",
            record["aborts"],
            f"{record['steady_throughput']:.3f}",
            f"{record['availability']:.3f}",
            f"{record['p50']:.1f}",
            f"{record['p95']:.1f}",
            f"{record['p99']:.1f}",
        ]
        for record in sweep_records(spec, results)
    ]
    print(format_table(headers, rows))
    if args.json:
        write_json(args.json, spec, results)
        print(f"wrote {args.json}")
    if args.csv:
        write_csv(args.csv, spec, results)
        print(f"wrote {args.csv}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.io.dot import system_to_dot
    from repro.io.jsonfmt import system_to_json
    from repro.io.textfmt import format_system

    system = _load_system(args.file)
    if args.format == "dot":
        print(system_to_dot(system), end="")
    elif args.format == "json":
        print(system_to_json(system))
    else:
        print(format_system(system), end="")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.analysis.fixed_k import check_system
    from repro.analysis.optimize import early_unlock
    from repro.analysis.policies import repair_system
    from repro.io.textfmt import format_system

    system = _load_system(args.file)
    verdict = check_system(system)
    if verdict:
        print("# system is already safe and deadlock-free; no repair "
              "needed")
        print(format_system(system), end="")
        return 0
    repaired, order = repair_system(system)
    assert check_system(repaired)
    print(f"# repaired: re-locked 2PL along global order {order}")
    if args.optimize:
        report = early_unlock(repaired)
        repaired = report.system
        print(
            f"# early-unlock: holding span {report.before} -> "
            f"{report.after} ({report.improvement:.0%} shorter, "
            f"{report.moves} moves), still certified"
        )
    print(format_system(repaired), end="")
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    from repro.analysis.theorem1 import find_deadlock_prefix
    from repro.core.reduction import reduction_graph
    from repro.reductions.cnf import CnfFormula
    from repro.reductions.encoding import (
        assignment_to_prefix,
        decode_assignment,
        encode_formula,
        expected_cycle,
        verify_cycle,
    )
    from repro.reductions.solvers import dpll_solve

    clauses = [clause.split() for clause in args.formula.split(",")]
    formula = CnfFormula.from_lists(clauses)
    print(f"formula: {formula}")
    system = encode_formula(formula)
    print(
        f"encoded: |T1| = {system[0].node_count} nodes, "
        f"|T2| = {system[1].node_count} nodes, "
        f"{len(system.entities)} entities/sites"
    )
    assignment = dpll_solve(formula)
    if assignment is None:
        print("UNSAT — by Theorem 2 the pair {T1, T2} is deadlock-free")
        return 0
    print(f"SAT: {assignment}")
    prefix = assignment_to_prefix(formula, system, assignment)
    cycle = expected_cycle(formula, system, assignment)
    graph = reduction_graph(prefix)
    assert verify_cycle(graph, cycle), "constructed cycle not in R(A')"
    print("deadlock prefix (Z sets):")
    print(prefix.describe())
    print(
        "reduction-graph cycle: "
        + " -> ".join(system.describe_node(g) for g in cycle)
    )
    decoded = decode_assignment(formula, system, cycle)
    assert formula.evaluate(decoded)
    print(f"decoded back from the cycle: {decoded}")
    if args.search:
        witness = find_deadlock_prefix(system)
        assert witness is not None
        print("independent Theorem 1 search also found a deadlock prefix")
    return 0


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.analysis.exhaustive import find_deadlock
    from repro.analysis.tirri import tirri_check_pair
    from repro.core.reduction import is_deadlock_prefix, reduction_graph
    from repro.core.system import TransactionSystem
    from repro.paper import figures

    print("— Figure 1: deadlock prefix of three transactions —")
    system = figures.figure1()
    prefix = figures.figure1_prefix(system)
    graph = reduction_graph(prefix)
    cycle = graph.find_cycle()
    print(prefix.describe())
    print(
        "cycle: " + " -> ".join(system.describe_node(g) for g in cycle)
    )
    assert is_deadlock_prefix(prefix)

    print()
    print("— Figure 2: Tirri's oversight —")
    pair = figures.figure2()
    tirri = tirri_check_pair(pair[0], pair[1])
    truth = find_deadlock(pair)
    print(f"Tirri's test: {tirri.reason}")
    print(
        "exhaustive truth: "
        + ("deadlocks — " + truth.describe() if truth else "deadlock-free")
    )

    print()
    print("— Figure 3: deadlock-freedom is not extension-reducible —")
    partial = figures.figure3()
    extensions = figures.figure3_extensions()
    print(f"partial orders deadlock: {find_deadlock(partial) is not None}")
    print(
        f"extensions deadlock: {find_deadlock(extensions) is not None}"
    )

    print()
    print("— Figure 6: copies and deadlock —")
    t = figures.figure6()
    two = TransactionSystem.of_copies(t, 2)
    three = TransactionSystem.of_copies(t, 3)
    print(f"2 copies deadlock: {find_deadlock(two) is not None}")
    print(f"3 copies deadlock: {find_deadlock(three) is not None}")
    return 0


def _add_open_system_args(
    p: argparse.ArgumentParser,
    max_transactions_default: int = 0,
    single_rate: bool = True,
) -> None:
    """Open-system and workload-generation flags (simulate, sweep)."""
    if single_rate:  # sweep takes --arrival-rates as a grid axis instead
        p.add_argument(
            "--arrival-rate",
            type=float,
            default=0.0,
            help="open-system arrival rate (transactions per unit "
            "time); 0 replays FILE as a closed batch",
        )
    p.add_argument(
        "--max-transactions",
        type=int,
        default=max_transactions_default,
        help="stop injecting after this many arrivals (0 = unbounded; "
        "--max-time then limits the run)",
    )
    p.add_argument(
        "--warmup",
        type=float,
        default=0.0,
        help="steady-state measurement starts here; earlier commits "
        "and in-flight time are warm-up",
    )
    p.add_argument(
        "--workload-seed",
        type=int,
        default=0,
        help="seed of the generated schema/workload (separate from "
        "--seed so replicates stress the same database)",
    )
    p.add_argument(
        "--batch",
        type=int,
        default=8,
        help="closed-batch size when the workload is generated "
        "(sweep cells with arrival rate 0)",
    )
    p.add_argument(
        "--entities", type=int, default=16, help="generated entity pool"
    )
    p.add_argument(
        "--sites", type=int, default=4, help="sites the pool spreads over"
    )
    p.add_argument(
        "--entities-per-txn",
        nargs=2,
        type=int,
        default=[2, 4],
        metavar=("LO", "HI"),
        help="entities accessed per generated transaction",
    )
    p.add_argument(
        "--actions-per-entity",
        nargs=2,
        type=int,
        default=[0, 1],
        metavar=("LO", "HI"),
        help="A-steps per accessed entity",
    )
    p.add_argument(
        "--cross-arc-p",
        type=float,
        default=0.25,
        help="probability of each admissible extra cross-site arc",
    )
    p.add_argument(
        "--shape",
        default="random",
        choices=["random", "two_phase", "sequential", "ordered_2pl"],
        help="locking style of generated transactions",
    )
    p.add_argument(
        "--hotspot-skew",
        type=float,
        default=0.0,
        help="0 = uniform entity choice; larger concentrates accesses",
    )
    p.add_argument(
        "--read-fraction",
        type=float,
        default=0.0,
        help="probability an accessed entity is only read (shared "
        "locks); 0 keeps the paper's all-exclusive model",
    )
    p.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="FACTOR",
        help="replica copies per entity (clamped to the site count); "
        "1 is the paper's single-copy model",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Deadlock-freedom and safety analysis of locked transactions "
            "in a distributed database (Wolfson & Yannakakis, PODS 1985)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "analyze",
        help="static pair + fixed-k analysis of a system file, or "
        "offline latency attribution of a JSONL trace",
    )
    p.add_argument(
        "file",
        help="transaction system in text format, or a JSONL trace "
        "written by simulate --trace-jsonl (detected by content)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=8,
        help="rows per section of the trace-attribution report",
    )
    p.add_argument(
        "--dot",
        metavar="PATH",
        help="write the time-weighted blame graph as Graphviz DOT "
        "(trace files only)",
    )
    p.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the attribution summary as JSON (trace files only)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless segment sums conserve exactly and the "
        "blame graph is nonempty (trace files only; the CI gate)",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("deadlock", help="exhaustive deadlock search")
    p.add_argument("file")
    p.add_argument("--max-states", type=int, default=2_000_000)
    p.set_defaults(func=_cmd_deadlock)

    p = sub.add_parser("simulate", help="discrete-event simulation")
    p.add_argument(
        "file",
        nargs="?",
        default=None,
        help="transaction system to replay (optional when "
        "--arrival-rate generates the traffic)",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        default=["blocking", "wound-wait", "wait-die", "detect"],
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--runs",
        type=int,
        default=1,
        help="independent replicates per policy x protocol combination "
        "(seeds SEED..SEED+N-1); observability outputs gain a -runK "
        "suffix so no replicate overwrites another",
    )
    p.add_argument("--max-time", type=float, default=100_000.0)
    p.add_argument("--network-delay", type=float, default=0.0)
    p.add_argument(
        "--commit",
        nargs="+",
        default=["instant"],
        choices=["instant", "paxos-commit", "presumed-abort", "two-phase"],
        help="atomic-commit protocol(s) to run each policy under",
    )
    p.add_argument(
        "--commit-timeout",
        type=float,
        default=6.0,
        help="vote-collection/retry period of the 2PC protocols",
    )
    p.add_argument(
        "--commit-fault-tolerance",
        type=int,
        default=1,
        metavar="F",
        help="failures Paxos Commit masks: 2F+1 acceptor sites per "
        "round (F=0 degenerates to 2PC; other protocols ignore it)",
    )
    p.add_argument(
        "--failure-rate",
        type=float,
        default=0.0,
        help="per-site crash rate (crashes per unit time); 0 disables "
        "fault injection",
    )
    p.add_argument(
        "--repair-time",
        type=float,
        default=10.0,
        help="mean downtime of a crashed site",
    )
    p.add_argument(
        "--replica-protocol",
        default="rowa",
        choices=["rowa", "rowa-available", "quorum"],
        help="replica-control protocol routing reads/writes over the "
        "--replication copies",
    )
    p.add_argument(
        "--catchup-time",
        type=float,
        default=6.0,
        help="anti-entropy scan period of recovering rowa-available "
        "sites (no reads served until a copy validates)",
    )
    _add_network_args(p)
    _add_durability_args(p)
    _add_open_system_args(p)
    obs = p.add_argument_group(
        "observability",
        "zero-cost when unused: no flag attaches no probes",
    )
    obs.add_argument(
        "--trace-out",
        metavar="PATH",
        help="export a Chrome trace_event JSON (open in Perfetto or "
        "chrome://tracing)",
    )
    obs.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help="export the structured event trace as JSONL",
    )
    obs.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        help="tracer ring-buffer size (older records are dropped)",
    )
    obs.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the windowed metrics time series as JSON",
    )
    obs.add_argument(
        "--metrics-window",
        type=float,
        default=25.0,
        help="aggregation window of the metrics sampler (sim time)",
    )
    obs.add_argument(
        "--attribution",
        action="store_true",
        help="attach the latency-attribution engine and print the "
        "contention report (segment decomposition, hot cells, blame "
        "graph, abort cost) after the run",
    )
    obs.add_argument(
        "--attribution-out",
        metavar="PATH",
        help="also write the attribution summary as JSON (implies "
        "--attribution)",
    )
    obs.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="sample 1-in-N transactions into the tracer and "
        "attribution streams to bound traced-run overhead; abort-"
        "cause counts stay exact, time aggregates become estimates "
        "(default 1 = everything)",
    )
    obs.add_argument(
        "--flight-recorder",
        metavar="DIR",
        help="dump last-N events + a waits-for DOT snapshot here on "
        "deadlock detection, crashes, and abort cascades",
    )
    obs.add_argument(
        "--flight-events",
        type=int,
        default=256,
        help="events each flight-recorder dump retains",
    )
    obs.add_argument(
        "--flight-cascade",
        type=int,
        default=25,
        metavar="DEPTH",
        help="abort-cascade depth that triggers a flight dump",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "sweep",
        help="run a policy x protocol x rate x failure x seed grid",
    )
    p.add_argument(
        "--policies", nargs="+", default=["wound-wait", "wait-die"]
    )
    p.add_argument(
        "--commit",
        nargs="+",
        default=["instant"],
        choices=["instant", "paxos-commit", "presumed-abort", "two-phase"],
    )
    p.add_argument(
        "--replica-protocols",
        nargs="+",
        default=["rowa"],
        choices=["rowa", "rowa-available", "quorum"],
        help="replica-control protocols as a grid axis",
    )
    p.add_argument(
        "--arrival-rates",
        nargs="+",
        type=float,
        default=[0.5, 1.0],
        help="open-system arrival rates to sweep (0 = closed batch)",
    )
    p.add_argument(
        "--failure-rates", nargs="+", type=float, default=[0.0]
    )
    p.add_argument(
        "--loss-rates",
        nargs="+",
        type=float,
        default=[0.0],
        help="network message-loss probabilities as a chaos grid axis",
    )
    p.add_argument(
        "--partition-rates",
        nargs="+",
        type=float,
        default=[0.0],
        help="Poisson partition-episode rates as a chaos grid axis",
    )
    p.add_argument(
        "--partition-duration",
        type=float,
        default=20.0,
        help="duration of each Poisson partition episode (chaos cells)",
    )
    p.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0, 1, 2],
        help="replicate seeds (each is one cell per grid point)",
    )
    p.add_argument("--max-time", type=float, default=100_000.0)
    p.add_argument("--network-delay", type=float, default=0.0)
    p.add_argument("--commit-timeout", type=float, default=6.0)
    p.add_argument(
        "--commit-fault-tolerance",
        type=int,
        default=1,
        metavar="F",
        help="Paxos Commit acceptor-bank size is 2F+1 (other "
        "protocols ignore it)",
    )
    p.add_argument("--repair-time", type=float, default=10.0)
    p.add_argument(
        "--catchup-time",
        type=float,
        default=6.0,
        help="anti-entropy scan period of recovering rowa-available "
        "sites",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes (default: one per CPU)",
    )
    p.add_argument(
        "--serial",
        action="store_true",
        help="run cells serially in-process (the determinism baseline)",
    )
    p.add_argument("--json", help="write spec + per-cell records here")
    p.add_argument("--csv", help="write per-cell records here")
    p.add_argument(
        "--cell-metrics",
        type=float,
        default=0.0,
        metavar="WINDOW",
        help="attach the metrics sampler to every cell with this "
        "window; records (JSON/CSV) gain peak-pressure columns",
    )
    p.add_argument(
        "--cell-attribution",
        action="store_true",
        help="attach the latency-attribution engine to every cell; "
        "records (JSON/CSV) gain hotspot-share, wasted-work, and "
        "blame-graph columns",
    )
    _add_durability_args(p)
    _add_open_system_args(
        p, max_transactions_default=200, single_rate=False
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="summarize a trace file written by simulate",
    )
    p.add_argument("file", help="Chrome trace_event JSON or JSONL trace")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("show", help="render a system (text/json/dot)")
    p.add_argument("file")
    p.add_argument(
        "--format", choices=["text", "json", "dot"], default="text"
    )
    p.set_defaults(func=_cmd_show)

    p = sub.add_parser(
        "repair",
        help="re-lock a violating workload 2PL along a global order",
    )
    p.add_argument("file")
    p.add_argument(
        "--optimize",
        action="store_true",
        help="also shrink lock-holding spans (early unlocking) while "
        "keeping the certificate",
    )
    p.set_defaults(func=_cmd_repair)

    p = sub.add_parser("sat", help="Theorem 2 reduction demo")
    p.add_argument(
        "formula",
        help="clauses separated by commas, literals by spaces; "
        "'~' negates: 'x1 x2, x1 ~x2, ~x1 x2'",
    )
    p.add_argument(
        "--search",
        action="store_true",
        help="also run the exponential Theorem 1 search",
    )
    p.set_defaults(func=_cmd_sat)

    p = sub.add_parser("figures", help="paper figure demonstrations")
    p.set_defaults(func=_cmd_figures)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
