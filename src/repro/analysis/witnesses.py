"""Witness and verdict types shared by the analysis algorithms.

Every refutation produced by this library is *certified*: a "not
deadlock-free" verdict carries a deadlock prefix (with the cycle of its
reduction graph) or a deadlock partial schedule; a "not safe" verdict
carries a schedule whose serialization digraph is cyclic. Tests replay
these witnesses through the schedule validator, so verdicts are never
taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.prefix import SystemPrefix
from repro.core.schedule import Schedule
from repro.core.system import GlobalNode

__all__ = [
    "DeadlockWitness",
    "PairViolation",
    "SerializationViolation",
    "Verdict",
]


@dataclass(frozen=True)
class DeadlockWitness:
    """A certified deadlock.

    Attributes:
        prefix: a deadlock prefix A' (Theorem 1).
        cycle: one cycle of the reduction graph R(A').
        schedule: a partial schedule realizing the prefix, when available.
    """

    prefix: SystemPrefix
    cycle: tuple[GlobalNode, ...]
    schedule: Schedule | None = None

    def describe(self) -> str:
        system = self.prefix.system
        cycle = ", ".join(system.describe_node(g) for g in self.cycle)
        return (
            f"deadlock prefix:\n{self.prefix.describe()}\n"
            f"reduction-graph cycle: {cycle}"
        )


@dataclass(frozen=True)
class SerializationViolation:
    """A certified safety violation (or Lemma 1 violation).

    Attributes:
        schedule: the offending (partial) schedule.
        cycle: a cycle of transaction indices in D(S').
    """

    schedule: Schedule
    cycle: tuple[int, ...]

    def describe(self) -> str:
        system = self.schedule.system
        names = " -> ".join(system[i].name for i in self.cycle)
        return (
            f"schedule: {self.schedule.describe()}\n"
            f"D(S') cycle: {names} -> {system[self.cycle[0]].name}"
        )


@dataclass(frozen=True)
class PairViolation:
    """Why a pair fails Theorem 3 (or Lemma 2).

    Attributes:
        condition: 1 (no common first-locked entity) or 2 (some Q set
            empty).
        entities: the entities exhibiting the failure — for condition 1
            the two incompatible first locks, for condition 2 the entity y
            whose Q set is empty.
        side: for condition 2, which intersection was empty:
            ``"L(T1)&R(T2)"`` or ``"L(T2)&R(T1)"``.
    """

    condition: int
    entities: tuple[str, ...]
    side: str = ""

    def describe(self) -> str:
        if self.condition == 1:
            return (
                "condition (1) fails: no entity's Lock precedes all common "
                f"Locks in both transactions (e.g. {self.entities})"
            )
        return (
            f"condition (2) fails for entity {self.entities[0]!r}: "
            f"{self.side} is empty"
        )


@dataclass(frozen=True)
class Verdict:
    """Outcome of a property check, with an optional certificate.

    ``bool(verdict)`` is True when the property HOLDS (safe, deadlock-free,
    ...). ``witness`` certifies the failure when it does not.
    """

    ok: bool
    reason: str
    witness: object | None = None
    details: dict = field(default_factory=dict, compare=False)

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        text = self.reason
        if self.witness is not None and hasattr(self.witness, "describe"):
            text += "\n" + self.witness.describe()
        return text
