"""Early unlocking: shrink lock-holding spans while staying certified.

The paper cites Wolfson's companion work [W2] — "an algorithm which
safely unlocks entities in a set of transactions while reducing the
amount of time entities are kept locked". This module implements that
idea with the paper's own machinery as the safety net: greedily move
each Unlock earlier inside its (sequential) transaction, keeping the
move only when Theorem 4 still certifies the *whole system* safe and
deadlock-free.

The cost metric is the total lock-holding span: the sum over all
(transaction, entity) pairs of the step distance from ``Lx`` to ``Ux``.
2PL transactions start with maximal spans; the optimizer recovers much
of the concurrency non-2PL schedules offer, without giving up the
certificate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fixed_k import check_system
from repro.core.operations import OpKind
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction

__all__ = ["OptimizationReport", "early_unlock", "holding_span"]


@dataclass(frozen=True)
class OptimizationReport:
    """Outcome of :func:`early_unlock`.

    Attributes:
        system: the optimized (still certified) system.
        before: total holding span before optimization.
        after: total holding span after.
        moves: number of accepted unlock moves.
    """

    system: TransactionSystem
    before: int
    after: int
    moves: int

    @property
    def improvement(self) -> float:
        """Fraction of the original span removed (0.0 when nothing
        moved)."""
        if self.before == 0:
            return 0.0
        return (self.before - self.after) / self.before


def holding_span(transaction: Transaction) -> int:
    """Total Lock→Unlock step distance of a sequential transaction.

    Raises:
        ValueError: for non-sequential transactions (the optimizer
            operates on total orders; distributed partial orders do not
            have a canonical "position" to move an unlock to).
    """
    if not transaction.is_sequential():
        raise ValueError(
            f"{transaction.name} is not sequential; holding spans are "
            "defined positionally"
        )
    order = transaction.dag.topological_order()
    position = {node: i for i, node in enumerate(order)}
    return sum(
        position[transaction.unlock_node(entity)]
        - position[transaction.lock_node(entity)]
        for entity in transaction.entities
    )


def _unlock_placements(transaction: Transaction, entity: str):
    """Yield variants with ``U entity`` placed at each earlier legal
    position, earliest first.

    A position is legal when it stays after every other operation on
    the same entity (well-formedness); crossing other entities'
    operations — including their unlocks — is structurally fine, so the
    certificate check decides.
    """
    order = transaction.dag.topological_order()
    ops = [transaction.ops[node] for node in order]
    index = next(
        i
        for i, op in enumerate(ops)
        if op.kind is OpKind.UNLOCK and op.entity == entity
    )
    earliest = 0
    for i in range(index - 1, -1, -1):
        if ops[i].entity == entity:
            earliest = i + 1
            break
    unlock = ops.pop(index)
    for position in range(earliest, index):
        variant = ops[:position] + [unlock] + ops[position:]
        yield Transaction.sequential(
            transaction.name, variant, transaction.schema
        )


def early_unlock(
    system: TransactionSystem, max_rounds: int = 1_000
) -> OptimizationReport:
    """Greedy early-unlocking under the Theorem 4 certificate.

    Repeatedly tries to move some Unlock one position earlier; a move
    is kept iff the modified system still passes
    :func:`repro.analysis.fixed_k.check_system`. Terminates at a local
    optimum (no single move is certifiable) or after ``max_rounds``.

    Args:
        system: a system of **sequential** transactions that already
            passes the Theorem 4 test.
        max_rounds: hard cap on accepted moves.

    Returns:
        An :class:`OptimizationReport`.

    Raises:
        ValueError: if the input system is not certified or not
            sequential.
    """
    for t in system.transactions:
        if not t.is_sequential():
            raise ValueError(
                f"{t.name} is not sequential; early_unlock operates on "
                "total orders"
            )
    if not check_system(system):
        raise ValueError(
            "the input system is not certified safe and deadlock-free; "
            "repair it first (repro.analysis.policies.repair_system)"
        )

    before = sum(holding_span(t) for t in system.transactions)
    current = list(system.transactions)
    moves = 0
    improved = True
    while improved and moves < max_rounds:
        improved = False
        for i in range(len(current)):
            transaction = current[i]
            for entity in sorted(transaction.entities):
                for candidate in _unlock_placements(transaction, entity):
                    if holding_span(candidate) >= holding_span(
                        transaction
                    ):
                        continue
                    trial = list(current)
                    trial[i] = candidate
                    if check_system(TransactionSystem(trial)):
                        current = trial
                        transaction = candidate
                        moves += 1
                        improved = True
                        break  # earliest certified placement taken
        # loop until a full pass accepts nothing
    optimized = TransactionSystem(current)
    after = sum(holding_span(t) for t in optimized.transactions)
    return OptimizationReport(optimized, before, after, moves)
