"""Exhaustive state-space oracles for deadlock-freedom and safety.

These explore every reachable execution state of a transaction system —
exponential, but exact. They serve two roles:

* ground truth against which the paper's polynomial algorithms are
  validated on thousands of random small systems (see the property tests);
* the "brute force" baseline whose exponential growth the complexity
  benchmarks exhibit (the coNP-hardness side of Theorems 2 and 4).

Three related searches:

* :func:`find_deadlock` — reachability of a state in which every
  unfinished transaction is blocked on a held lock (§3 deadlock partial
  schedule). State = executed-node masks.
* :func:`find_unserializable_schedule` — a complete schedule whose D(S)
  is cyclic. State must additionally track per-entity lock order, which
  determines D.
* :func:`find_lemma1_violation` — a partial schedule S' with cyclic
  D(S'); by Lemma 1 one exists iff the system is not safe-and-deadlock-
  free.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.witnesses import SerializationViolation, Verdict
from repro.core.operations import OpKind
from repro.core.schedule import Schedule
from repro.core.system import GlobalNode, TransactionSystem
from repro.util.bitset import bits_of

__all__ = [
    "SearchBudgetExceeded",
    "enumerate_complete_schedules",
    "find_deadlock",
    "find_lemma1_violation",
    "find_unserializable_schedule",
    "is_deadlock_free",
    "is_safe",
    "is_safe_and_deadlock_free",
]

DEFAULT_MAX_STATES = 2_000_000


class SearchBudgetExceeded(RuntimeError):
    """The state cap was hit before the search finished.

    Raised instead of returning a possibly wrong "no violation found".
    """


def _holders(system: TransactionSystem, masks: tuple[int, ...]) -> (
        dict[str, int]):
    """Map each locked-but-not-unlocked entity to its holder."""
    held: dict[str, int] = {}
    for i, t in enumerate(system.transactions):
        mask = masks[i]
        if not mask:
            continue
        for entity in t.entities:
            if (
                mask >> t.lock_node(entity) & 1
                and not mask >> t.unlock_node(entity) & 1
            ):
                held[entity] = i
    return held


def _enabled_moves(
    system: TransactionSystem,
    masks: tuple[int, ...],
    holders: dict[str, int],
) -> list[GlobalNode]:
    """All nodes executable next from the given state."""
    moves = []
    for i, t in enumerate(system.transactions):
        remaining = t.dag.all_nodes_mask() & ~masks[i]
        for u in bits_of(remaining):
            if t.dag.ancestors(u) & ~masks[i]:
                continue
            op = t.ops[u]
            if op.kind is OpKind.LOCK:
                holder = holders.get(op.entity)
                if holder is not None and holder != i:
                    continue
            moves.append(GlobalNode(i, u))
    return moves


def _reconstruct(
    system: TransactionSystem,
    parents: dict,
    state,
) -> Schedule:
    steps: list[GlobalNode] = []
    cursor = state
    while parents[cursor] is not None:
        prev, gnode = parents[cursor]
        steps.append(gnode)
        cursor = prev
    steps.reverse()
    return Schedule(system, steps)


# ----------------------------------------------------------------------
# deadlock search (masks-only state)
# ----------------------------------------------------------------------

def find_deadlock(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> Schedule | None:
    """Search every reachable state for a deadlock.

    Returns:
        A deadlock partial schedule (per the §3 definition), or None if
        the system is deadlock-free.

    Raises:
        SearchBudgetExceeded: if more than ``max_states`` states are
            reached before the search completes.
    """
    start = tuple([0] * len(system))
    complete = tuple(t.dag.all_nodes_mask() for t in system.transactions)
    parents: dict[tuple[int, ...], tuple | None] = {start: None}
    stack = [start]
    while stack:
        state = stack.pop()
        holders = _holders(system, state)
        moves = _enabled_moves(system, state, holders)
        if not moves and state != complete:
            return _reconstruct(system, parents, state)
        for gnode in moves:
            nxt = list(state)
            nxt[gnode.txn] |= 1 << gnode.node
            key = tuple(nxt)
            if key not in parents:
                if len(parents) >= max_states:
                    raise SearchBudgetExceeded(
                        f"deadlock search exceeded {max_states} states"
                    )
                parents[key] = (state, gnode)
                stack.append(key)
    return None


def is_deadlock_free(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> Verdict:
    """Exhaustively decide deadlock-freedom."""
    witness = find_deadlock(system, max_states)
    if witness is None:
        return Verdict(True, "deadlock-free (exhaustive state search)")
    return Verdict(
        False,
        "a deadlock partial schedule is reachable",
        witness=witness,
    )


# ----------------------------------------------------------------------
# safety searches (state = masks + per-entity lock order)
# ----------------------------------------------------------------------

def _d_arcs(
    system: TransactionSystem,
    masks: tuple[int, ...],
    lock_orders: tuple[tuple[int, ...], ...],
    entities: tuple[str, ...],
) -> dict[int, set[int]]:
    """Adjacency of D(S') from the per-entity lock orders."""
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(system))}
    for entity, order in zip(entities, lock_orders):
        if not order:
            continue
        for a, b in zip(order, order[1:]):
            adjacency[a].add(b)
        last = order[-1]
        for j in system.accessors(entity):
            lock = system[j].lock_node(entity)
            if not masks[j] >> lock & 1:
                adjacency[last].add(j)
    return adjacency


def _find_digraph_cycle(adjacency: dict[int, set[int]]) -> list[int] | None:
    from repro.util.graphs import find_cycle

    return find_cycle(list(adjacency), lambda u: adjacency[u])


def _explore_with_lock_orders(
    system: TransactionSystem,
    max_states: int,
    check_partial: bool,
) -> SerializationViolation | None:
    """Shared engine for the two safety searches.

    Args:
        check_partial: when True (Lemma 1 mode) test D(S') at every
            reachable state; when False test only complete schedules.
    """
    entities = tuple(sorted(system.entities))
    multi = tuple(
        entity for entity in entities if len(system.accessors(entity)) >= 2
    )
    n = len(system)
    start_masks = tuple([0] * n)
    start_orders: tuple[tuple[int, ...], ...] = tuple(() for _ in multi)
    start = (start_masks, start_orders)
    complete_masks = tuple(t.dag.all_nodes_mask() for t in system.transactions)
    entity_index = {entity: k for k, entity in enumerate(multi)}

    parents: dict[tuple, tuple | None] = {start: None}
    stack = [start]
    while stack:
        state = stack.pop()
        masks, orders = state
        if check_partial or masks == complete_masks:
            adjacency = _d_arcs(system, masks, orders, multi)
            cycle = _find_digraph_cycle(adjacency)
            if cycle is not None:
                schedule = _reconstruct_pair(system, parents, state)
                return SerializationViolation(schedule, tuple(cycle))
        holders = _holders(system, masks)
        for gnode in _enabled_moves(system, masks, holders):
            op = system[gnode.txn].ops[gnode.node]
            next_masks = list(masks)
            next_masks[gnode.txn] |= 1 << gnode.node
            next_orders = orders
            if op.kind is OpKind.LOCK and op.entity in entity_index:
                k = entity_index[op.entity]
                updated = list(orders)
                updated[k] = orders[k] + (gnode.txn,)
                next_orders = tuple(updated)
            key = (tuple(next_masks), next_orders)
            if key not in parents:
                if len(parents) >= max_states:
                    raise SearchBudgetExceeded(
                        f"safety search exceeded {max_states} states"
                    )
                parents[key] = (state, gnode)
                stack.append(key)
    return None


def _reconstruct_pair(system, parents, state) -> Schedule:
    steps: list[GlobalNode] = []
    cursor = state
    while parents[cursor] is not None:
        prev, gnode = parents[cursor]
        steps.append(gnode)
        cursor = prev
    steps.reverse()
    return Schedule(system, steps)


def find_unserializable_schedule(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> SerializationViolation | None:
    """Find a complete schedule with cyclic D(S), or None if safe."""
    return _explore_with_lock_orders(system, max_states, check_partial=False)


def find_lemma1_violation(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> SerializationViolation | None:
    """Find a partial schedule with cyclic D(S'), or None.

    By Lemma 1, returns None iff the system is safe and deadlock-free.
    """
    return _explore_with_lock_orders(system, max_states, check_partial=True)


def is_safe(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> Verdict:
    """Exhaustively decide safety (all complete schedules serializable)."""
    violation = find_unserializable_schedule(system, max_states)
    if violation is None:
        return Verdict(True, "safe (all schedules serializable)")
    return Verdict(
        False, "a non-serializable schedule exists", witness=violation
    )


def is_safe_and_deadlock_free(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> Verdict:
    """Exhaustively decide the Lemma 1 conjunction."""
    violation = find_lemma1_violation(system, max_states)
    if violation is None:
        return Verdict(True, "safe and deadlock-free (Lemma 1 exhaustive)")
    return Verdict(
        False,
        "some partial schedule has a cyclic digraph D(S')",
        witness=violation,
    )


# ----------------------------------------------------------------------
# schedule enumeration (tiny systems; Corollary 1 experiments)
# ----------------------------------------------------------------------

def enumerate_complete_schedules(
    system: TransactionSystem, limit: int | None = None
) -> Iterator[Schedule]:
    """Yield complete schedules of the system (each step sequence once).

    Exponential; intended for tiny systems in tests. ``limit`` caps the
    number of schedules produced.
    """
    complete = tuple(t.dag.all_nodes_mask() for t in system.transactions)
    produced = 0
    path: list[GlobalNode] = []

    def walk(masks: tuple[int, ...]) -> Iterator[Schedule]:
        nonlocal produced
        if masks == complete:
            yield Schedule(system, list(path))
            produced += 1
            return
        holders = _holders(system, masks)
        for gnode in _enabled_moves(system, masks, holders):
            if limit is not None and produced >= limit:
                return
            nxt = list(masks)
            nxt[gnode.txn] |= 1 << gnode.node
            path.append(gnode)
            yield from walk(tuple(nxt))
            path.pop()

    yield from walk(tuple([0] * len(system)))
