"""The step sets R_T(s) and L_T(s) of Section 5.

For a distributed transaction ``T`` and a step ``s``:

* ``R_T(s)`` — entities ``z`` whose Lock strictly precedes ``s`` in T
  ("locked, and possibly unlocked, before s" in every extension).
* ``L_T(s)`` — entities ``z`` such that ``s`` precedes ``Uz`` but not
  ``Lz``. This is the *asymmetric* definition the paper needs: the set of
  entities locked-but-not-unlocked right before ``s`` in a linear
  extension of T that postpones everything it can until after ``s``.

For total orders both coincide with the classical definitions. Note that
for distributed transactions ``L_T(s) ⊆ R_T(s)`` does **not** hold in
general (the paper remarks on this): an entity locked concurrently with
``s`` belongs to ``L_T(s)`` but not to ``R_T(s)``.
"""

from __future__ import annotations

from repro.core.entity import Entity
from repro.core.transaction import Transaction

__all__ = ["l_set", "r_set"]


def r_set(transaction: Transaction, step: int) -> frozenset[Entity]:
    """R_T(s): entities whose Lock strictly precedes step ``s``."""
    dag = transaction.dag
    result = set()
    for entity in transaction.entities:
        if dag.precedes(transaction.lock_node(entity), step):
            result.add(entity)
    return frozenset(result)


def l_set(transaction: Transaction, step: int) -> frozenset[Entity]:
    """L_T(s): entities ``z`` with ``s ≺ Uz`` and not ``s ≺ Lz``."""
    dag = transaction.dag
    result = set()
    for entity in transaction.entities:
        unlock = transaction.unlock_node(entity)
        lock = transaction.lock_node(entity)
        if dag.precedes(step, unlock) and not dag.precedes(step, lock):
            result.add(entity)
    return frozenset(result)
