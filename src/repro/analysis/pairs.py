"""Theorem 3: the O(n²) safety-and-deadlock-freedom test for two
distributed transactions.

Let R = R(T1) ∩ R(T2). The pair {T1, T2} is safe and deadlock-free iff:

1. there is an entity ``x ∈ R`` such that for every other ``y ∈ R``,
   ``Lx`` precedes ``Ly`` in **both** T1 and T2; and
2. for every ``y ∈ R`` other than ``x``, both sets
   ``L_{T1}(L¹y) ∩ R_{T2}(L²y)`` and ``L_{T2}(L²y) ∩ R_{T1}(L¹y)``
   are non-empty.

With transactions in transitively closed form (our :class:`Dag` always
stores the closure) every precedence probe is O(1), giving the paper's
O(n²) bound (Corollary 2).
"""

from __future__ import annotations

from repro.analysis.sets import l_set, r_set
from repro.analysis.witnesses import PairViolation, Verdict
from repro.core.entity import Entity
from repro.core.transaction import Transaction

__all__ = [
    "check_pair",
    "common_first_locked_entity",
    "is_pair_safe_deadlock_free",
]


def common_first_locked_entity(
    t1: Transaction, t2: Transaction
) -> Entity | None:
    """The entity x of condition (1), or None if no such entity exists.

    When it exists it is unique: two distinct candidates would each have
    to lock strictly before the other.
    """
    common = sorted(t1.entities & t2.entities)
    for x in common:
        if all(
            _lock_precedes(t, x, y)
            for t in (t1, t2)
            for y in common
            if y != x
        ):
            return x
    return None


def _lock_precedes(t: Transaction, x: Entity, y: Entity) -> bool:
    return t.dag.precedes(t.lock_node(x), t.lock_node(y))


def check_pair(t1: Transaction, t2: Transaction) -> Verdict:
    """Decide safety-and-deadlock-freedom of a pair (Theorem 3).

    Actions are ignored (the paper shows they play no role): the test
    runs on the lock skeletons.

    Returns:
        A :class:`Verdict`; on failure the witness is a
        :class:`PairViolation` naming the violated condition.
    """
    s1, s2 = t1.lock_skeleton(), t2.lock_skeleton()
    common = sorted(s1.entities & s2.entities)
    if not common:
        return Verdict(
            True, "no common entities; trivially safe and deadlock-free"
        )

    x = common_first_locked_entity(s1, s2)
    if x is None:
        first1 = _first_lockable(s1, common)
        first2 = _first_lockable(s2, common)
        entities = tuple(sorted(set(first1[:1] + first2[:1])))
        return Verdict(
            False,
            "condition (1) of Theorem 3 fails",
            witness=PairViolation(1, entities or tuple(common[:2])),
        )

    for y in common:
        if y == x:
            continue
        l1 = l_set(s1, s1.lock_node(y))
        r2 = r_set(s2, s2.lock_node(y))
        if not l1 & r2:
            return Verdict(
                False,
                f"condition (2) of Theorem 3 fails at {y!r}",
                witness=PairViolation(2, (y,), side="L(T1)&R(T2)"),
                details={"x": x},
            )
        l2 = l_set(s2, s2.lock_node(y))
        r1 = r_set(s1, s1.lock_node(y))
        if not l2 & r1:
            return Verdict(
                False,
                f"condition (2) of Theorem 3 fails at {y!r}",
                witness=PairViolation(2, (y,), side="L(T2)&R(T1)"),
                details={"x": x},
            )
    return Verdict(
        True,
        "safe and deadlock-free (Theorem 3)",
        details={"x": x},
    )


def _first_lockable(t: Transaction, common: list[Entity]) -> list[Entity]:
    """Common entities whose Lock is not preceded by another common Lock."""
    result = []
    for y in common:
        if not any(
            _lock_precedes(t, z, y) for z in common if z != y
        ):
            result.append(y)
    return result


def is_pair_safe_deadlock_free(t1: Transaction, t2: Transaction) -> bool:
    """Boolean convenience wrapper around :func:`check_pair`."""
    return bool(check_pair(t1, t2))
