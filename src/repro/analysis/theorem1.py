"""Theorem 1 as an algorithm: search for a deadlock prefix.

Theorem 1: a transaction system is deadlock-free iff it has no deadlock
prefix — a reachable prefix whose reduction graph R(A') is cyclic. This
module enumerates the reachable prefixes (exactly those that have a
schedule, by forward exploration) and tests each reduction graph.

It is exponential like :func:`repro.analysis.exhaustive.find_deadlock`,
but it typically certifies a deadlock *earlier*: a reduction-graph cycle
appears as soon as completion becomes impossible, before every
transaction is physically blocked. The property tests assert equivalence
of the two searches, which is the computational content of Theorem 1.
"""

from __future__ import annotations

from repro.analysis.exhaustive import (
    DEFAULT_MAX_STATES,
    SearchBudgetExceeded,
    _enabled_moves,
    _holders,
    _reconstruct,
)
from repro.analysis.witnesses import DeadlockWitness, Verdict
from repro.core.prefix import SystemPrefix
from repro.core.reduction import reduction_graph
from repro.core.system import TransactionSystem

__all__ = ["find_deadlock_prefix", "is_deadlock_free_theorem1"]


def find_deadlock_prefix(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> DeadlockWitness | None:
    """Find a deadlock prefix, or None if the system is deadlock-free.

    Every state visited by the forward exploration is a prefix that has a
    schedule (the exploration path itself), so the §3 side condition is
    free; only the cycle test remains.

    Raises:
        SearchBudgetExceeded: when ``max_states`` is exceeded.
    """
    start = tuple([0] * len(system))
    parents: dict[tuple[int, ...], tuple | None] = {start: None}
    stack = [start]
    while stack:
        state = stack.pop()
        prefix = SystemPrefix(system, state)
        graph = reduction_graph(prefix)
        cycle = graph.find_cycle()
        if cycle is not None:
            schedule = _reconstruct(system, parents, state)
            return DeadlockWitness(prefix, tuple(cycle), schedule)
        holders = _holders(system, state)
        for gnode in _enabled_moves(system, state, holders):
            nxt = list(state)
            nxt[gnode.txn] |= 1 << gnode.node
            key = tuple(nxt)
            if key not in parents:
                if len(parents) >= max_states:
                    raise SearchBudgetExceeded(
                        f"deadlock-prefix search exceeded {max_states} states"
                    )
                parents[key] = (state, gnode)
                stack.append(key)
    return None


def is_deadlock_free_theorem1(
    system: TransactionSystem, max_states: int = DEFAULT_MAX_STATES
) -> Verdict:
    """Decide deadlock-freedom via the Theorem 1 characterization."""
    witness = find_deadlock_prefix(system, max_states)
    if witness is None:
        return Verdict(True, "no deadlock prefix exists (Theorem 1)")
    return Verdict(
        False, "a deadlock prefix exists (Theorem 1)", witness=witness
    )
