"""The minimal-prefix algorithm of Section 5 (the O(n³) pair test).

Before proving Theorem 3, the paper gives a first polynomial algorithm
for the pair problem. Fix y ≠ x in R = R(T1) ∩ R(T2). A linear extension
t1 of T1 violating ``L_{t1}(Ly) ∩ R_{T2}(Ly) ≠ ∅`` corresponds to a
prefix V of T1 such that

(a) V contains every node preceding L¹y in T1,
(b) for each z ∈ R_{T2}(L²y): if Lz ∈ V then Uz ∈ V,
(c) V does not contain L¹y.

There is a unique minimal prefix satisfying (a)-(b):

1. initialize V to the predecessors of L¹y;
2. while some z ∈ R_{T2}(L²y) has Lz ∈ V but Uz ∉ V, add Uz and all its
   predecessors.

A violating extension exists iff this minimal prefix does *not* contain
L¹y. Running the loop for every y gives an O(n³) test which must agree
with Theorem 3's O(n²) test on the overall verdict — the per-entity
diagnoses may differ (the paper notes the per-y conditions are not
equivalent, only their conjunctions are).
"""

from __future__ import annotations

from repro.analysis.pairs import common_first_locked_entity
from repro.analysis.sets import r_set
from repro.analysis.witnesses import PairViolation, Verdict
from repro.core.entity import Entity
from repro.core.transaction import Transaction

__all__ = ["check_pair_minimal_prefix", "minimal_prefix_mask"]


def minimal_prefix_mask(
    t1: Transaction, t2: Transaction, y: Entity
) -> int:
    """The minimal prefix of T1 satisfying properties (a)-(b) for ``y``.

    Returns the node bitmask of the prefix. ``t2`` supplies the set
    R_{T2}(L²y) used in property (b).
    """
    dag = t1.dag
    lock_y = t1.lock_node(y)
    mask = dag.ancestors(lock_y)
    blockers = r_set(t2, t2.lock_node(y)) & t1.entities
    changed = True
    while changed:
        changed = False
        for z in blockers:
            lock_z = t1.lock_node(z)
            unlock_z = t1.unlock_node(z)
            if mask >> lock_z & 1 and not mask >> unlock_z & 1:
                mask |= (1 << unlock_z) | dag.ancestors(unlock_z)
                changed = True
    return mask


def _violating_extension_exists(
    t1: Transaction, t2: Transaction, y: Entity
) -> bool:
    """True iff some t1 ∈ T1 has L_{t1}(Ly) ∩ R_{T2}(Ly) = ∅."""
    mask = minimal_prefix_mask(t1, t2, y)
    return not mask >> t1.lock_node(y) & 1


def check_pair_minimal_prefix(t1: Transaction, t2: Transaction) -> Verdict:
    """Decide pair safety-and-deadlock-freedom by minimal prefixes.

    Semantically equivalent to :func:`repro.analysis.pairs.check_pair`
    but follows the paper's first (cubic) algorithm; kept as an
    independent implementation for cross-validation and as the ablation
    baseline in the scaling benchmark.
    """
    s1, s2 = t1.lock_skeleton(), t2.lock_skeleton()
    common = sorted(s1.entities & s2.entities)
    if not common:
        return Verdict(
            True, "no common entities; trivially safe and deadlock-free"
        )
    x = common_first_locked_entity(s1, s2)
    if x is None:
        return Verdict(
            False,
            "condition (1) fails",
            witness=PairViolation(1, tuple(common[:2])),
        )
    for y in common:
        if y == x:
            continue
        if _violating_extension_exists(s1, s2, y):
            return Verdict(
                False,
                f"a linear extension violates Q1({y!r}) != {{}}",
                witness=PairViolation(2, (y,), side="L(t1)&R(t2)"),
                details={"x": x},
            )
        if _violating_extension_exists(s2, s1, y):
            return Verdict(
                False,
                f"a linear extension violates Q2({y!r}) != {{}}",
                witness=PairViolation(2, (y,), side="L(t2)&R(t1)"),
                details={"x": x},
            )
    return Verdict(
        True,
        "safe and deadlock-free (minimal-prefix algorithm)",
        details={"x": x},
    )
