"""Theorem 4: safety-and-deadlock-freedom for a fixed number of
transactions, polynomial in the input for each fixed k.

The algorithm (Section 5, "Many Transactions"):

1. Check every pair with Theorem 3; any failing pair refutes the system.
2. Otherwise, a violation — a partial schedule S' with cyclic D(S') —
   exists iff some *normal form* witness exists: a directed cycle
   T1 → T2 → ... → Tk → T1 of the interaction graph G(A), a designated
   last transaction (Tk after rotation), and prefixes T'_1, ..., T'_k
   such that

   (1) R(T'_1) ∩ R(T_k) = ∅, and R(T'_i) ∩ Y(T'_{i-1}) = ∅ for i ≥ 2,
       where Y(T') = entities of the transaction without their Unlock in
       T' (still held or untouched);
   (2) R(T'_i) ∩ R(T_j) = ∅ whenever T_j is not the cycle-predecessor of
       T_i (nor T_i itself, nor — for entities that produce the wanted
       arcs — its successor);
   (3) T'_i contains the step L x_i, where x_i is the unique entity of
       R(T_i) ∩ R(T_{i+1}) whose Lock precedes all common Locks in both
       (it exists because all pairs passed Theorem 3).

   The greedy *maximal* prefixes T*_i (computed in cycle order) dominate
   every admissible choice, so testing property (3) on them decides the
   existence of a witness for this oriented, rooted cycle.
3. If some oriented rooted cycle passes (1)-(3), the serial partial
   schedule S* = T*_1 ... T*_k is legal and D(S*) contains the cycle —
   the system is not safe-and-deadlock-free, with S* as certificate.

Every simple cycle of G(A) is enumerated in both directions and with
every rotation; the count is O(k! ) for complete interaction graphs,
which is the "constant depending on the number of transactions" of
Corollary 4.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.pairs import check_pair, common_first_locked_entity
from repro.analysis.witnesses import SerializationViolation, Verdict
from repro.core.prefix import SystemPrefix
from repro.core.schedule import Schedule
from repro.core.serialization import d_graph
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.util.bitset import from_indices
from repro.util.graphs import simple_cycles_undirected

__all__ = ["check_system", "normal_form_witness", "oriented_rooted_cycles"]


def oriented_rooted_cycles(
    system: TransactionSystem, max_cycles: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every simple cycle of G(A), oriented and rooted.

    Each yielded tuple ``(i1, ..., ik)`` lists transaction indices in
    traversal order with the convention that the *last* element plays the
    role of Tk (the designated last transaction). Every undirected simple
    cycle of length k contributes 2k variants.
    """
    adjacency = system.interaction_neighbors()
    nodes = sorted(adjacency)
    for cycle in simple_cycles_undirected(
        nodes, lambda u: sorted(adjacency[u]), min_length=3,
        max_cycles=max_cycles,
    ):
        k = len(cycle)
        for direction in (cycle, [cycle[0]] + cycle[:0:-1]):
            for shift in range(k):
                yield tuple(direction[shift:] + direction[:shift])


def _held_or_untouched(t: Transaction, mask: int) -> frozenset[str]:
    """Y(T'): entities of T whose Unlock is not in the prefix mask."""
    return frozenset(
        entity
        for entity in t.entities
        if not mask >> t.unlock_node(entity) & 1
    )


def _entities_locked(t: Transaction, mask: int) -> frozenset[str]:
    """R(T'): entities whose Lock is in the prefix mask."""
    return frozenset(
        entity
        for entity in t.entities
        if mask >> t.lock_node(entity) & 1
    )


def _maximal_prefix_avoiding(t: Transaction, forbidden: frozenset[str]) -> (
        int):
    """Largest prefix of T that locks no entity of ``forbidden``."""
    locks = from_indices(
        t.lock_node(entity) for entity in forbidden & t.entities
    )
    return t.dag.maximal_down_set_avoiding(locks)


def normal_form_witness(
    system: TransactionSystem, cycle: tuple[int, ...]
) -> SystemPrefix | None:
    """Try to build the Theorem 4 prefixes for one oriented rooted cycle.

    Args:
        system: the transaction system (pairs assumed to pass Theorem 3).
        cycle: transaction indices ``(i1, ..., ik)``, last one designated.

    Returns:
        The violating :class:`SystemPrefix` (empty prefixes off the
        cycle), or None if property (3) fails for this cycle.
    """
    k = len(cycle)
    txns = [system[i] for i in cycle]

    # x_i for each consecutive pair (including the closing pair k -> 1).
    first_locked: list[str] = []
    for pos in range(k):
        a, b = txns[pos], txns[(pos + 1) % k]
        x = common_first_locked_entity(a, b)
        if x is None:
            return None  # pair would have failed Theorem 3; caller handles
        first_locked.append(x)

    entity_sets = [t.entities for t in txns]
    masks: list[int] = []
    for pos in range(k):
        allowed = {pos, (pos - 1) % k, (pos + 1) % k}
        if pos == 0:
            # T1 additionally may not touch its cycle-predecessor Tk:
            # it runs first, and locking an entity of Tk would reverse or
            # chord the wanted arc Tk -> T1.
            allowed = {0, 1}
        forbidden: set[str] = set()
        for other in range(k):
            if other not in allowed:
                forbidden |= entity_sets[other]
        if pos > 0:
            forbidden |= _held_or_untouched(txns[pos - 1], masks[pos - 1])
        masks.append(_maximal_prefix_avoiding(txns[pos], frozenset(forbidden)))

    for pos in range(k):
        lock = txns[pos].lock_node(first_locked[pos])
        if not masks[pos] >> lock & 1:
            return None

    full_masks = [0] * len(system)
    for pos, index in enumerate(cycle):
        full_masks[index] = masks[pos]
    return SystemPrefix(system, full_masks)


def check_system(
    system: TransactionSystem, max_cycles: int | None = None
) -> Verdict:
    """Decide safety-and-deadlock-freedom of a transaction system.

    Polynomial for fixed ``len(system)`` (Theorem 4 / Corollary 4).

    Args:
        system: the system to analyse (actions are ignored).
        max_cycles: optional safety cap on interaction-graph cycles
            enumerated; ``None`` enumerates all (required for a sound
            "safe" verdict).

    Returns:
        Verdict whose witness, when failing via a cycle, is a
        :class:`SerializationViolation` carrying the normal-form partial
        schedule S* and the cycle of D(S*).
    """
    skeleton = system.lock_skeleton()
    n = len(skeleton)
    for i in range(n):
        for j in range(i + 1, n):
            pair = check_pair(skeleton[i], skeleton[j])
            if not pair:
                return Verdict(
                    False,
                    f"pair ({system[i].name}, {system[j].name}) fails "
                    f"Theorem 3: {pair.reason}",
                    witness=pair.witness,
                    details={"pair": (i, j)},
                )

    for cycle in oriented_rooted_cycles(skeleton, max_cycles=max_cycles):
        prefix = normal_form_witness(skeleton, cycle)
        if prefix is None:
            continue
        order = list(cycle)
        schedule = Schedule.serial_prefixes(prefix, order)
        digraph_cycle = d_graph(schedule, full=False).find_cycle()
        if digraph_cycle is None:  # pragma: no cover - guarded by theory
            raise AssertionError(
                "normal-form prefixes produced an acyclic D(S*); "
                "this contradicts Theorem 4"
            )
        return Verdict(
            False,
            "a normal-form partial schedule has a cyclic digraph "
            f"(cycle through {[system[i].name for i in cycle]})",
            witness=SerializationViolation(schedule, tuple(digraph_cycle)),
            details={"cycle": cycle},
        )
    return Verdict(True, "safe and deadlock-free (Theorem 4)")
