"""Corollary 1 as a (deliberately naive) algorithm.

Corollary 1: a system {T1, ..., Tn} is safe and deadlock-free iff every
choice of linear extensions {t1, ..., tn} is. This module decides the
pair case by enumerating extension pairs and applying the centralized
Lemma 2 test to each — correct, but exponential in the width of the
partial orders.

It exists as an ablation baseline: Theorem 3 gets the same answer in
O(n²), and the benchmark comparing the two is the cleanest
demonstration of what the paper's machinery buys. (The paper makes the
same point: "the corollary in itself does not imply a polynomial time
solution... there may be an exponential number of total orders".)
"""

from __future__ import annotations

from repro.analysis.centralized import check_centralized_pair
from repro.analysis.witnesses import Verdict
from repro.core.transaction import Transaction

__all__ = ["check_pair_by_extensions", "extension_pair_count"]


def extension_pair_count(t1: Transaction, t2: Transaction) -> int:
    """|ext(T1)| × |ext(T2)| — the work the naive algorithm faces."""
    return t1.dag.count_linear_extensions() * (
        t2.dag.count_linear_extensions()
    )


def check_pair_by_extensions(
    t1: Transaction,
    t2: Transaction,
    limit: int | None = 100_000,
) -> Verdict:
    """Decide pair safety-and-deadlock-freedom via Corollary 1.

    Args:
        t1: first transaction (any distribution).
        t2: second transaction.
        limit: abort with RuntimeError when more than this many
            extension pairs would be enumerated (None = no cap).

    Returns:
        Verdict; on failure the details carry the offending extension
        pair as operation-label sequences.

    Raises:
        RuntimeError: when the extension-pair count exceeds ``limit``.
    """
    s1, s2 = t1.lock_skeleton(), t2.lock_skeleton()
    if limit is not None:
        count = extension_pair_count(s1, s2)
        if count > limit:
            raise RuntimeError(
                f"{count} extension pairs exceed the limit {limit}; "
                "use repro.analysis.pairs.check_pair instead"
            )
    for e1 in s1.linear_extensions():
        for e2 in s2.linear_extensions():
            verdict = check_centralized_pair(e1, e2)
            if not verdict:
                return Verdict(
                    False,
                    f"extension pair violates Lemma 2: {verdict.reason}",
                    witness=verdict.witness,
                    details={
                        "t1": [str(op) for op in e1.ops],
                        "t2": [str(op) for op in e2.ops],
                    },
                )
    return Verdict(
        True, "all extension pairs are safe and deadlock-free "
        "(Corollary 1, exhaustive)"
    )
