"""Lemma 2: safety-and-deadlock-freedom of two *centralized* transactions.

A centralized transaction is a total order (one site). With
R = R(t1) ∩ R(t2), the pair {t1, t2} is safe and deadlock-free iff

1. the first entity of R locked by t1 equals the first entity of R
   locked by t2 (call it x), and
2. for every y ≠ x in R, the sets Q1(y) = L_{t1}(Ly) ∩ R_{t2}(Ly) and
   Q2(y) = L_{t2}(Ly) ∩ R_{t1}(Ly) are both non-empty,

where for a total order t, R_t(s) is the set of entities locked before
step s and L_t(s) the set locked-but-not-unlocked before s.

This module implements the sets with direct sequence scans (independent
of the distributed machinery) so that Theorem 3 restricted to total
orders can be validated against it.
"""

from __future__ import annotations

from repro.analysis.witnesses import PairViolation, Verdict
from repro.core.entity import Entity
from repro.core.operations import OpKind
from repro.core.transaction import Transaction

__all__ = [
    "check_centralized_pair",
    "sequence_l_set",
    "sequence_r_set",
]


def _as_sequence(t: Transaction) -> list:
    """The operation list of a total-order transaction.

    Raises:
        ValueError: if the transaction is not totally ordered.
    """
    if not t.is_sequential():
        raise ValueError(
            f"{t.name} is not a total order; Lemma 2 applies to "
            "centralized transactions only"
        )
    order = t.dag.topological_order()
    return [t.ops[node] for node in order]


def sequence_r_set(ops: list, position: int) -> frozenset[Entity]:
    """R_t(s): entities locked (possibly unlocked) before index
    ``position``."""
    locked = set()
    for op in ops[:position]:
        if op.kind is OpKind.LOCK:
            locked.add(op.entity)
    return frozenset(locked)


def sequence_l_set(ops: list, position: int) -> frozenset[Entity]:
    """L_t(s): entities locked but not unlocked before index
    ``position``."""
    held = set()
    for op in ops[:position]:
        if op.kind is OpKind.LOCK:
            held.add(op.entity)
        elif op.kind is OpKind.UNLOCK:
            held.discard(op.entity)
    return frozenset(held)


def _lock_position(ops: list, entity: Entity) -> int:
    for index, op in enumerate(ops):
        if op.kind is OpKind.LOCK and op.entity == entity:
            return index
    raise KeyError(entity)


def check_centralized_pair(t1: Transaction, t2: Transaction) -> Verdict:
    """Decide safety-and-deadlock-freedom of two total orders (Lemma 2)."""
    ops1 = [op for op in _as_sequence(t1) if op.kind is not OpKind.ACTION]
    ops2 = [op for op in _as_sequence(t2) if op.kind is not OpKind.ACTION]
    common = {op.entity for op in ops1} & {op.entity for op in ops2}
    if not common:
        return Verdict(
            True, "no common entities; trivially safe and deadlock-free"
        )

    first1 = next(
        op.entity
        for op in ops1
        if op.kind is OpKind.LOCK and op.entity in common
    )
    first2 = next(
        op.entity
        for op in ops2
        if op.kind is OpKind.LOCK and op.entity in common
    )
    if first1 != first2:
        return Verdict(
            False,
            "condition (1) of Lemma 2 fails",
            witness=PairViolation(1, (first1, first2)),
        )

    x = first1
    for y in sorted(common):
        if y == x:
            continue
        pos1 = _lock_position(ops1, y)
        pos2 = _lock_position(ops2, y)
        q1 = sequence_l_set(ops1, pos1) & sequence_r_set(ops2, pos2)
        if not q1:
            return Verdict(
                False,
                f"condition (2) of Lemma 2 fails at {y!r}",
                witness=PairViolation(2, (y,), side="Q1"),
                details={"x": x},
            )
        q2 = sequence_l_set(ops2, pos2) & sequence_r_set(ops1, pos1)
        if not q2:
            return Verdict(
                False,
                f"condition (2) of Lemma 2 fails at {y!r}",
                witness=PairViolation(2, (y,), side="Q2"),
                details={"x": x},
            )
    return Verdict(
        True, "safe and deadlock-free (Lemma 2)", details={"x": x}
    )
