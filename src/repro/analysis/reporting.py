"""One-call audit reports: everything the paper lets us say about a
workload, as a structured object and as text.

:func:`audit_system` runs the full static pipeline — pairwise Theorem 3
matrix, Theorem 4 over interaction-graph cycles, global-lock-order
prevention check — and packages verdicts, certificates and repair
advice. The CLI's ``analyze`` command and the examples are thin shells
around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fixed_k import check_system
from repro.analysis.pairs import check_pair
from repro.analysis.policies import find_global_lock_order
from repro.analysis.witnesses import Verdict
from repro.core.system import TransactionSystem
from repro.util.render import format_table

__all__ = ["AuditReport", "audit_system"]


@dataclass
class AuditReport:
    """Structured result of a full static audit.

    Attributes:
        system: the audited system.
        pair_verdicts: Theorem 3 verdict per transaction index pair.
        system_verdict: the Theorem 4 verdict.
        lock_order: a global lock order the workload already follows,
            when one exists (prevention certificate), else None.
    """

    system: TransactionSystem
    pair_verdicts: dict[tuple[int, int], Verdict] = field(
        default_factory=dict
    )
    system_verdict: Verdict | None = None
    lock_order: list[str] | None = None

    @property
    def ok(self) -> bool:
        """True when the whole system is safe and deadlock-free."""
        return bool(self.system_verdict)

    @property
    def failing_pairs(self) -> list[tuple[int, int]]:
        return [
            pair
            for pair, verdict in sorted(self.pair_verdicts.items())
            if not verdict
        ]

    def to_text(self) -> str:
        """Render the report as an aligned plain-text document."""
        system = self.system
        lines = [
            f"audit of {len(system)} transactions, "
            f"{len(system.entities)} entities, "
            f"{len(system.schema.sites)} sites",
            "",
        ]
        rows = []
        for (i, j), verdict in sorted(self.pair_verdicts.items()):
            rows.append(
                [
                    f"{system[i].name}, {system[j].name}",
                    "ok" if verdict else "VIOLATION",
                    verdict.reason,
                ]
            )
        if rows:
            lines.append(format_table(["pair", "verdict", "reason"], rows))
            lines.append("")
        assert self.system_verdict is not None
        status = (
            "SAFE AND DEADLOCK-FREE"
            if self.system_verdict
            else "NOT safe-and-deadlock-free"
        )
        lines.append(f"system: {status}")
        lines.append(self.system_verdict.describe())
        if self.lock_order is not None:
            lines.append(
                "prevention: transactions already follow the global "
                f"lock order {self.lock_order}"
            )
        elif self.ok:
            lines.append(
                "prevention: no single global lock order, but the "
                "Theorem 4 certificate holds regardless"
            )
        else:
            lines.append(
                "suggestion: repro.analysis.policies.repair_system "
                "re-locks the workload 2PL along a global order"
            )
        return "\n".join(lines)


def audit_system(system: TransactionSystem) -> AuditReport:
    """Run the full static pipeline on a system."""
    report = AuditReport(system)
    n = len(system)
    skeleton = system.lock_skeleton()
    for i in range(n):
        for j in range(i + 1, n):
            if not system.common_entities(i, j):
                continue
            report.pair_verdicts[(i, j)] = check_pair(
                skeleton[i], skeleton[j]
            )
    report.system_verdict = check_system(system)
    report.lock_order = find_global_lock_order(system)
    return report
