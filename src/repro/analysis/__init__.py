"""Static analyses: the paper's algorithms plus exhaustive oracles."""

from repro.analysis.bipartite import (
    find_lock_only_deadlock_prefix,
    is_deadlock_free_lock_minimal,
    is_lock_minimal,
)
from repro.analysis.centralized import check_centralized_pair
from repro.analysis.copies import check_copies, check_two_copies
from repro.analysis.extensions import (
    check_pair_by_extensions,
    extension_pair_count,
)
from repro.analysis.exhaustive import (
    SearchBudgetExceeded,
    enumerate_complete_schedules,
    find_deadlock,
    find_lemma1_violation,
    find_unserializable_schedule,
    is_deadlock_free,
    is_safe,
    is_safe_and_deadlock_free,
)
from repro.analysis.fixed_k import check_system, normal_form_witness
from repro.analysis.minimal_prefix import (
    check_pair_minimal_prefix,
    minimal_prefix_mask,
)
from repro.analysis.optimize import (
    OptimizationReport,
    early_unlock,
    holding_span,
)
from repro.analysis.pairs import (
    check_pair,
    common_first_locked_entity,
    is_pair_safe_deadlock_free,
)
from repro.analysis.policies import (
    certify_prevention,
    find_global_lock_order,
    follows_lock_order,
    relock_two_phase_ordered,
    repair_system,
)
from repro.analysis.sets import l_set, r_set
from repro.analysis.tirri import find_two_entity_pattern, tirri_check_pair
from repro.analysis.witnesses import (
    DeadlockWitness,
    PairViolation,
    SerializationViolation,
    Verdict,
)

__all__ = [
    "DeadlockWitness",
    "OptimizationReport",
    "PairViolation",
    "SearchBudgetExceeded",
    "SerializationViolation",
    "Verdict",
    "certify_prevention",
    "check_centralized_pair",
    "check_copies",
    "check_pair",
    "check_pair_by_extensions",
    "check_pair_minimal_prefix",
    "check_system",
    "check_two_copies",
    "early_unlock",
    "extension_pair_count",
    "find_lock_only_deadlock_prefix",
    "holding_span",
    "is_deadlock_free_lock_minimal",
    "is_lock_minimal",
    "common_first_locked_entity",
    "enumerate_complete_schedules",
    "find_deadlock",
    "find_global_lock_order",
    "find_lemma1_violation",
    "find_two_entity_pattern",
    "find_unserializable_schedule",
    "follows_lock_order",
    "is_deadlock_free",
    "is_pair_safe_deadlock_free",
    "is_safe",
    "is_safe_and_deadlock_free",
    "l_set",
    "minimal_prefix_mask",
    "normal_form_witness",
    "r_set",
    "relock_two_phase_ordered",
    "repair_system",
    "tirri_check_pair",
]
