"""Tirri's (incorrect) two-entity deadlock test — kept as a baseline.

Tirri [T, PODC 1983] gave a polynomial algorithm for deadlock-freedom of
a pair of distributed transactions built on the premise:

    if a deadlock between T1 and T2 arises, then there are two entities
    x, y accessed by both such that L¹y ≺ U¹x, L²x ≺ U²y,
    L¹y ⊀ L¹x and L²x ⊀ L²y.

Section 3 of Wolfson & Yannakakis refutes the premise: a deadlock can be
carried by a reduction-graph cycle through **more than two** entities
(Figure 2), which this test cannot see. We implement the premise-based
checker faithfully so the Figure 2 benchmark can demonstrate the false
negative against the exhaustive oracle.
"""

from __future__ import annotations

from repro.analysis.witnesses import Verdict
from repro.core.transaction import Transaction

__all__ = ["find_two_entity_pattern", "tirri_check_pair"]


def find_two_entity_pattern(
    t1: Transaction, t2: Transaction
) -> tuple[str, str] | None:
    """Search for the two-entity pattern of Tirri's premise.

    Returns:
        ``(x, y)`` realizing the pattern, or None.
    """
    s1, s2 = t1.lock_skeleton(), t2.lock_skeleton()
    common = sorted(s1.entities & s2.entities)
    for x in common:
        for y in common:
            if x == y:
                continue
            if not s1.dag.precedes(s1.lock_node(y), s1.unlock_node(x)):
                continue
            if not s2.dag.precedes(s2.lock_node(x), s2.unlock_node(y)):
                continue
            if s1.dag.precedes(s1.lock_node(y), s1.lock_node(x)):
                continue
            if s2.dag.precedes(s2.lock_node(x), s2.lock_node(y)):
                continue
            return x, y
    return None


def tirri_check_pair(t1: Transaction, t2: Transaction) -> Verdict:
    """Tirri's deadlock-freedom verdict for a pair. **Unsound**: it can
    report "deadlock-free" for pairs that do deadlock (Figure 2).

    Returns:
        Verdict(True) when the two-entity pattern is absent (Tirri would
        declare the pair deadlock-free), Verdict(False) with the pattern
        otherwise.
    """
    pattern = find_two_entity_pattern(t1, t2)
    if pattern is None:
        return Verdict(
            True,
            "no two-entity wait pattern; Tirri's test declares the pair "
            "deadlock-free (NOT a sound conclusion — see Figure 2)",
        )
    x, y = pattern
    return Verdict(
        False,
        f"two-entity wait pattern on ({x!r}, {y!r}): a deadlock may occur",
        details={"pattern": pattern},
    )
