"""Complete deadlock decision for *lock-minimal* transaction systems.

A transaction is **lock-minimal** when no Lock node has a predecessor
(equivalently: every arc leaves a Lock and enters an Unlock — the shape
of the Theorem 2 construction and of Figure 2). For such systems the
deadlock-prefix search collapses:

Lemma (implicit in the converse direction of the paper's Theorem 2
proof): *a lock-minimal system has a deadlock prefix iff it has one
whose prefixes consist of Lock nodes only.*

Proof sketch: let A' be a deadlock prefix with cycle M in R(A'). Replace
each prefix by the Lock nodes of its currently-held entities (drop
executed Unlocks and the Locks of already-released entities). Lock nodes
have no predecessors, so the result is a legal prefix; it is trivially
schedulable (held sets are unchanged, hence disjoint); un-executing
nodes only *adds* nodes and arcs to the reduction graph while every held
entity stays held, so M survives. ∎

A lock-only prefix is determined by a *holder assignment* — a partial
map from entities to transactions — so deadlock-freedom reduces to
scanning (k+1)^|E| assignments instead of exploring interleavings. For
the Theorem 2 instances this is what makes the UNSAT direction checkable
at all: the generic state search (:func:`repro.analysis.exhaustive.
find_deadlock`) drowns in the exponential schedule space.
"""

from __future__ import annotations

from itertools import product

from repro.analysis.witnesses import DeadlockWitness, Verdict
from repro.core.operations import OpKind
from repro.core.prefix import SystemPrefix
from repro.core.reduction import reduction_graph
from repro.core.system import TransactionSystem

__all__ = [
    "find_lock_only_deadlock_prefix",
    "is_deadlock_free_lock_minimal",
    "is_lock_minimal",
]


def is_lock_minimal(system: TransactionSystem) -> bool:
    """True if no Lock node of any transaction has a predecessor."""
    for t in system.transactions:
        for node, op in enumerate(t.ops):
            if op.kind is OpKind.LOCK and t.dag.ancestors(node):
                return False
    return True


def find_lock_only_deadlock_prefix(
    system: TransactionSystem,
) -> DeadlockWitness | None:
    """Scan holder assignments for a deadlock prefix (lock-minimal only).

    Complexity: O((k+1)^|E| · poly); |E| counts only entities accessed
    by at least two transactions (others cannot carry cross arcs, and
    holding them never helps a cycle).

    The inner loop works on a flattened integer graph: nodes of
    transaction i are offset by the node counts of earlier transactions;
    the static intra-transaction arcs are precomputed once and only the
    per-assignment cross arcs and excluded Lock nodes vary.

    Raises:
        ValueError: if the system is not lock-minimal (the reduction
            lemma would be unsound).
    """
    if not is_lock_minimal(system):
        raise ValueError(
            "system is not lock-minimal; use the general searches"
        )
    shared = sorted(
        entity
        for entity in system.entities
        if len(system.accessors(entity)) >= 2
    )

    offsets = []
    total = 0
    for t in system.transactions:
        offsets.append(total)
        total += t.node_count
    static_succ: list[list[int]] = [[] for _ in range(total)]
    for i, t in enumerate(system.transactions):
        for u, v in t.dag.arcs:
            static_succ[offsets[i] + u].append(offsets[i] + v)
    # Flat ids of each entity's Lock/Unlock per accessor.
    lock_flat = {
        entity: {
            j: offsets[j] + system[j].lock_node(entity)
            for j in system.accessors(entity)
        }
        for entity in shared
    }
    unlock_flat = {
        entity: {
            j: offsets[j] + system[j].unlock_node(entity)
            for j in system.accessors(entity)
        }
        for entity in shared
    }

    # Holder choices come before None: dense assignments — the ones
    # that can actually carry a cycle — are visited first, so the SAT
    # side of Theorem 2 instances exits early while the UNSAT side
    # still scans everything (as it must).
    choice_sets = [(*system.accessors(entity), None) for entity in shared]
    for assignment in product(*choice_sets):
        if all(holder is None for holder in assignment):
            continue  # no cross arcs; static graph is acyclic
        excluded: set[int] = set()
        cross: dict[int, list[int]] = {}
        for entity, holder in zip(shared, assignment):
            if holder is None:
                continue
            excluded.add(lock_flat[entity][holder])
            source = unlock_flat[entity][holder]
            targets = [
                flat
                for j, flat in lock_flat[entity].items()
                if j != holder
            ]
            cross.setdefault(source, []).extend(targets)
        if _flat_cycle_exists(total, static_succ, cross, excluded):
            masks = [0] * len(system)
            for entity, holder in zip(shared, assignment):
                if holder is not None:
                    masks[holder] |= 1 << system[holder].lock_node(entity)
            prefix = SystemPrefix(system, masks)
            cycle = reduction_graph(prefix).find_cycle()
            assert cycle is not None
            return DeadlockWitness(prefix, tuple(cycle))
    return None


def _flat_cycle_exists(
    total: int,
    static_succ: list[list[int]],
    cross: dict[int, list[int]],
    excluded: set[int],
) -> bool:
    """Cycle test on the flattened reduction graph.

    Only nodes reachable from cross arcs can lie on a cycle (static arcs
    alone are acyclic), so the DFS starts from cross-arc sources.
    """
    color = bytearray(total)  # 0 white, 1 gray, 2 black
    for start in cross:
        if color[start]:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        color[start] = 1
        path_succ: list[list[int]] = [
            static_succ[start] + cross.get(start, [])
        ]
        while stack:
            node, idx = stack[-1]
            succ = path_succ[-1]
            if idx < len(succ):
                stack[-1] = (node, idx + 1)
                nxt = succ[idx]
                if nxt in excluded:
                    continue
                state = color[nxt]
                if state == 1:
                    return True
                if state == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
                    path_succ.append(
                        static_succ[nxt] + cross.get(nxt, [])
                    )
            else:
                color[node] = 2
                stack.pop()
                path_succ.pop()
    return False


def is_deadlock_free_lock_minimal(system: TransactionSystem) -> Verdict:
    """Decide deadlock-freedom of a lock-minimal system exactly."""
    witness = find_lock_only_deadlock_prefix(system)
    if witness is None:
        return Verdict(
            True, "deadlock-free (lock-only prefix scan is exhaustive "
            "for lock-minimal systems)"
        )
    return Verdict(
        False, "a lock-only deadlock prefix exists", witness=witness
    )
