"""Locking-policy predicates and deadlock-prevention repairs.

The paper's context (Section 6): in practice transactions are locked by
some safe policy (two-phase locking being the dominant one), and the
interesting question is then deadlock-freedom. This module provides the
classical structural policies and a repair transform that makes an
arbitrary workload safe-and-deadlock-free by re-locking it 2PL along a
global entity order — the textbook prevention scheme the paper's static
tests can then certify.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.witnesses import Verdict
from repro.core.entity import Entity
from repro.core.operations import Operation
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.util.graphs import topological_sort

__all__ = [
    "find_global_lock_order",
    "follows_lock_order",
    "relock_two_phase_ordered",
    "repair_system",
]


def follows_lock_order(
    transaction: Transaction, order: Sequence[Entity]
) -> bool:
    """True if every pair of Locks is ordered consistently with ``order``.

    Entities absent from ``order`` are unconstrained. Two locks on ranked
    entities must be *comparable* in the partial order and acquired in
    rank order — incomparable locks could be acquired either way at run
    time, so they do not follow the discipline.
    """
    rank = {entity: i for i, entity in enumerate(order)}
    t = transaction.lock_skeleton()
    ranked = [e for e in t.entities if e in rank]
    ranked.sort(key=lambda e: rank[e])
    for i, a in enumerate(ranked):
        for b in ranked[i + 1:]:
            if not t.dag.precedes(t.lock_node(a), t.lock_node(b)):
                return False
    return True


def find_global_lock_order(system: TransactionSystem) -> (
        list[Entity] | None):
    """Find a global entity order all transactions' Locks respect.

    Returns:
        A total order of the system's entities such that every
        transaction acquires its locks along it, or None when the
        workload's existing lock orders conflict (or some transaction
        acquires two locks incomparably).
    """
    entities = sorted(system.entities)
    arcs: dict[Entity, set[Entity]] = {e: set() for e in entities}
    for transaction in system.transactions:
        t = transaction.lock_skeleton()
        accessed = sorted(t.entities)
        for i, a in enumerate(accessed):
            for b in accessed[i + 1:]:
                if t.dag.precedes(t.lock_node(a), t.lock_node(b)):
                    arcs[a].add(b)
                elif t.dag.precedes(t.lock_node(b), t.lock_node(a)):
                    arcs[b].add(a)
                else:
                    return None  # incomparable locks: no static order
    try:
        return topological_sort(entities, lambda e: sorted(arcs[e]))
    except ValueError:
        return None


def relock_two_phase_ordered(
    transaction: Transaction, order: Sequence[Entity]
) -> Transaction:
    """Re-lock a transaction 2PL along a global entity order.

    The result is a sequential transaction: Locks in rank order, then the
    original actions (one per action node, grouped by entity in rank
    order), then Unlocks in reverse rank order. Accessed entities and the
    schema are preserved; only the locking skeleton changes.
    """
    rank = {entity: i for i, entity in enumerate(order)}
    accessed = sorted(
        transaction.entities, key=lambda e: (rank.get(e, len(rank)), e)
    )
    ops: list[Operation] = [Operation.lock(e) for e in accessed]
    for entity in accessed:
        count = len(transaction.action_nodes(entity))
        ops.extend(Operation.action(entity) for _ in range(count))
    ops.extend(Operation.unlock(e) for e in reversed(accessed))
    return Transaction.sequential(
        transaction.name, ops, transaction.schema
    )


def repair_system(system: TransactionSystem) -> (
        tuple[TransactionSystem, list[Entity]]):
    """Rewrite every transaction 2PL along one global order.

    Uses the workload's own consistent order when one exists, otherwise
    the lexicographic entity order. The result always passes Theorem 4's
    safe-and-deadlock-free test (all pairs share the first-locked common
    entity and hold earlier locks across later ones).

    Returns:
        ``(repaired_system, order)``.
    """
    order = find_global_lock_order(system)
    if order is None:
        order = sorted(system.entities)
    repaired = [
        relock_two_phase_ordered(t, order) for t in system.transactions
    ]
    return TransactionSystem(repaired), order


def certify_prevention(system: TransactionSystem) -> Verdict:
    """Convenience: does a global lock order statically prevent deadlock?

    This is the classical *prevention* argument; it is sufficient but not
    necessary (the paper's tests are exact for pairs and fixed k).
    """
    order = find_global_lock_order(system)
    if order is None:
        return Verdict(
            False,
            "no global lock order is respected by every transaction",
        )
    return Verdict(
        True,
        "all transactions acquire locks along a common global order",
        details={"order": order},
    )
