"""Copies of one transaction: Corollary 3 and Theorem 5.

Corollary 3: two copies of a distributed transaction T are safe and
deadlock-free iff there is an entity x whose Lock precedes all other
nodes of T, and for every other entity y some entity z is locked before
Ly and unlocked after Ly.

Theorem 5: a system of **any** number of copies of T is safe and
deadlock-free iff two copies are. (The proof: the interaction graph of d
copies is complete, and on any cycle of length ≥ 3 the first maximal
prefix T*_1 is empty, so no normal-form witness survives beyond what the
pair analysis already sees.)

The analogue for deadlock-freedom *alone* is false — Figure 6 exhibits a
transaction whose 3 copies deadlock while 2 copies cannot; see
:func:`repro.paper.figures.figure6` and the EXP-F6 benchmark.
"""

from __future__ import annotations

from repro.analysis.witnesses import PairViolation, Verdict
from repro.core.transaction import Transaction

__all__ = ["check_two_copies", "check_copies"]


def check_two_copies(transaction: Transaction) -> Verdict:
    """Corollary 3 test on the lock skeleton of ``transaction``."""
    t = transaction.lock_skeleton()
    entities = sorted(t.entities)
    if len(entities) <= 1:
        return Verdict(
            True, "at most one entity; copies serialize on its lock"
        )

    dag = t.dag
    all_nodes = dag.all_nodes_mask()
    x = None
    for candidate in entities:
        lock = t.lock_node(candidate)
        others = all_nodes & ~(1 << lock)
        if dag.descendants(lock) == others:
            x = candidate
            break
    if x is None:
        return Verdict(
            False,
            "no entity's Lock precedes all other nodes of T",
            witness=PairViolation(1, tuple(entities[:2])),
        )

    for y in entities:
        if y == x:
            continue
        lock_y = t.lock_node(y)
        guarded = False
        for z in entities:
            if z == y:
                continue
            if dag.precedes(t.lock_node(z), lock_y) and dag.precedes(
                lock_y, t.unlock_node(z)
            ):
                guarded = True
                break
        if not guarded:
            return Verdict(
                False,
                f"no entity is locked before L{y} and unlocked after it",
                witness=PairViolation(2, (y,)),
                details={"x": x},
            )
    return Verdict(
        True, "two copies are safe and deadlock-free (Corollary 3)",
        details={"x": x},
    )


def check_copies(transaction: Transaction, count: int) -> Verdict:
    """Theorem 5: d copies are safe+DF iff two copies are (d >= 2)."""
    if count <= 1:
        return Verdict(True, "a single transaction is trivially safe")
    verdict = check_two_copies(transaction)
    if verdict:
        return Verdict(
            True,
            f"{count} copies are safe and deadlock-free (Theorem 5 via "
            "Corollary 3)",
            details=verdict.details,
        )
    return Verdict(
        False,
        f"{count} copies are not safe and deadlock-free: {verdict.reason}",
        witness=verdict.witness,
        details=verdict.details,
    )
