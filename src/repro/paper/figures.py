"""Programmatic reconstructions of Figures 1, 2, 3, 5 and 6.

The source scan is OCR-degraded, so each construction is rebuilt to
satisfy every property the paper's prose asserts about it; the test
suite checks those assertions against the exhaustive oracle:

* Figure 1 — three transactions over two sites with a deadlock prefix
  whose reduction graph contains the quoted cycle
  L¹z, U¹y, L²y, U²x, L³x, U³z (back to L¹z).
* Figure 2 — a single dag such that two transactions with that same
  syntax deadlock through a four-entity reduction cycle although no two
  entities exhibit Tirri's wait pattern.
* Figure 3 — a dag T such that {T, T} is deadlock-free although the
  linear extensions t₁ = Lx Ly Ux Uy and t₂ = Ly Lx Ux Uy deadlock.
* Figure 5 — the example 3SAT′ formula (x₁+x₂)(x₁+x̄₂)(x̄₁+x₂) fed to
  the Theorem 2 construction (the transactions themselves are built by
  :func:`repro.reductions.encoding.encode_formula`).
* Figure 6 — a transaction whose three copies can deadlock while two
  copies cannot (so Theorem 5 has no deadlock-freedom-only analogue).
"""

from __future__ import annotations

from repro.core.entity import DatabaseSchema
from repro.core.prefix import SystemPrefix
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction, TransactionBuilder

__all__ = [
    "figure1",
    "figure1_prefix",
    "figure2",
    "figure2_prefix",
    "figure3",
    "figure3_extensions",
    "figure5_formula",
    "figure6",
]


def figure1() -> TransactionSystem:
    """The three transactions of Figure 1 (entities x, y @ site 1; z @ 2).

    T1 spans both sites; its site-1 sequence is Lx Ux Ly Uy and its
    site-2 sequence Lz Uz, with cross-site arcs Ly -> Lz and Lz -> Uy.
    T2 runs at site 1 only: Lx Ly Uy Ux. T3 holds z while it visits
    site 1: Lz -> Lx -> {Ux, Uz}.
    """
    schema = DatabaseSchema.from_groups(
        {"site1": ["x", "y"], "site2": ["z"]}
    )

    b1 = TransactionBuilder("T1", schema)
    lx, ux = b1.lock("x"), b1.unlock("x")
    ly, uy = b1.lock("y"), b1.unlock("y")
    lz, uz = b1.lock("z"), b1.unlock("z")
    b1.chain(lx, ux, ly, uy)
    b1.chain(lz, uz)
    b1.arc(ly, lz)
    b1.arc(lz, uy)
    t1 = b1.build()

    t2 = Transaction.sequential("T2", ["Lx", "Ly", "Uy", "Ux"], schema)

    b3 = TransactionBuilder("T3", schema)
    lz3, uz3 = b3.lock("z"), b3.unlock("z")
    lx3, ux3 = b3.lock("x"), b3.unlock("x")
    b3.chain(lz3, uz3)
    b3.chain(lx3, ux3)
    b3.arc(lz3, lx3)
    b3.arc(lx3, uz3)
    t3 = b3.build()

    return TransactionSystem([t1, t2, t3])


def figure1_prefix(system: TransactionSystem | None = None) -> SystemPrefix:
    """The deadlock prefix of Figure 1d: T1:{Lx,Ux,Ly}, T2:{Lx}, T3:{Lz}."""
    if system is None:
        system = figure1()
    return SystemPrefix.from_labels(
        system, [["Lx", "Ux", "Ly"], ["Lx"], ["Lz"]]
    )


def figure2() -> TransactionSystem:
    """Two transactions with the identical syntax of Figure 2a.

    Entities v, t, z, w each live at their own site. Both transactions
    consist of the four Lock/Unlock pairs plus the arcs
    Lv -> Ut, Lt -> Uz, Lz -> Uw, Lw -> Uv. No pair of entities shows
    Tirri's two-entity pattern, yet the prefix of :func:`figure2_prefix`
    deadlocks through all four entities.
    """
    schema = DatabaseSchema.site_per_entity(["v", "t", "z", "w"])

    def build(name: str) -> Transaction:
        b = TransactionBuilder(name, schema)
        nodes = {}
        for entity in ("v", "t", "z", "w"):
            nodes[f"L{entity}"] = b.lock(entity)
            nodes[f"U{entity}"] = b.unlock(entity)
            b.arc(nodes[f"L{entity}"], nodes[f"U{entity}"])
        b.arc(nodes["Lv"], nodes["Ut"])
        b.arc(nodes["Lt"], nodes["Uz"])
        b.arc(nodes["Lz"], nodes["Uw"])
        b.arc(nodes["Lw"], nodes["Uv"])
        return b.build()

    return TransactionSystem([build("T1"), build("T2")])


def figure2_prefix(system: TransactionSystem | None = None) -> SystemPrefix:
    """The deadlock prefix of Figure 2b: T1 locked {t, w}, T2 locked
    {v, z}."""
    if system is None:
        system = figure2()
    return SystemPrefix.from_labels(system, [["Lt", "Lw"], ["Lv", "Lz"]])


def figure3() -> TransactionSystem:
    """Two copies of the Figure 3 dag (x @ site 1, y @ site 2).

    T = {Lx -> Ux -> Uy, Ly -> Uy}: Lx and Ly are unordered, but x is
    always released before y. The pair of partial orders is
    deadlock-free, while the extension pair of
    :func:`figure3_extensions` deadlocks — deadlock-freedom does not
    reduce to linear extensions.
    """
    schema = DatabaseSchema.from_groups({"site1": ["x"], "site2": ["y"]})

    def build(name: str) -> Transaction:
        b = TransactionBuilder(name, schema)
        lx, ux = b.lock("x"), b.unlock("x")
        ly, uy = b.lock("y"), b.unlock("y")
        b.chain(lx, ux, uy)
        b.arc(ly, uy)
        return b.build()

    return TransactionSystem([build("T1"), build("T2")])


def figure3_extensions() -> TransactionSystem:
    """The deadlocking extensions t1 = Lx Ly Ux Uy, t2 = Ly Lx Ux Uy."""
    schema = DatabaseSchema.from_groups({"site1": ["x"], "site2": ["y"]})
    t1 = Transaction.sequential("t1", ["Lx", "Ly", "Ux", "Uy"], schema)
    t2 = Transaction.sequential("t2", ["Ly", "Lx", "Ux", "Uy"], schema)
    return TransactionSystem([t1, t2])


def figure5_formula():
    """The example formula of Figure 5: (x1+x2)(x1+~x2)(~x1+x2).

    Each variable occurs exactly twice positively and once negatively, as
    3SAT′ requires. Returns a :class:`repro.reductions.cnf.CnfFormula`.
    """
    from repro.reductions.cnf import CnfFormula

    return CnfFormula.from_lists(
        [["x1", "x2"], ["x1", "~x2"], ["~x1", "x2"]]
    )


def figure6() -> Transaction:
    """The Figure 6 transaction: three copies deadlock, two cannot.

    Entities x, y, z on three sites; arcs Lx -> Uz, Ly -> Ux, Lz -> Uy
    besides the three Lock->Unlock pairs. Each copy can grab one entity
    and stall, but with only two copies some Unlock is always enabled.
    """
    schema = DatabaseSchema.site_per_entity(["x", "y", "z"])
    b = TransactionBuilder("T", schema)
    lx, ux = b.lock("x"), b.unlock("x")
    ly, uy = b.lock("y"), b.unlock("y")
    lz, uz = b.lock("z"), b.unlock("z")
    b.arc(lx, ux)
    b.arc(ly, uy)
    b.arc(lz, uz)
    b.arc(ly, ux)
    b.arc(lz, uy)
    b.arc(lx, uz)
    return b.build()
