"""Executable reconstructions of the paper's figures."""

from repro.paper.figures import (
    figure1,
    figure1_prefix,
    figure2,
    figure2_prefix,
    figure3,
    figure3_extensions,
    figure5_formula,
    figure6,
)

__all__ = [
    "figure1",
    "figure1_prefix",
    "figure2",
    "figure2_prefix",
    "figure3",
    "figure3_extensions",
    "figure5_formula",
    "figure6",
]
