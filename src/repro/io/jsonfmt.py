"""JSON (de)serialization of transaction systems."""

from __future__ import annotations

import json

from repro.core.entity import DatabaseSchema
from repro.core.operations import Operation
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction

__all__ = ["system_from_json", "system_to_json"]

_FORMAT_VERSION = 1


def system_to_json(system: TransactionSystem, indent: int | None = 2) -> str:
    """Serialize a system to a JSON document."""
    payload = {
        "version": _FORMAT_VERSION,
        "schema": {
            entity: system.schema.site_of(entity)
            for entity in sorted(system.entities)
        },
        "transactions": [
            {
                "name": t.name,
                "ops": [str(op) for op in t.ops],
                "arcs": sorted([list(arc) for arc in t.dag.arcs]),
            }
            for t in system.transactions
        ],
    }
    return json.dumps(payload, indent=indent)


def system_from_json(text: str) -> TransactionSystem:
    """Parse a system from a JSON document produced by
    :func:`system_to_json`.

    Raises:
        ValueError: on version mismatch or malformed structure.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("top-level JSON value must be an object")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    schema = DatabaseSchema(dict(payload["schema"]))
    transactions = []
    for entry in payload["transactions"]:
        ops = [Operation.parse(text) for text in entry["ops"]]
        arcs = [(int(u), int(v)) for u, v in entry["arcs"]]
        transactions.append(
            Transaction(entry["name"], ops, arcs, schema)
        )
    return TransactionSystem(transactions)
