"""A small line-oriented text format for transaction systems.

Example::

    schema site1: x y
    schema site2: z

    txn T1
      seq Lx Ux Ly Uy
      seq Lz Uz
      arc Ly -> Lz
      arc Lz -> Uy
    end

    txn T2
      seq Lx Ly Uy Ux
    end

Rules:

* ``schema SITE: ENTITY...`` lines define the placement (entities not
  mentioned default to one site per entity);
* each ``txn NAME ... end`` block lists ``seq`` chains (each a total
  order of steps) and extra ``arc A -> B`` precedences;
* a step is referenced by its label: ``Lx``, ``Ux``, ``A.x``; when the
  same action label occurs several times, suffix the occurrence index:
  ``A.x#2`` is the second ``A.x`` in the block's definition order.
* ``#`` begins a comment when it starts a line or follows whitespace
  (so ``A.x#2`` is never a comment); blank lines are ignored.
"""

from __future__ import annotations

from repro.core.entity import DatabaseSchema
from repro.core.operations import Operation, OpKind
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction

__all__ = ["ParseError", "format_system", "parse_system"]


class ParseError(ValueError):
    """Malformed text-format input; carries the 1-based line number."""

    def __init__(self, line_no: int, message: str):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}")


def _strip_comment(raw: str) -> str:
    """Drop a trailing comment.

    ``#`` starts a comment only at the beginning of a line or after
    whitespace; a ``#`` glued to a token is an occurrence index
    (``A.x#2``).
    """
    if raw.lstrip().startswith("#"):
        return ""
    for index in range(len(raw)):
        if raw[index] == "#" and index > 0 and raw[index - 1].isspace():
            return raw[:index]
    return raw


class _TxnBlock:
    """Accumulates one transaction's ops and arcs during parsing."""

    def __init__(self, name: str):
        self.name = name
        self.ops: list[Operation] = []
        self.arcs: list[tuple[int, int]] = []
        self._label_nodes: dict[str, list[int]] = {}

    def add_op(self, text: str, line_no: int) -> int:
        try:
            op = Operation.parse(text)
        except ValueError as exc:
            raise ParseError(line_no, str(exc)) from exc
        node = len(self.ops)
        self.ops.append(op)
        self._label_nodes.setdefault(str(op), []).append(node)
        return node

    def resolve(self, label: str, line_no: int) -> int:
        base, _, index_text = label.partition("#")
        nodes = self._label_nodes.get(base)
        if not nodes:
            raise ParseError(
                line_no, f"unknown step {base!r} in txn {self.name!r}"
            )
        if index_text:
            try:
                index = int(index_text)
            except ValueError:
                raise ParseError(
                    line_no, f"bad occurrence index in {label!r}"
                ) from None
            if not 1 <= index <= len(nodes):
                raise ParseError(
                    line_no,
                    f"{base!r} has {len(nodes)} occurrence(s), "
                    f"requested #{index}",
                )
            return nodes[index - 1]
        if len(nodes) > 1:
            raise ParseError(
                line_no,
                f"step {base!r} is ambiguous ({len(nodes)} occurrences); "
                f"use {base}#k",
            )
        return nodes[0]


def parse_system(text: str) -> TransactionSystem:
    """Parse the text format into a :class:`TransactionSystem`.

    Raises:
        ParseError: with the offending line number, on malformed input.
    """
    placement: dict[str, str] = {}
    blocks: list[_TxnBlock] = []
    current: _TxnBlock | None = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "schema":
            if current is not None:
                raise ParseError(line_no, "schema inside txn block")
            rest = line[len("schema"):].strip()
            site, _, entity_text = rest.partition(":")
            site = site.strip()
            entities = entity_text.split()
            if not site or not entities:
                raise ParseError(
                    line_no, "expected 'schema SITE: ENTITY...'"
                )
            for entity in entities:
                if placement.get(entity, site) != site:
                    raise ParseError(
                        line_no, f"entity {entity!r} placed at two sites"
                    )
                placement[entity] = site
        elif keyword == "txn":
            if current is not None:
                raise ParseError(line_no, "nested txn block")
            if len(tokens) != 2:
                raise ParseError(line_no, "expected 'txn NAME'")
            current = _TxnBlock(tokens[1])
        elif keyword == "end":
            if current is None:
                raise ParseError(line_no, "'end' outside txn block")
            blocks.append(current)
            current = None
        elif keyword == "seq":
            if current is None:
                raise ParseError(line_no, "'seq' outside txn block")
            nodes = [current.add_op(tok, line_no) for tok in tokens[1:]]
            current.arcs.extend(zip(nodes, nodes[1:]))
        elif keyword == "arc":
            if current is None:
                raise ParseError(line_no, "'arc' outside txn block")
            rest = " ".join(tokens[1:])
            left, arrow, right = rest.partition("->")
            if not arrow:
                raise ParseError(line_no, "expected 'arc A -> B'")
            u = current.resolve(left.strip(), line_no)
            v = current.resolve(right.strip(), line_no)
            current.arcs.append((u, v))
        else:
            raise ParseError(line_no, f"unknown keyword {keyword!r}")

    if current is not None:
        raise ParseError(
            len(text.splitlines()), f"txn {current.name!r} not closed"
        )
    if not blocks:
        raise ParseError(1, "no transactions defined")

    mentioned = {op.entity for block in blocks for op in block.ops}
    for entity in sorted(mentioned - set(placement)):
        placement[entity] = f"site[{entity}]"
    schema = DatabaseSchema(placement)
    transactions = [
        Transaction(block.name, block.ops, block.arcs, schema)
        for block in blocks
    ]
    return TransactionSystem(transactions)


def _node_label(transaction: Transaction, node: int) -> str:
    """The textual reference of a node, with #k disambiguation."""
    op = transaction.ops[node]
    base = str(op)
    same = [
        u for u, other in enumerate(transaction.ops) if str(other) == base
    ]
    if len(same) == 1:
        return base
    return f"{base}#{same.index(node) + 1}"


def format_system(system: TransactionSystem) -> str:
    """Serialize a system to the text format (round-trips through
    :func:`parse_system` up to node renumbering)."""
    lines: list[str] = []
    by_site: dict[str, list[str]] = {}
    for entity in sorted(system.entities):
        by_site.setdefault(system.schema.site_of(entity), []).append(entity)
    for site in sorted(by_site):
        lines.append(f"schema {site}: {' '.join(sorted(by_site[site]))}")
    for transaction in system.transactions:
        lines.append("")
        lines.append(f"txn {transaction.name}")
        covered: set[tuple[int, int]] = set()
        for site in sorted(transaction.sites_touched()):
            nodes = transaction.nodes_at_site(site)
            labels = " ".join(_node_label(transaction, u) for u in nodes)
            lines.append(f"  seq {labels}")
            covered.update(zip(nodes, nodes[1:]))
        hasse = transaction.dag.transitive_reduction()
        closure_of_chains = _chain_closure(transaction, covered)
        for u, v in sorted(hasse.arcs):
            if (u, v) not in closure_of_chains:
                lines.append(
                    f"  arc {_node_label(transaction, u)} -> "
                    f"{_node_label(transaction, v)}"
                )
        lines.append("end")
    return "\n".join(lines) + "\n"


def _chain_closure(
    transaction: Transaction, chain_arcs: set[tuple[int, int]]
) -> set[tuple[int, int]]:
    """Transitive closure of the per-site chain arcs."""
    from repro.util.dag import Dag

    dag = Dag(transaction.node_count, chain_arcs)
    return set(dag.transitive_closure_arcs())
