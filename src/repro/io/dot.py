"""Graphviz DOT export for transactions and derived graphs."""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.core.serialization import d_graph
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.util.graphs import Digraph

__all__ = [
    "blame_graph_to_dot",
    "d_graph_to_dot",
    "system_to_dot",
    "transaction_to_dot",
    "waits_for_to_dot",
]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def transaction_to_dot(transaction: Transaction) -> str:
    """The Hasse diagram of one transaction, clustered by site."""
    lines = [f"digraph {_quote(transaction.name)} {{", "  rankdir=TB;"]
    for index, site in enumerate(sorted(transaction.sites_touched())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(site)};")
        for node in transaction.nodes_at_site(site):
            label = transaction.describe_node(node)
            lines.append(
                f"    n{node} [label={_quote(label)}, shape=box];"
            )
        lines.append("  }")
    for u, v in sorted(transaction.dag.transitive_reduction().arcs):
        lines.append(f"  n{u} -> n{v};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def system_to_dot(system: TransactionSystem) -> str:
    """All transactions of a system, clustered per transaction."""
    lines = ["digraph system {", "  rankdir=TB;", "  compound=true;"]
    for index, transaction in enumerate(system.transactions):
        lines.append(f"  subgraph cluster_t{index} {{")
        lines.append(f"    label={_quote(transaction.name)};")
        for node in range(transaction.node_count):
            label = transaction.describe_node(node)
            lines.append(
                f"    t{index}n{node} [label={_quote(label)}, shape=box];"
            )
        for u, v in sorted(transaction.dag.transitive_reduction().arcs):
            lines.append(f"    t{index}n{u} -> t{index}n{v};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def digraph_to_dot(graph: Digraph, name: str = "G", labeler=str) -> str:
    """Generic :class:`Digraph` export; ``labeler`` renders node labels."""
    lines = [f"digraph {_quote(name)} {{"]
    ids = {node: f"n{i}" for i, node in enumerate(graph.nodes)}
    for node, node_id in ids.items():
        lines.append(f"  {node_id} [label={_quote(labeler(node))}];")
    for u, v, label in graph.arcs():
        attr = f" [label={_quote(str(label))}]" if label is not None else ""
        lines.append(f"  {ids[u]} -> {ids[v]}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def waits_for_to_dot(
    edges: dict[int, "set[int]"],
    name: str = "waits_for",
    labeler=lambda txn: f"T{txn}",
) -> str:
    """A waits-for snapshot (``{waiter: holders}``) as a digraph.

    The flight recorder's post-mortem format: every transaction that
    appears as a waiter or a holder becomes a node, every waiter ->
    holder pair an arc.
    """
    nodes = set(edges)
    for holders in edges.values():
        nodes.update(holders)
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for txn in sorted(nodes):
        lines.append(f"  n{txn} [label={_quote(labeler(txn))}];")
    for waiter in sorted(edges):
        for holder in sorted(edges[waiter]):
            lines.append(f"  n{waiter} -> n{holder};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def blame_graph_to_dot(
    edges: list,
    name: str = "blame",
    labeler=lambda txn: f"T{txn}",
) -> str:
    """A time-weighted blame graph as a digraph.

    ``edges`` is the attribution engine's edge list (dicts with
    ``waiter``/``holder``/``site``/``entity``/``time``, see
    :meth:`~repro.sim.observe.attribution.LatencyAttribution.\
blame_edge_list`).  Unlike :func:`waits_for_to_dot` — an unweighted
    instant snapshot — each arc here carries the total simulated time
    the waiter spent blocked behind the holder on that cell, with
    ``penwidth`` scaled to the heaviest edge so hot dependencies jump
    out visually.
    """
    nodes: set[int] = set()
    for edge in edges:
        nodes.add(edge["waiter"])
        nodes.add(edge["holder"])
    heaviest = max((edge["time"] for edge in edges), default=0.0)
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for txn in sorted(nodes):
        lines.append(f"  n{txn} [label={_quote(labeler(txn))}];")
    for edge in edges:
        label = (
            f"{edge['entity']}@{edge['site']} {edge['time']:.3g}"
        )
        width = 1.0 + 3.0 * (edge["time"] / heaviest if heaviest else 0.0)
        lines.append(
            f"  n{edge['waiter']} -> n{edge['holder']}"
            f" [label={_quote(label)}, penwidth={width:.2f}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def d_graph_to_dot(schedule: Schedule) -> str:
    """The serialization digraph D(S) of a schedule."""
    graph = d_graph(schedule)
    system = schedule.system
    return digraph_to_dot(
        graph, name="D", labeler=lambda i: system[i].name
    )
