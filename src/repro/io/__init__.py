"""Serialization of transaction systems: text format, JSON, Graphviz."""

from repro.io.dot import d_graph_to_dot, system_to_dot, transaction_to_dot
from repro.io.jsonfmt import system_from_json, system_to_json
from repro.io.textfmt import (
    ParseError,
    format_system,
    parse_system,
)

__all__ = [
    "ParseError",
    "d_graph_to_dot",
    "format_system",
    "parse_system",
    "system_from_json",
    "system_to_dot",
    "system_to_json",
    "transaction_to_dot",
]
