"""Declarative experiment sweeps over the simulator.

A :class:`SweepSpec` names a grid — contention policy x atomic-commit
protocol x arrival rate x failure rate x replicate seeds over one
:class:`~repro.sim.workload.WorkloadSpec` — and :func:`run_sweep`
executes every cell, serially or on a :mod:`multiprocessing` pool.

Each cell is a pure function of the spec: the cell's coordinates fully
determine every RNG stream inside its simulation (run seed, arrival
clock, per-arrival workload seeds, failure stream, schema seed), so a
parallel sweep is bit-identical to running the same cells serially —
the regression suite asserts exactly that. Cells sharing a replicate
seed across policies/protocols also share their workload and arrival
randomness, which makes row-wise comparisons paired rather than merely
independent.

:func:`sweep_records` flattens results for analysis; :func:`write_json`
and :func:`write_csv` persist them.
"""

from repro.experiments.results import (
    sweep_records,
    write_csv,
    write_json,
)
from repro.experiments.sweep import (
    SweepCell,
    SweepSpec,
    run_cell,
    run_sweep,
)

__all__ = [
    "SweepCell",
    "SweepSpec",
    "run_cell",
    "run_sweep",
    "sweep_records",
    "write_csv",
    "write_json",
]
