"""Sweep specification and the (optionally parallel) cell runner.

The sweep grid is the cross product of the spec's axes in declaration
order (policy outermost, seed innermost), so cell order — and therefore
result order — is deterministic and independent of how the cells are
executed.

Closed-batch cells (``arrival_rate == 0``) regenerate the workload
system from ``base.workload_seed``, so every cell of a sweep stresses
the *same* batch; open-system cells start empty and let the arrival
process inject traffic over the schema derived from the same
``workload_seed``. Either way a cell depends only on picklable spec
data, which is what lets :func:`run_sweep` fan cells out to worker
processes without any shared state.

The commit-protocol axis accepts every registered protocol name
(including ``paxos-commit``); knobs that are not grid axes — e.g.
``commit_fault_tolerance``, Paxos Commit's F — ride in ``base`` and
apply to every cell via :meth:`SweepSpec.cell_config`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import random
from dataclasses import dataclass

from repro.core.system import TransactionSystem
from repro.sim.metrics import SimulationResult
from repro.sim.runtime import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec, random_system

__all__ = ["SweepCell", "SweepSpec", "run_cell", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One grid point: the coordinates of a single simulation run."""

    policy: str
    protocol: str
    arrival_rate: float
    failure_rate: float
    seed: int
    # Appended with defaults so positional construction of the
    # historical five-coordinate cells keeps working.
    replica_protocol: str = "rowa"
    loss_rate: float = 0.0
    partition_rate: float = 0.0


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of simulation runs.

    Attributes:
        policies: contention policies to sweep.
        protocols: atomic-commit protocols to sweep.
        replica_protocols: replica-control protocols to sweep (the
            replication factor itself rides in ``workload``).
        arrival_rates: open-system arrival rates; 0 means the cell
            replays the closed batch generated from ``workload``.
        failure_rates: per-site crash rates.
        seeds: replicate seeds (each becomes a cell's run seed).
        workload: workload drawn by closed batches and arrivals alike.
        base: configuration shared by every cell; each cell overrides
            its seed, protocol, arrival rate, and failure rate.
        loss_rates: network message-loss probabilities (chaos axis;
            the all-zero default leaves cells chaos-free).
        partition_rates: Poisson partition-episode arrival rates
            (chaos axis; episode duration and retransmission knobs
            ride in ``base.network``).
    """

    policies: tuple[str, ...] = ("wound-wait", "wait-die")
    protocols: tuple[str, ...] = ("instant",)
    replica_protocols: tuple[str, ...] = ("rowa",)
    arrival_rates: tuple[float, ...] = (0.0,)
    failure_rates: tuple[float, ...] = (0.0,)
    seeds: tuple[int, ...] = (0, 1, 2)
    workload: WorkloadSpec = WorkloadSpec()
    base: SimulationConfig = SimulationConfig()
    # Appended with singleton defaults: existing positional specs and
    # the cell order of chaos-free sweeps are unchanged.
    loss_rates: tuple[float, ...] = (0.0,)
    partition_rates: tuple[float, ...] = (0.0,)

    def cells(self) -> list[SweepCell]:
        """Every grid point, in deterministic declaration order."""
        return [
            SweepCell(
                policy, protocol, arrival_rate, failure_rate, seed,
                replica_protocol, loss_rate, partition_rate,
            )
            for policy in self.policies
            for protocol in self.protocols
            for replica_protocol in self.replica_protocols
            for arrival_rate in self.arrival_rates
            for failure_rate in self.failure_rates
            for loss_rate in self.loss_rates
            for partition_rate in self.partition_rates
            for seed in self.seeds
        ]

    def cell_config(self, cell: SweepCell) -> SimulationConfig:
        """The cell's full simulation configuration."""
        network = self.base.network
        if cell.loss_rate > 0 or cell.partition_rate > 0:
            # Chaos axes override the base network template (a plain
            # NetworkConfig() template when the base has none).
            from repro.sim.network import NetworkConfig

            network = dataclasses.replace(
                network or NetworkConfig(),
                loss_rate=cell.loss_rate,
                partition_rate=cell.partition_rate,
            )
        return dataclasses.replace(
            self.base,
            seed=cell.seed,
            commit_protocol=cell.protocol,
            replica_protocol=cell.replica_protocol,
            arrival_rate=cell.arrival_rate,
            failure_rate=cell.failure_rate,
            workload=self.workload,
            network=network,
        )

    def cell_system(self, cell: SweepCell) -> TransactionSystem:
        """The cell's starting system (empty for open-system cells)."""
        if cell.arrival_rate > 0:
            return TransactionSystem([])
        return random_system(
            random.Random(self.base.workload_seed), self.workload
        )


def run_cell(spec: SweepSpec, cell: SweepCell) -> SimulationResult:
    """Run one cell of the sweep."""
    return simulate(
        spec.cell_system(cell), cell.policy, spec.cell_config(cell)
    )


def _run_cell_task(
    args: tuple[SweepSpec, SweepCell],
) -> SimulationResult:
    """Module-level worker so the pool can pickle it."""
    spec, cell = args
    return run_cell(spec, cell)


def run_sweep(
    spec: SweepSpec,
    processes: int | None = None,
    parallel: bool = True,
) -> list[SimulationResult]:
    """Run every cell of the sweep; results align with ``spec.cells()``.

    Args:
        spec: the grid to run.
        processes: worker count (None = one per CPU, capped at the
            cell count).
        parallel: False forces serial in-process execution — the
            reference the parallel path is tested bit-identical to.
    """
    cells = spec.cells()
    if not parallel or len(cells) <= 1 or processes == 1:
        return [run_cell(spec, cell) for cell in cells]
    if processes is None:
        processes = multiprocessing.cpu_count()
    processes = max(1, min(processes, len(cells)))
    tasks = [(spec, cell) for cell in cells]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(_run_cell_task, tasks, chunksize=1)
