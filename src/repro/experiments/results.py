"""Flattening and persistence of sweep results (JSON / CSV).

A *record* is one flat dict per cell: the cell's grid coordinates plus
the headline metrics of its :class:`~repro.sim.metrics.
SimulationResult`. Flat records keep the output format friendly to
spreadsheet tools and dataframe loaders without this package depending
on either.
"""

from __future__ import annotations

import csv
import dataclasses
import json

from repro.sim.metrics import SimulationResult
from repro.experiments.sweep import SweepSpec

__all__ = ["sweep_records", "write_csv", "write_json"]


def _record(cell, result: SimulationResult) -> dict:
    total = result.latency_percentiles("total")
    exec_p = result.latency_percentiles("exec")
    commit_p = result.latency_percentiles("commit")
    return {
        "policy": cell.policy,
        "protocol": cell.protocol,
        "replica_protocol": cell.replica_protocol,
        "replication_factor": result.replication_factor,
        "arrival_rate": cell.arrival_rate,
        "failure_rate": cell.failure_rate,
        "loss_rate": cell.loss_rate,
        "partition_rate": cell.partition_rate,
        "seed": cell.seed,
        "injected": result.injected,
        "committed": result.committed,
        "total": result.total,
        "aborts": result.aborts,
        "crashes": result.crashes,
        "partitions": result.partitions,
        "net_dropped": result.net_dropped,
        "net_retransmits": result.net_retransmits,
        "commit_messages": result.commit_messages,
        "log_forces": result.log_forces,
        "log_replays": result.log_replays,
        "in_doubt_resolved": result.in_doubt_resolved,
        "tail_losses": result.tail_losses,
        "acceptor_messages": result.acceptor_messages,
        "coordinator_takeovers": result.coordinator_takeovers,
        "end_time": result.end_time,
        "throughput": result.throughput,
        "steady_throughput": result.steady_throughput,
        "mean_inflight": result.mean_inflight,
        "mean_latency": result.mean_latency,
        "mean_exec_latency": result.mean_exec_latency,
        "mean_commit_latency": result.mean_commit_latency,
        "p50": total["p50"],
        "p95": total["p95"],
        "p99": total["p99"],
        "exec_p95": exec_p["p95"],
        "commit_p95": commit_p["p95"],
        "prepared_block_time": result.prepared_block_time,
        "availability": result.availability,
        "read_availability": result.read_availability,
        "write_availability": result.write_availability,
        "unavailable_aborts": result.unavailable_aborts,
        "deadlocked": result.deadlocked,
        "serializable": result.serializable,
        "truncated": result.truncated,
    }


def _metrics_columns(result: SimulationResult) -> dict:
    """Peak-pressure columns from the observability sampler.

    Present only when the sweep's base config enabled the sampler
    (``observe=ObserveConfig(metrics_window=...)``) — then every cell
    carries a series, so the records stay rectangular.
    """
    windows = result.timeseries["windows"]
    return {
        "metrics_window": result.timeseries["window"],
        "metrics_windows": len(windows),
        "peak_inflight": max(
            (w["inflight_mean"] for w in windows), default=0.0
        ),
        "peak_blocked": max(
            (w["blocked_mean"] for w in windows), default=0.0
        ),
        "peak_wf_edges": max(
            (w["wf_edges"] for w in windows), default=0
        ),
        "peak_queue_depth": max(
            (w["max_queue_depth"] for w in windows), default=0
        ),
        "peak_abort_rate": max(
            (w["abort_rate"] for w in windows), default=0.0
        ),
    }


def _attribution_columns(result: SimulationResult) -> dict:
    """Contention-analytics columns from the attribution engine.

    Present only when the sweep's base config enabled attribution
    (``observe=ObserveConfig(attribution=True)``) — then every cell
    carries a summary, so the records stay rectangular.
    """
    attribution = result.attribution
    segments = attribution["segments"]
    segment_total = sum(segments.values())
    hotspot = attribution["hotspot"]
    aborts = attribution["aborts"]
    return {
        "hot_entity": hotspot["entity"] if hotspot else "",
        "hot_entity_share": hotspot["share"] if hotspot else 0.0,
        "hot_entity_blocked": (
            hotspot["blocked_time"] if hotspot else 0.0
        ),
        "lock_wait_share": (
            segments["lock_wait"] / segment_total if segment_total else 0.0
        ),
        "commit_share": (
            (segments["coordinator"] + segments["commit"]) / segment_total
            if segment_total
            else 0.0
        ),
        "wasted_fraction": aborts["wasted_fraction"],
        "wasted_time": aborts["wasted_time"],
        "blame_edges": attribution["blame"]["edge_count"],
        "blame_time": attribution["blame"]["total_time"],
        "conservation_exact": attribution["conservation"]["exact"],
    }


def sweep_records(
    spec: SweepSpec, results: list[SimulationResult]
) -> list[dict]:
    """One flat record per cell, aligned with ``spec.cells()``."""
    cells = spec.cells()
    if len(cells) != len(results):
        raise ValueError(
            f"{len(results)} results for {len(cells)} cells"
        )
    records = []
    for cell, result in zip(cells, results):
        record = _record(cell, result)
        if result.timeseries is not None:
            record.update(_metrics_columns(result))
        if result.attribution is not None:
            record.update(_attribution_columns(result))
        records.append(record)
    return records


def write_json(
    path: str, spec: SweepSpec, results: list[SimulationResult]
) -> None:
    """Write the spec and per-cell records as one JSON document."""
    document = {
        "spec": dataclasses.asdict(spec),
        "cells": sweep_records(spec, results),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_csv(
    path: str, spec: SweepSpec, results: list[SimulationResult]
) -> None:
    """Write the per-cell records as CSV (one row per cell)."""
    records = sweep_records(spec, results)
    if not records:
        raise ValueError("cannot write CSV for an empty sweep")
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)
