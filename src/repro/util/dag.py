"""Finite DAGs (partial orders) over integer node ids, bitset-backed.

A :class:`Dag` stores, for every node, its direct successor/predecessor
sets and the full transitive closure (descendant/ancestor bitmasks). The
closure is what the paper's algorithms consume: every precedence test
``u ≺ v`` is one mask probe, and the step-set computations of Section 5
(:mod:`repro.analysis.sets`) reduce to mask sweeps.

The class also provides the order-theoretic enumeration primitives the
exhaustive oracle needs: topological orders, linear extensions, down-sets
(prefixes in the paper's terminology), and minimal elements of a residual
subgraph.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.util.bitset import bits_of, from_indices

__all__ = ["CycleError", "Dag", "DagBuilder"]


class CycleError(ValueError):
    """Raised when an alleged DAG contains a directed cycle."""

    def __init__(self, cycle: Sequence[int]):
        self.cycle = list(cycle)
        super().__init__(f"graph contains a directed cycle: {self.cycle}")


class Dag:
    """An immutable directed acyclic graph over nodes ``0..n-1``.

    Args:
        n: number of nodes.
        arcs: iterable of ``(u, v)`` pairs meaning ``u`` precedes ``v``.

    Raises:
        CycleError: if the arcs contain a directed cycle.
        ValueError: if an arc endpoint is out of range or a self-loop.
    """

    __slots__ = (
        "n", "_succ", "_pred", "_desc", "_anc", "_arcs", "_arc_src",
        "_topo",
    )

    def __init__(self, n: int, arcs: Iterable[tuple[int, int]] = ()):
        self.n = n
        succ = [0] * n
        pred = [0] * n
        arc_set: set[tuple[int, int]] = set()
        for u, v in arcs:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"arc ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop on node {u}")
            if (u, v) not in arc_set:
                arc_set.add((u, v))
                succ[u] |= 1 << v
                pred[v] |= 1 << u
        self._succ = succ
        self._pred = pred
        self._arcs = frozenset(arc_set)
        self._arc_src = None
        self._desc, self._anc = self._compute_closure()

    @classmethod
    def trusted(cls, n: int, arcs: Iterable[tuple[int, int]] = ()) -> "Dag":
        """Construct without validation, deferring the closure.

        The caller guarantees every arc ``(u, v)`` satisfies
        ``0 <= u < v < n`` — forward in node-id order, hence acyclic
        with no self-loops. The workload generator produces exactly
        such arcs (every arc follows the reference sequence), which is
        what lets open-system arrivals skip Kahn's algorithm and the
        transitive closure entirely: the simulator's hot path consumes
        only the direct successor/predecessor masks. The closure (and
        the cached topological order) is computed lazily on first use,
        so the resulting Dag answers every query exactly like a
        validated one.
        """
        dag = object.__new__(cls)
        dag.n = n
        arc_list = arcs if type(arcs) is list else list(arcs)
        succ = [0] * n
        pred = [0] * n
        for u, v in arc_list:
            # Duplicate arcs just re-set the same bits, so the masks
            # need no dedup pass; the canonical frozenset (which does
            # dedup) is materialized only if someone asks for it.
            succ[u] |= 1 << v
            pred[v] |= 1 << u
        dag._succ = succ
        dag._pred = pred
        dag._arcs = None
        dag._arc_src = arc_list
        dag._desc = None
        dag._anc = None
        dag._topo = None
        return dag

    def _ensure_closure(self) -> None:
        """Materialize the lazy closure of a trusted Dag."""
        if self._anc is None:
            self._desc, self._anc = self._compute_closure()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _compute_closure(self) -> tuple[list[int], list[int]]:
        """Compute descendant and ancestor masks; verify acyclicity.

        The bit scans are inlined (no generator) — Dag construction is
        on the open-system hot path, one per injected transaction.
        """
        order = self.topological_order()
        self._topo = order
        desc = [0] * self.n
        for u in reversed(order):
            mask = bits = self._succ[u]
            while bits:
                low = bits & -bits
                mask |= desc[low.bit_length() - 1]
                bits ^= low
            if mask >> u & 1:
                raise CycleError(self._trace_cycle())
            desc[u] = mask
        anc = [0] * self.n
        for u in order:
            mask = bits = self._pred[u]
            while bits:
                low = bits & -bits
                mask |= anc[low.bit_length() - 1]
                bits ^= low
            anc[u] = mask
        return desc, anc

    def _trace_cycle(self) -> list[int]:
        """Locate one directed cycle (only called on corrupt input)."""
        color = [0] * self.n  # 0 unvisited, 1 on stack, 2 done
        stack: list[int] = []

        def dfs(u: int) -> list[int] | None:
            color[u] = 1
            stack.append(u)
            for v in bits_of(self._succ[u]):
                if color[v] == 1:
                    return stack[stack.index(v):] + [v]
                if color[v] == 0:
                    found = dfs(v)
                    if found is not None:
                        return found
            color[u] = 2
            stack.pop()
            return None

        for start in range(self.n):
            if color[start] == 0:
                found = dfs(start)
                if found is not None:
                    return found
        return []

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    @property
    def arcs(self) -> frozenset[tuple[int, int]]:
        """The direct (non-transitive) arcs as given at construction."""
        arcs = self._arcs
        if arcs is None:
            arcs = self._arcs = frozenset(self._arc_src)
            self._arc_src = None
        return arcs

    def successors(self, u: int) -> int:
        """Bitmask of direct successors of ``u``."""
        return self._succ[u]

    def predecessors(self, u: int) -> int:
        """Bitmask of direct predecessors of ``u``."""
        return self._pred[u]

    def descendants(self, u: int) -> int:
        """Bitmask of all nodes strictly after ``u`` in the partial order."""
        if self._desc is None:
            self._ensure_closure()
        return self._desc[u]

    def ancestors(self, u: int) -> int:
        """Bitmask of all nodes strictly before ``u`` in the partial order."""
        if self._anc is None:
            self._ensure_closure()
        return self._anc[u]

    def successor_masks(self) -> list[int]:
        """Per-node direct-successor bitmasks, indexed by node id.

        A borrowed view of internal state — callers must not mutate it.
        Bulk accessor for hot paths that would otherwise call
        :meth:`successors` once per node.
        """
        return self._succ

    def predecessor_masks(self) -> list[int]:
        """Per-node direct-predecessor bitmasks (borrowed; do not
        mutate). Available without materializing the closure, which is
        what makes linear schedule replay free of it."""
        return self._pred

    def ancestor_masks(self) -> list[int]:
        """Per-node ancestor bitmasks (borrowed; do not mutate)."""
        if self._anc is None:
            self._ensure_closure()
        return self._anc

    def precedes(self, u: int, v: int) -> bool:
        """Return True if ``u`` strictly precedes ``v`` (u ≺ v)."""
        if self._desc is None:
            self._ensure_closure()
        return bool(self._desc[u] >> v & 1)

    def comparable(self, u: int, v: int) -> bool:
        """Return True if ``u`` and ``v`` are ordered either way."""
        return self.precedes(u, v) or self.precedes(v, u)

    def all_nodes_mask(self) -> int:
        """Bitmask containing every node."""
        return (1 << self.n) - 1

    def cached_topological_order(self) -> list[int]:
        """The topological order computed at construction (no rebuild).

        Callers must not mutate the returned list. Trusted Dags compute
        it on first use.
        """
        if self._topo is None:
            self._topo = self.topological_order()
        return self._topo

    # ------------------------------------------------------------------
    # orders and enumeration
    # ------------------------------------------------------------------

    def topological_order(self) -> list[int]:
        """Return one topological order (Kahn's algorithm, smallest-first)."""
        pred = self._pred
        succ = self._succ
        indegree = [pred[u].bit_count() for u in range(self.n)]
        ready = sorted(u for u in range(self.n) if indegree[u] == 0)
        order: list[int] = []
        while ready:
            u = ready.pop()
            order.append(u)
            bits = succ[u]
            while bits:
                low = bits & -bits
                v = low.bit_length() - 1
                bits ^= low
                indegree[v] -= 1
                if indegree[v] == 0:
                    ready.append(v)
        if len(order) != self.n:
            raise CycleError(self._trace_cycle())
        return order

    def linear_extensions(self) -> Iterator[tuple[int, ...]]:
        """Yield every linear extension (total order compatible with arcs).

        The count is exponential in general; intended for small posets
        (tests, the exhaustive oracle, Corollary 1 experiments).
        """
        full = self.all_nodes_mask()
        prefix: list[int] = []

        def extend(done: int) -> Iterator[tuple[int, ...]]:
            if done == full:
                yield tuple(prefix)
                return
            remaining = full & ~done
            for u in bits_of(remaining):
                if self._anc[u] & ~done == 0:
                    prefix.append(u)
                    yield from extend(done | (1 << u))
                    prefix.pop()

        yield from extend(0)

    def count_linear_extensions(self, limit: int | None = None) -> int:
        """Count linear extensions by dynamic programming over down-sets.

        Args:
            limit: optional cap; counting stops early once exceeded and the
                running total (>= limit) is returned.
        """
        counts: dict[int, int] = {0: 1}
        frontier = [0]
        full = self.all_nodes_mask()
        total_for_full = 0
        while frontier:
            next_counts: dict[int, int] = {}
            for done in frontier:
                ways = counts[done]
                remaining = full & ~done
                for u in bits_of(remaining):
                    if self._anc[u] & ~done == 0:
                        key = done | (1 << u)
                        next_counts[key] = next_counts.get(key, 0) + ways
            counts = next_counts
            frontier = list(counts)
            if full in counts:
                total_for_full = counts[full]
            if limit is not None and counts and min(counts.values()) > limit:
                return max(total_for_full, limit)
        return total_for_full

    def down_sets(self) -> Iterator[int]:
        """Yield every down-set (prefix) of the partial order as a bitmask.

        A down-set ``D`` satisfies: no arc enters ``D`` from outside, i.e.
        every ancestor of a member is a member. The empty set and the full
        set are included. Exponential in general; for small posets only.
        """
        seen = {0}
        stack = [0]
        while stack:
            done = stack.pop()
            yield done
            remaining = self.all_nodes_mask() & ~done
            for u in bits_of(remaining):
                if self._anc[u] & ~done == 0:
                    grown = done | (1 << u)
                    if grown not in seen:
                        seen.add(grown)
                        stack.append(grown)

    def is_down_set(self, mask: int) -> bool:
        """Return True if ``mask`` is a down-set (a *prefix* per the paper)."""
        for u in bits_of(mask):
            if self._anc[u] & ~mask:
                return False
        return True

    def down_closure(self, mask: int) -> int:
        """Return the smallest down-set containing ``mask``."""
        closed = mask
        for u in bits_of(mask):
            closed |= self._anc[u]
        return closed

    def minimal_nodes(self, mask: int) -> int:
        """Bitmask of nodes of ``mask`` with no predecessor inside ``mask``.

        This is exactly "the nodes without predecessors in the subgraph
        induced by ``mask``" used in the paper's deadlock definition.
        """
        result = 0
        for u in bits_of(mask):
            if self._anc[u] & mask == 0:
                result |= 1 << u
        return result

    def maximal_down_set_avoiding(self, forbidden: int) -> int:
        """Largest down-set containing no node of ``forbidden``.

        Obtained by removing every forbidden node together with all of its
        descendants — the construction used for the maximal prefixes ``T*``
        of Theorem 4.
        """
        removed = forbidden
        for u in bits_of(forbidden):
            removed |= self._desc[u]
        return self.all_nodes_mask() & ~removed

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------

    def transitive_reduction(self) -> "Dag":
        """Return the Hasse diagram (unique minimal arc set, same order)."""
        reduced: list[tuple[int, int]] = []
        for u, v in self.arcs:
            # (u, v) is redundant iff some direct successor w != v of u
            # already reaches v.
            redundant = False
            for w in bits_of(self._succ[u] & ~(1 << v)):
                if w == v or self._desc[w] >> v & 1:
                    redundant = True
                    break
            if not redundant:
                reduced.append((u, v))
        return Dag(self.n, reduced)

    def transitive_closure_arcs(self) -> frozenset[tuple[int, int]]:
        """All ordered pairs ``(u, v)`` with ``u ≺ v``."""
        pairs = set()
        for u in range(self.n):
            for v in bits_of(self._desc[u]):
                pairs.add((u, v))
        return frozenset(pairs)

    def with_arcs(self, extra: Iterable[tuple[int, int]]) -> "Dag":
        """Return a new Dag with ``extra`` arcs added (must stay acyclic)."""
        return Dag(self.n, list(self.arcs) + list(extra))

    def restricted_to(self, mask: int) -> "Dag":
        """Induced sub-DAG on ``mask``, renumbered by increasing old id.

        Returns the new Dag; node ``i`` of the result corresponds to the
        ``i``-th smallest member of ``mask``.
        """
        members = list(bits_of(mask))
        index = {u: i for i, u in enumerate(members)}
        arcs = [
            (index[u], index[v])
            for u, v in self.arcs
            if u in index and v in index
        ]
        return Dag(len(members), arcs)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dag):
            return NotImplemented
        return self.n == other.n and self.arcs == other.arcs

    def __hash__(self) -> int:
        return hash((self.n, self.arcs))

    def __repr__(self) -> str:
        return f"Dag(n={self.n}, arcs={sorted(self.arcs)})"


class DagBuilder:
    """Incremental construction helper for :class:`Dag`.

    Nodes are allocated densely; arcs may be added in any order and are
    validated only at :meth:`build` time.
    """

    def __init__(self) -> None:
        self._n = 0
        self._arcs: list[tuple[int, int]] = []

    def add_node(self) -> int:
        """Allocate and return a fresh node id."""
        node = self._n
        self._n += 1
        return node

    def add_nodes(self, count: int) -> list[int]:
        """Allocate ``count`` fresh node ids."""
        return [self.add_node() for _ in range(count)]

    def add_arc(self, u: int, v: int) -> None:
        """Record the precedence ``u`` before ``v``."""
        self._arcs.append((u, v))

    def add_chain(self, nodes: Sequence[int]) -> None:
        """Record a total order over ``nodes`` via consecutive arcs."""
        for u, v in zip(nodes, nodes[1:]):
            self.add_arc(u, v)

    @property
    def node_count(self) -> int:
        return self._n

    def build(self) -> Dag:
        """Validate and return the immutable Dag."""
        return Dag(self._n, self._arcs)
