"""Generic substrate utilities: bitsets, DAGs/posets, graph algorithms.

These modules are deliberately free of any database vocabulary so that the
core model (:mod:`repro.core`) reads as a direct transcription of the
paper's definitions on top of a small, well-tested discrete-math toolbox.
"""

from repro.util.bitset import (
    bit,
    bits_of,
    first_bit,
    from_indices,
    is_subset,
    popcount,
)
from repro.util.dag import CycleError, Dag, DagBuilder
from repro.util.graphs import (
    Digraph,
    find_cycle,
    has_cycle,
    simple_cycles_undirected,
    strongly_connected_components,
    topological_sort,
)

__all__ = [
    "CycleError",
    "Dag",
    "DagBuilder",
    "Digraph",
    "bit",
    "bits_of",
    "find_cycle",
    "first_bit",
    "from_indices",
    "has_cycle",
    "is_subset",
    "popcount",
    "simple_cycles_undirected",
    "strongly_connected_components",
    "topological_sort",
]
