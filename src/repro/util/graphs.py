"""General directed/undirected graph algorithms on hashable node labels.

Unlike :mod:`repro.util.dag` (dense integer posets), this module handles
the *derived* graphs of the paper — reduction graphs R(A'), serialization
digraphs D(S), interaction graphs G(A) — whose nodes are labelled objects
and which may legitimately contain cycles (finding those cycles is the
whole point).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import TypeVar

__all__ = [
    "Digraph",
    "find_cycle",
    "find_cycle_ints",
    "has_cycle",
    "simple_cycles_undirected",
    "strongly_connected_components",
    "topological_sort",
]

N = TypeVar("N", bound=Hashable)


class Digraph:
    """A small adjacency-map digraph with labelled arcs.

    Arcs carry an optional label (the paper labels serialization arcs with
    the entity that induced them); parallel arcs with different labels are
    kept, parallel arcs with identical labels are merged.
    """

    def __init__(self) -> None:
        self._succ: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._pred: dict[Hashable, dict[Hashable, set[Hashable]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Ensure ``node`` exists (no-op if already present)."""
        self._succ.setdefault(node, {})
        self._pred.setdefault(node, {})

    def add_arc(
        self, u: Hashable, v: Hashable, label: Hashable = None
    ) -> None:
        """Add the arc ``u -> v`` with an optional ``label``."""
        self.add_node(u)
        self.add_node(v)
        self._succ[u].setdefault(v, set()).add(label)
        self._pred[v].setdefault(u, set()).add(label)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._succ)

    def arcs(self) -> Iterator[tuple[Hashable, Hashable, Hashable]]:
        """Yield ``(u, v, label)`` triples."""
        for u, targets in self._succ.items():
            for v, labels in targets.items():
                for label in labels:
                    yield u, v, label

    def arc_count(self) -> int:
        return sum(
            len(labels)
            for targets in self._succ.values()
            for labels in targets.values()
        )

    def has_arc(self, u: Hashable, v: Hashable) -> bool:
        return v in self._succ.get(u, {})

    def successors(self, u: Hashable) -> list[Hashable]:
        return list(self._succ.get(u, {}))

    def predecessors(self, u: Hashable) -> list[Hashable]:
        return list(self._pred.get(u, {}))

    def arc_labels(self, u: Hashable, v: Hashable) -> set[Hashable]:
        return set(self._succ.get(u, {}).get(v, set()))

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------
    # cycle analysis (delegates to module-level functions)
    # ------------------------------------------------------------------

    def find_cycle(self) -> list[Hashable] | None:
        """Return one directed cycle as a node list, or None if acyclic."""
        return find_cycle(self.nodes, self.successors)

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None


def find_cycle(
    nodes: Iterable[N], successors
) -> list[N] | None:
    """Find one directed cycle via iterative DFS.

    Args:
        nodes: iterable of all start nodes.
        successors: callable mapping a node to an iterable of successors.

    Returns:
        The cycle as a list ``[v0, v1, ..., vk]`` with ``vk == v0`` hidden
        (i.e. the list contains each cycle node once, in order), or None.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[N, int] = {}
    parent: dict[N, N] = {}

    for start in nodes:
        if color.get(start, WHITE) != WHITE:
            continue
        stack: list[tuple[N, Iterator[N]]] = [(start, iter(successors(start)))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = color.get(nxt, WHITE)
                if c == GRAY:
                    # unwind the gray path from node back to nxt
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if c == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def find_cycle_ints(
    nodes: Iterable[int], successors, n: int
) -> list[int] | None:
    """:func:`find_cycle` specialized to int nodes in ``[0, n)``.

    Byte-for-byte the same DFS — same start order, same successor
    expansion, same first cycle returned — with the color map stored in
    a flat ``bytearray`` instead of a dict. The deadlock detector runs
    one such search per detection tick over transaction ids, and the
    end-of-run serializability verdicts run one over a whole open-system
    history; the dict hashing was a measurable share of both.
    """
    # WHITE=0, GRAY=1, BLACK=2
    color = bytearray(n)
    parent: dict[int, int] = {}

    for start in nodes:
        if color[start]:
            continue
        stack: list[tuple[int, Iterator[int]]] = [
            (start, iter(successors(start)))
        ]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = color[nxt]
                if c == 1:
                    # unwind the gray path from node back to nxt
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if c == 0:
                    color[nxt] = 1
                    parent[nxt] = node
                    stack.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return None


def has_cycle(nodes: Iterable[N], successors) -> bool:
    """Return True if the digraph contains a directed cycle."""
    return find_cycle(nodes, successors) is not None


def topological_sort(nodes: Sequence[N], successors) -> list[N]:
    """Topologically sort an acyclic digraph.

    Raises:
        ValueError: if the graph has a cycle.
    """
    indegree: dict[N, int] = {node: 0 for node in nodes}
    for node in nodes:
        for nxt in successors(node):
            indegree[nxt] = indegree.get(nxt, 0) + 1
    ready = [node for node in nodes if indegree[node] == 0]
    order: list[N] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for nxt in successors(node):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(indegree):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def strongly_connected_components(
    nodes: Sequence[N], successors
) -> list[list[N]]:
    """Tarjan's SCC algorithm (iterative), in reverse topological order."""
    index_counter = 0
    index: dict[N, int] = {}
    lowlink: dict[N, int] = {}
    on_stack: set[N] = set()
    stack: list[N] = []
    components: list[list[N]] = []

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[N, Iterator[N]]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = index_counter
                    index_counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(successors(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def simple_cycles_undirected(
    nodes: Sequence[N],
    neighbors,
    min_length: int = 3,
    max_cycles: int | None = None,
) -> Iterator[list[N]]:
    """Enumerate simple cycles of an undirected graph, each exactly once.

    A cycle is reported as a node list ``[v0, ..., vk-1]`` (closing arc
    implicit). Each undirected cycle appears once: we canonicalize by
    requiring ``v0`` to be the minimum node (by enumeration order) and the
    second node to be smaller than the last.

    Used for the interaction-graph enumeration of Theorem 4; the count is
    exponential for dense graphs, so ``max_cycles`` bounds the output.

    Args:
        nodes: all graph nodes; their order defines the canonical ranking.
        neighbors: callable mapping a node to its adjacent nodes.
        min_length: shortest cycle length reported (3 = triangles).
        max_cycles: stop after this many cycles (None = unlimited).
    """
    rank = {node: i for i, node in enumerate(nodes)}
    emitted = 0

    for root in nodes:
        # Only search cycles whose minimum-rank node is `root`.
        path = [root]
        on_path = {root}

        def dfs(node: N) -> Iterator[list[N]]:
            for nxt in neighbors(node):
                if rank[nxt] < rank[root]:
                    continue
                if nxt == root:
                    if len(path) >= min_length and rank[path[1]] < rank[path[-1]]:
                        yield list(path)
                elif nxt not in on_path:
                    path.append(nxt)
                    on_path.add(nxt)
                    yield from dfs(nxt)
                    on_path.discard(nxt)
                    path.pop()

        for cycle in dfs(root):
            yield cycle
            emitted += 1
            if max_cycles is not None and emitted >= max_cycles:
                return
