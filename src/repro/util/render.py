"""Plain-text rendering helpers for reports, examples and the CLI."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "indent_block", "bullet_list"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_right: Sequence[bool] | None = None,
) -> str:
    """Render a simple aligned ASCII table.

    Args:
        headers: column titles.
        rows: row cell values (stringified with ``str``).
        align_right: per-column right-alignment flags; defaults to
            left-aligned text everywhere.
    """
    cells = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if align_right is None:
        align_right = [False] * ncols

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if align_right[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    rule = "  ".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), rule]
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def indent_block(text: str, prefix: str = "    ") -> str:
    """Indent every line of ``text`` with ``prefix``."""
    return "\n".join(prefix + line for line in text.splitlines())


def bullet_list(items: Sequence[object], bullet: str = "  - ") -> str:
    """Render items one per line with a bullet prefix."""
    return "\n".join(f"{bullet}{item}" for item in items)
