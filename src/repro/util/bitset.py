"""Bitset helpers over arbitrary-precision integers.

Sets of node indices are represented as Python ``int`` bitmasks throughout
the library: membership is a shift-and-mask, union/intersection are single
``|``/``&`` operations, and transitive closures over a few hundred nodes
stay fast without any native extension.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit",
    "bits_of",
    "first_bit",
    "from_indices",
    "is_subset",
    "popcount",
]


def bit(index: int) -> int:
    """Return the bitmask containing exactly ``index``."""
    return 1 << index


def from_indices(indices: Iterable[int]) -> int:
    """Return the bitmask containing every index in ``indices``."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def bits_of(mask: int) -> Iterator[int]:
    """Yield the indices present in ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Return the number of indices present in ``mask``."""
    return mask.bit_count()


def first_bit(mask: int) -> int:
    """Return the smallest index in ``mask``.

    Raises:
        ValueError: if ``mask`` is empty.
    """
    if not mask:
        raise ValueError("empty bitset has no first bit")
    return (mask & -mask).bit_length() - 1


def is_subset(smaller: int, larger: int) -> bool:
    """Return True if every index of ``smaller`` is present in ``larger``."""
    return smaller & ~larger == 0
