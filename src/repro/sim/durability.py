"""Per-site write-ahead logging, crash truncation, and recovery replay.

Before this subsystem existed, a crash was idealized: PREPARED
transactions kept their retained locks "(conceptually) on the
write-ahead log" and recovery was a single flag flip. This module
makes that conceptual log real, following Gray & Lamport's *Consensus
on Transaction Commit*: commit-protocol correctness is defined by what
each site **forced to stable storage** before acting.

Force points (installed by the commit protocols when
``SimulationConfig.durability`` is set):

* a participant forces a ``prepare`` record — carrying exactly the
  lock entries it retains at that site — before sending VOTE-YES;
* the coordinator forces a ``decision`` record before releasing
  (2PC / presumed-abort commit; plain 2PC also forces its abort
  decisions, the force presumed-abort famously skips);
* a participant forces the ``decision`` record before releasing its
  retained locks and ACKing;
* a Paxos Commit acceptor forces an ``accept`` record before
  registering a vote, and a takeover leader forces a ``ballot``
  record before deposing the old one.

Every force costs ``flush_time`` on the site's timeline (a
``dur_flush`` event; the continuation runs when the flush completes),
so durability is *visible* in the latency decomposition — the
attribution engine carves a conserved ``log_force`` segment out of
commit time.

A crash now truncates volatile state to log contents:

* in-flight flushes are cancelled — their records were never durable;
* the durability fault model draws from its own RNG stream (the
  injector/network convention): ``torn_write_rate`` tears the final
  durable record, ``tail_loss_rate`` loses the tail record the disk
  claimed to have written, and ``amnesia_rate`` wipes the whole log —
  the site must rejoin as a fresh replica via the anti-entropy hooks
  and refuses to vote on state it no longer has (``cm_refuse``);
* the site's lock table is wiped — prepared holders lose their
  retained entries instead of magically keeping them.

Recovery (:meth:`DurabilityManager.on_site_recover`) is an actual
replay: an analysis pass over the site's log reconstructs the
in-doubt set (``prepare`` without a matching ``decision``),
re-acquires exactly the log-implied retained locks, and resolves
in-doubt transactions by protocol inquiry (``cm_inquire`` /
``cm_status``) over the retransmission channel, re-asking every
``commit_timeout`` while unresolved (suspicion-driven retry — a
partition simply delays resolution, it cannot split it). Stale
records (the round aborted and the transaction moved on) resolve
instantly by presumption, with no physical re-acquisition.

With ``SimulationConfig.durability`` unset nothing here exists: no
events, no RNG draws, no log — the simulator runs the exact pre-PR
instruction stream, pinned by the golden-digest matrix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.locks import EXCLUSIVE, SHARED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator

__all__ = ["DurabilityConfig", "DurabilityManager"]

#: seed-derivation constant of the durability-fault stream (the
#: failure injector uses 0x5EED, the network layer 0xC4A05; distinct
#: constants keep the streams independent).
_DISC_SALT = 0xD15C

#: statuses a recovered prepare record may legitimately re-acquire
#: locks for (values of the runtime's private status constants; a
#: module-level import would be an import cycle).
_PREPARED = "prepared"
_COMMITTED = "committed"


@dataclass(frozen=True)
class DurabilityConfig:
    """Durable-storage parameters of a run.

    Attributes:
        flush_time: simulated cost of one forced log write; the
            protocol action gated on the force (VOTE-YES, the release
            fan-out, the participant's ACK) waits for it. 0 keeps the
            forces free but the logging/recovery semantics real.
        tail_loss_rate: probability (drawn once per crash) that the
            last durable record is lost — the disk acknowledged a
            write it never persisted.
        torn_write_rate: probability (per crash) that the final record
            is *torn* — partially written and unreadable at replay,
            so recovery stops before it.
        amnesia_rate: probability (per crash) that the entire log is
            wiped; the site rejoins as a fresh replica (anti-entropy
            re-validates its copies) and refuses to vote on state it
            no longer has.
    """

    flush_time: float = 0.5
    tail_loss_rate: float = 0.0
    torn_write_rate: float = 0.0
    amnesia_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.flush_time < 0:
            raise ValueError(
                f"flush_time must be >= 0, got {self.flush_time}"
            )
        for label, value in (
            ("tail_loss_rate", self.tail_loss_rate),
            ("torn_write_rate", self.torn_write_rate),
            ("amnesia_rate", self.amnesia_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")


class DurabilityManager:
    """Simulated per-site WAL: forces, crash truncation, replay."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.config: DurabilityConfig = sim.config.durability
        # A private stream (the injector/network convention): fault
        # draws must not perturb arrival, restart, crash, or chaos
        # randomness.
        self._rng = random.Random(
            (sim.config.seed + 1) * 1_000_003 + _DISC_SALT
        )
        n_sites = len(sim.site_names())
        #: per-site durable log: a list of plain-tuple records.
        self._logs: list[list[tuple]] = [[] for _ in range(n_sites)]
        #: in-flight flushes: lsn -> (sid, record, cont, cancel).
        self._pending: dict[int, tuple] = {}
        #: (sid, *record) of every in-flight flush, for dedup.
        self._pending_keys: set = set()
        #: (sid, kind, txn, attempt) of every durable record.
        self._index: set = set()
        self._next_lsn = 0
        #: unresolved in-doubt participants: (txn, sid).
        self._in_doubt: set[tuple[int, int]] = set()
        #: one entry per replayed recovery, for the conformance
        #: harness: {"site", "time", "implied", "reacquired",
        #: "in_doubt", "presumed"}.
        self.recovery_reports: list[dict] = []

    def attach(self) -> None:
        """Register the flush-completion and inquiry-retry events."""
        sim = self.sim
        sim.register_handler("dur_flush", self._on_flush)
        sim.register_handler("dur_requery", self._on_requery)

    # ------------------------------------------------------------------
    # the force seam
    # ------------------------------------------------------------------

    def force(self, site: str, record: tuple, cont, cancel=None) -> None:
        """Force ``record`` onto ``site``'s log, then run ``cont``.

        The flush takes ``flush_time``; a crash of the site before it
        completes cancels it (the record was never durable) and runs
        ``cancel`` instead, so callers can re-arm retry chains. The
        record's second slot must be the transaction id (the
        ``dur_flush`` event carries it for probe sampling and
        attribution).
        """
        sim = self.sim
        sid = sim.site_id(site)
        lsn = self._next_lsn
        self._next_lsn = lsn + 1
        record = tuple(record)
        self._pending[lsn] = (sid, record, cont, cancel)
        self._pending_keys.add((sid,) + record)
        sim.schedule(
            self.config.flush_time, ("dur_flush", record[1], sid, lsn)
        )

    def _on_flush(self, txn: int, sid: int, lsn: int) -> None:
        entry = self._pending.pop(lsn, None)
        if entry is None:
            return  # cancelled: the site crashed mid-flush
        sid, record, cont, _cancel = entry
        self._pending_keys.discard((sid,) + record)
        self._logs[sid].append(record)
        self._index.add((sid, record[0], record[1], record[2]))
        self.sim.result.log_forces += 1
        cont()

    def flush_pending(self, site: str, record: tuple) -> bool:
        """Whether exactly this record is already being flushed."""
        return (
            (self.sim.site_id(site),) + tuple(record) in self._pending_keys
        )

    def has_prepare(self, site: str, txn: int, attempt: int) -> bool:
        """Whether ``site`` holds a durable prepare record."""
        return (
            self.sim.site_id(site), "prepare", txn, attempt
        ) in self._index

    def has_decision(self, site: str, txn: int, attempt: int) -> bool:
        """Whether ``site`` holds a durable decision record."""
        return (
            self.sim.site_id(site), "decision", txn, attempt
        ) in self._index

    def log(self, site: str) -> tuple:
        """The site's durable log, oldest record first."""
        return tuple(self._logs[self.sim.site_id(site)])

    # ------------------------------------------------------------------
    # in-doubt bookkeeping
    # ------------------------------------------------------------------

    def resolved(self, txn: int, site: str) -> None:
        """A decision reached ``site``'s in-doubt participant state."""
        key = (txn, self.sim.site_id(site))
        if key in self._in_doubt:
            self._in_doubt.discard(key)
            self.sim.result.in_doubt_resolved += 1

    def in_doubt(self, site: str | None = None) -> set:
        """The unresolved in-doubt ``(txn, sid)`` pairs."""
        if site is None:
            return set(self._in_doubt)
        sid = self.sim.site_id(site)
        return {key for key in self._in_doubt if key[1] == sid}

    def _send_inquiry(self, txn: int, site: str, attempt: int) -> None:
        sim = self.sim
        target = sim.commit.inquiry_target(txn)
        if target is None:
            return  # no protocol round state to ask (instant commit)
        delay = 0.0 if target == site else sim.config.network_delay
        sim.result.commit_messages += 1
        sim.transmit(
            sim.site_id(site), sim.site_id(target), delay,
            ("cm_inquire", txn, site, attempt),
        )
        sim.schedule(
            sim.config.commit_timeout,
            ("dur_requery", txn, site, attempt),
        )

    def _on_requery(self, txn: int, site: str, attempt: int) -> None:
        """Re-ask while the in-doubt window stays open.

        A lost inquiry (partition cut, crashed coordinator) must not
        orphan the participant: as long as the entry is unresolved and
        still current, the question is repeated every
        ``commit_timeout`` — the protocols' own retry convention.
        """
        sim = self.sim
        sid = sim.site_id(site)
        if (txn, sid) not in self._in_doubt:
            return  # resolved (a decision or status answer arrived)
        inst = sim.instance(txn)
        if inst.attempt != attempt:
            # The round aborted and the transaction moved on: the
            # stale entry resolves by presumption.
            self.resolved(txn, site)
            return
        if not sim.site_is_up(site):
            return  # crashed again; the next recovery re-inquires
        self._send_inquiry(txn, site, attempt)

    # ------------------------------------------------------------------
    # crash: truncate volatile state to log contents
    # ------------------------------------------------------------------

    def on_site_crash(self, site: str) -> None:
        """Apply the durability consequences of a crash of ``site``.

        Called by the failure injector after :meth:`Simulator.
        crash_site` aborted the RUNNING transactions: in-flight
        flushes are cancelled, the fault model may truncate or wipe
        the log, and the survivors' (prepared/committed holders')
        lock-table entries at the site are dropped — recovery replay,
        not magic, brings back what the log implies.
        """
        sim = self.sim
        sid = sim.site_id(site)
        # 1. Cancel in-flight flushes: those records were never
        # durable. Cancel hooks re-arm protocol retry chains.
        doomed = [
            lsn for lsn, entry in self._pending.items() if entry[0] == sid
        ]
        for lsn in doomed:
            _sid, record, _cont, cancel = self._pending.pop(lsn)
            self._pending_keys.discard((sid,) + record)
            if cancel is not None:
                cancel()
        # 2. Durability fault draws (dedicated stream).
        log = self._logs[sid]
        if log:
            config = self.config
            rng = self._rng
            if rng.random() < config.amnesia_rate:
                del log[:]
                sim.result.amnesia_wipes += 1
                sim.commit.on_durability_wipe(site)
            else:
                if rng.random() < config.torn_write_rate:
                    log.pop()
                    sim.result.torn_writes += 1
                if log and rng.random() < config.tail_loss_rate:
                    log.pop()
                    sim.result.tail_losses += 1
            self._rebuild_index(sid)
        # 3. Truncate volatile lock state to the (empty) table: the
        # crash already aborted every RUNNING transaction, so what
        # remains involved here is prepared/committed holders — their
        # retained entries are volatile too and are lost with the
        # site. (Queues are empty: the aborts cancelled every waiter,
        # so release_all grants nothing; delivered defensively.)
        table = sim.lock_tables()[site]
        for txn in list(table.involved()):
            inst = sim.instance(txn)
            for entry in [e for e in inst.retained if e[1] == sid]:
                inst.retained.discard(entry)
                sim._retained_total -= 1
            for eid, granted in table.release_all(txn):
                for grantee in granted:  # pragma: no cover - defensive
                    sim._on_grant(grantee, eid, sid)

    def _rebuild_index(self, sid: int) -> None:
        self._index = {key for key in self._index if key[0] != sid}
        for record in self._logs[sid]:
            self._index.add((sid, record[0], record[1], record[2]))

    # ------------------------------------------------------------------
    # recovery: analysis pass + replay + in-doubt inquiry
    # ------------------------------------------------------------------

    def log_implied_locks(self, site: str) -> set:
        """``(txn, eid)`` entries the log implies are retained here.

        Pure log analysis: the latest prepare record of each
        transaction, minus those with a matching decision record,
        minus those whose attempt is stale or whose transaction is no
        longer prepared/committed (the round aborted while the site
        was down — presumption releases them without re-acquisition).
        """
        sim = self.sim
        sid = sim.site_id(site)
        prepared, decided = self._analyze(sid)
        implied = set()
        for txn, (attempt, locks) in prepared.items():
            if (txn, attempt) in decided:
                continue
            inst = sim.instance(txn)
            if inst.attempt != attempt or inst.status not in (
                _PREPARED, _COMMITTED
            ):
                continue
            implied.update(
                (txn, eid) for eid, held in locks if held == sid
            )
        return implied

    def _analyze(self, sid: int) -> tuple[dict, set]:
        prepared: dict[int, tuple] = {}
        decided: set = set()
        for record in self._logs[sid]:
            kind = record[0]
            if kind == "prepare":
                prepared[record[1]] = (record[2], record[3])
            elif kind == "decision":
                decided.add((record[1], record[2]))
        return prepared, decided

    def on_site_recover(self, site: str) -> None:
        """Replay the site's log: re-acquire, reconstruct, inquire.

        Called by the failure injector after the site is marked up.
        The replay re-acquires exactly the log-implied retained locks
        (the table is empty, so every request grants), rebuilds the
        in-doubt set from prepare-without-decision records, and sends
        a ``cm_inquire`` per in-doubt transaction; stale records
        resolve by presumption on the spot.
        """
        sim = self.sim
        sid = sim.site_id(site)
        log = self._logs[sid]
        if not log:
            return  # nothing durable: rejoin as a fresh replica
        sim.result.log_replays += 1
        implied = self.log_implied_locks(site)
        prepared, decided = self._analyze(sid)
        table = sim.lock_tables()[site]
        reacquired = set()
        in_doubt = []
        presumed = 0
        for txn in sorted(prepared):
            attempt, locks = prepared[txn]
            if (txn, attempt) in decided:
                continue  # decided and released before the crash
            inst = sim.instance(txn)
            if inst.attempt != attempt or inst.status not in (
                _PREPARED, _COMMITTED
            ):
                # Presumption: the round aborted while we were down;
                # there is nothing to hold and nobody to ask.
                presumed += 1
                self.resolved(txn, site)  # no-op unless re-crashed
                sim.result.in_doubt_resolved += 1
                continue
            for eid, held in locks:
                if held != sid or (eid, held) in inst.retained:
                    continue
                mode = SHARED if eid in inst.shared_eids else EXCLUSIVE
                if table.request(txn, eid, mode):
                    inst.retained.add((eid, held))
                    sim._retained_total += 1
                    reacquired.add((txn, eid))
                else:  # pragma: no cover - empty-table requests grant
                    table.cancel_wait(txn, eid)
            in_doubt.append((txn, attempt))
            self._in_doubt.add((txn, sid))
        for txn, attempt in in_doubt:
            self._send_inquiry(txn, site, attempt)
        self.recovery_reports.append({
            "site": site,
            "time": sim.now,
            "implied": implied,
            "reacquired": reacquired,
            "in_doubt": len(in_doubt),
            "presumed": presumed,
        })
