"""Per-site lock tables with shared/exclusive modes and FIFO queues.

Each site manages locks on the entity replicas it stores — the
distributed aspect of the model. Grant decisions are purely local;
global phenomena (deadlock among sites) emerge from the composition,
exactly as in the paper's setting.

Two lock modes exist:

* ``"X"`` (exclusive) — the classical mode of the paper: at most one
  holder, everything else queues. This is the default, and with only
  exclusive requests the manager behaves exactly like the historical
  exclusive-only table.
* ``"S"`` (shared) — read locks: any number of shared holders coexist.
  A shared request joins the FIFO queue whenever the queue is
  non-empty, even if the current holders are all shared — writers are
  therefore never starved by a stream of late readers.

Grant policy on release: when the last holder leaves, the queue's
front request is granted, and if it is shared, the maximal prefix of
consecutive shared requests is granted with it (a read batch).

Upgrade path (``S`` -> ``X``): a shared holder may re-request the
entity exclusively. If it is the sole holder the upgrade is immediate;
otherwise the upgrade waits at the *front* of the queue and is granted
when the other shared holders release. Two simultaneous upgrades on
one entity would deadlock against each other, so the second raises
``ValueError`` — callers must abort one of the transactions instead.
"""

from __future__ import annotations

from collections import deque

from repro.core.entity import Entity

__all__ = ["EXCLUSIVE", "SHARED", "SiteLockManager"]

SHARED = "S"
EXCLUSIVE = "X"
_MODES = (SHARED, EXCLUSIVE)


class SiteLockManager:
    """Shared/exclusive locks for the entity replicas of one site.

    Lock requests are granted immediately when compatible (see module
    docstring), otherwise queued FIFO. Waiters can be cancelled (policy
    aborts) and holders force-released (wounds, aborts).
    """

    def __init__(self, site: str):
        self.site = site
        # entity -> {txn: mode}; insertion order is grant order.
        self._holders: dict[Entity, dict[int, str]] = {}
        self._queue: dict[Entity, deque[tuple[int, str]]] = {}

    # ------------------------------------------------------------------
    # requests and releases
    # ------------------------------------------------------------------

    def request(self, txn: int, entity: Entity, mode: str = EXCLUSIVE) -> bool:
        """Request the lock in ``mode``; True if granted now.

        Raises:
            ValueError: if ``mode`` is unknown, if ``txn`` already holds
                or waits for the entity (the model's one-Lock-per-entity
                rule makes this a caller bug) — except for the defined
                S -> X upgrade — or on a second concurrent upgrade
                (which would deadlock the upgraders against each other).
        """
        if mode not in _MODES:
            raise ValueError(f"unknown lock mode {mode!r}")
        holders = self._holders.get(entity)
        if holders and txn in holders:
            if mode == SHARED or holders[txn] == EXCLUSIVE:
                raise ValueError(f"T{txn} already holds {entity!r}")
            return self._request_upgrade(txn, entity, holders)
        queue = self._queue.get(entity)
        if queue is not None and any(t == txn for t, _m in queue):
            raise ValueError(f"T{txn} already waits for {entity!r}")
        if not holders:
            # Free entity: the queue is empty by invariant, grant.
            self._holders[entity] = {txn: mode}
            return True
        if (
            mode == SHARED
            and not queue
            and all(m == SHARED for m in holders.values())
        ):
            holders[txn] = SHARED
            return True
        self._queue.setdefault(entity, deque()).append((txn, mode))
        return False

    def _request_upgrade(
        self, txn: int, entity: Entity, holders: dict[int, str]
    ) -> bool:
        """S -> X upgrade of a current shared holder."""
        if len(holders) == 1:
            holders[txn] = EXCLUSIVE
            return True
        queue = self._queue.setdefault(entity, deque())
        if queue and queue[0][1] == EXCLUSIVE and queue[0][0] in holders:
            raise ValueError(
                f"T{txn} and T{queue[0][0]} would deadlock upgrading "
                f"{entity!r}"
            )
        queue.appendleft((txn, EXCLUSIVE))
        return False

    def release(self, txn: int, entity: Entity) -> list[int]:
        """Release a held lock; returns the waiters granted by it.

        Zero, one, or many waiters can be granted: none while other
        shared holders remain, one for an exclusive (or upgrade) grant,
        many for a batch of consecutive shared requests.

        Raises:
            ValueError: if ``txn`` does not hold the entity.
        """
        holders = self._holders.get(entity)
        if not holders or txn not in holders:
            raise ValueError(f"T{txn} does not hold {entity!r}")
        del holders[txn]
        # A pending upgrade of the releaser dies with its shared grant.
        self._cancel_queued(txn, entity)
        granted = self._grant_from_queue(entity)
        if not self._holders.get(entity):
            self._holders.pop(entity, None)
        return granted

    def _grant_from_queue(self, entity: Entity) -> list[int]:
        """Grant whatever the queue's front is now entitled to."""
        queue = self._queue.get(entity)
        if not queue:
            return []
        holders = self._holders.setdefault(entity, {})
        granted: list[int] = []
        front_txn, front_mode = queue[0]
        if holders:
            if (
                front_mode == EXCLUSIVE
                and len(holders) == 1
                and front_txn in holders
            ):
                # A front-of-queue upgrade whose owner is now the sole
                # holder proceeds.
                queue.popleft()
                holders[front_txn] = EXCLUSIVE
                granted.append(front_txn)
            # A cancelled (or upgraded-away) writer can expose a front
            # read batch compatible with all-shared holders.
            share_batch = front_mode == SHARED and all(
                mode == SHARED for mode in holders.values()
            )
        else:
            queue.popleft()
            holders[front_txn] = front_mode
            granted.append(front_txn)
            share_batch = front_mode == SHARED
        if share_batch:
            while queue and queue[0][1] == SHARED:
                txn, _mode = queue.popleft()
                holders[txn] = SHARED
                granted.append(txn)
        if not queue:
            del self._queue[entity]
        if not holders:
            self._holders.pop(entity, None)
        return granted

    def _cancel_queued(self, txn: int, entity: Entity) -> None:
        queue = self._queue.get(entity)
        if not queue:
            return
        entry = next((e for e in queue if e[0] == txn), None)
        if entry is not None:
            queue.remove(entry)
            if not queue:
                del self._queue[entity]

    def cancel_wait(self, txn: int, entity: Entity) -> list[int]:
        """Remove ``txn`` from the wait queue of ``entity``.

        Returns the waiters granted by the removal: cancelling a
        queued writer can expose a front batch of shared requests that
        is compatible with the current shared holders (with exclusive
        grants nothing ever unblocks this way, matching the historical
        no-op). No-op for an absent ``txn``.
        """
        queue = self._queue.get(entity)
        if not queue or not any(t == txn for t, _m in queue):
            return []
        self._cancel_queued(txn, entity)
        return self._grant_from_queue(entity)

    def release_all(self, txn: int) -> list[tuple[Entity, list[int]]]:
        """Release every lock ``txn`` holds at this site.

        Returns:
            ``(entity, granted_txns)`` for each released entity.
        """
        held = [e for e, holders in self._holders.items() if txn in holders]
        return [(entity, self.release(txn, entity)) for entity in held]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def holder(self, entity: Entity) -> int | None:
        """The sole holder of ``entity``, or None.

        With shared locks an entity can have many holders; this
        single-holder view (used by exclusive-only callers) answers
        None whenever the holder is not unique — use :meth:`holders`
        for the full list.
        """
        holders = self._holders.get(entity)
        if holders and len(holders) == 1:
            return next(iter(holders))
        return None

    def holders(self, entity: Entity) -> list[int]:
        """Every current holder of ``entity``, sorted."""
        return sorted(self._holders.get(entity, ()))

    def mode(self, entity: Entity) -> str | None:
        """The granted mode of ``entity`` (None when free)."""
        holders = self._holders.get(entity)
        if not holders:
            return None
        modes = set(holders.values())
        return EXCLUSIVE if EXCLUSIVE in modes else SHARED

    def waiters(self, entity: Entity) -> list[int]:
        return [txn for txn, _mode in self._queue.get(entity, ())]

    def queued_mode(self, entity: Entity, txn: int) -> str | None:
        """The mode ``txn`` is queued for on ``entity`` (None if not
        queued)."""
        for queued, mode in self._queue.get(entity, ()):
            if queued == txn:
                return mode
        return None

    def involved(self) -> list[int]:
        """Every transaction holding or waiting for a lock at this site.

        Used by the failure injector: a site crash touches exactly the
        transactions with lock state here.
        """
        txns = set()
        for holders in self._holders.values():
            txns.update(holders)
        for queue in self._queue.values():
            txns.update(txn for txn, _mode in queue)
        return sorted(txns)

    def held_by(self, txn: int) -> list[Entity]:
        return sorted(
            entity for entity, holders in self._holders.items()
            if txn in holders
        )

    def waiting_for(self, txn: int) -> list[Entity]:
        return sorted(
            entity
            for entity, queue in self._queue.items()
            if any(t == txn for t, _mode in queue)
        )

    def __repr__(self) -> str:
        held = {e: dict(h) for e, h in self._holders.items()}
        queued = {e: list(q) for e, q in self._queue.items()}
        return f"SiteLockManager({self.site!r}, held={held}, queued={queued})"
