"""Per-site lock tables with FIFO wait queues.

Each site manages exclusive locks on its own entities — the distributed
aspect of the model. Grant decisions are purely local; global phenomena
(deadlock among sites) emerge from the composition, exactly as in the
paper's setting.
"""

from __future__ import annotations

from collections import deque

from repro.core.entity import Entity

__all__ = ["SiteLockManager"]


class SiteLockManager:
    """Exclusive locks for the entities of one site.

    Lock requests are granted immediately when the entity is free,
    otherwise queued FIFO. Waiters can be cancelled (policy aborts) and
    holders force-released (wounds, aborts).
    """

    def __init__(self, site: str):
        self.site = site
        self._holder: dict[Entity, int] = {}
        self._queue: dict[Entity, deque[int]] = {}

    # ------------------------------------------------------------------
    # requests and releases
    # ------------------------------------------------------------------

    def request(self, txn: int, entity: Entity) -> bool:
        """Request the lock; True if granted now, False if queued.

        Raises:
            ValueError: if ``txn`` already holds or already waits for the
                entity (the model's one-Lock-per-entity rule makes this a
                caller bug).
        """
        holder = self._holder.get(entity)
        if holder == txn:
            raise ValueError(f"T{txn} already holds {entity!r}")
        if holder is None:
            self._holder[entity] = txn
            return True
        queue = self._queue.setdefault(entity, deque())
        if txn in queue:
            raise ValueError(f"T{txn} already waits for {entity!r}")
        queue.append(txn)
        return False

    def release(self, txn: int, entity: Entity) -> int | None:
        """Release a held lock; returns the next waiter granted, if any.

        Raises:
            ValueError: if ``txn`` does not hold the entity.
        """
        if self._holder.get(entity) != txn:
            raise ValueError(f"T{txn} does not hold {entity!r}")
        queue = self._queue.get(entity)
        if queue:
            nxt = queue.popleft()
            self._holder[entity] = nxt
            if not queue:
                del self._queue[entity]
            return nxt
        del self._holder[entity]
        return None

    def cancel_wait(self, txn: int, entity: Entity) -> None:
        """Remove ``txn`` from the wait queue of ``entity`` (no-op if
        absent)."""
        queue = self._queue.get(entity)
        if queue and txn in queue:
            queue.remove(txn)
            if not queue:
                del self._queue[entity]

    def release_all(self, txn: int) -> list[tuple[Entity, int | None]]:
        """Release every lock ``txn`` holds at this site.

        Returns:
            ``(entity, granted_txn_or_None)`` for each released entity.
        """
        held = [e for e, holder in self._holder.items() if holder == txn]
        return [(entity, self.release(txn, entity)) for entity in held]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def holder(self, entity: Entity) -> int | None:
        return self._holder.get(entity)

    def waiters(self, entity: Entity) -> list[int]:
        return list(self._queue.get(entity, ()))

    def involved(self) -> list[int]:
        """Every transaction holding or waiting for a lock at this site.

        Used by the failure injector: a site crash touches exactly the
        transactions with lock state here.
        """
        txns = set(self._holder.values())
        for queue in self._queue.values():
            txns.update(queue)
        return sorted(txns)

    def held_by(self, txn: int) -> list[Entity]:
        return sorted(
            entity for entity, holder in self._holder.items()
            if holder == txn
        )

    def waiting_for(self, txn: int) -> list[Entity]:
        return sorted(
            entity
            for entity, queue in self._queue.items()
            if txn in queue
        )

    def __repr__(self) -> str:
        return (
            f"SiteLockManager({self.site!r}, held={dict(self._holder)}, "
            f"queued={{k: list(v) for k, v in self._queue.items()}})"
        )
