"""Per-site lock tables with shared/exclusive modes and FIFO queues.

Each site manages locks on the entity replicas it stores — the
distributed aspect of the model. Grant decisions are purely local;
global phenomena (deadlock among sites) emerge from the composition,
exactly as in the paper's setting.

Two lock modes exist:

* ``"X"`` (exclusive) — the classical mode of the paper: at most one
  holder, everything else queues. This is the default, and with only
  exclusive requests the manager behaves exactly like the historical
  exclusive-only table.
* ``"S"`` (shared) — read locks: any number of shared holders coexist.
  A shared request joins the FIFO queue whenever the queue is
  non-empty, even if the current holders are all shared — writers are
  therefore never starved by a stream of late readers.

Grant policy on release: when the last holder leaves, the queue's
front request is granted, and if it is shared, the maximal prefix of
consecutive shared requests is granted with it (a read batch).

Upgrade path (``S`` -> ``X``): a shared holder may re-request the
entity exclusively. If it is the sole holder the upgrade is immediate;
otherwise the upgrade waits at the *front* of the queue and is granted
when the other shared holders release. Two simultaneous upgrades on
one entity would deadlock against each other, so the second raises
``ValueError`` — callers must abort one of the transactions instead.

Performance notes (the fast-path PR): the wait queue is an
insertion-ordered dict (FIFO by dict order, O(1) membership and
cancellation instead of deque scans), and two per-transaction indexes
— ``_txn_held`` and ``_txn_wait`` — make :meth:`release_all`,
:meth:`involved`, :meth:`held_by`, and :meth:`waiting_for` proportional
to the transaction's own lock state rather than to the site's whole
table. ``release_all`` replays the exact historical release order (the
``_holders`` key insertion order) via per-entity slot counters, so
grant cascades — and therefore whole simulations — stay bit-identical
to the pre-index implementation. An optional ``observer``
(:class:`~repro.sim.waitsfor.SiteCellObserver`) receives the four
primitive cell mutations — wait, unwait, hold, unhold — which is how
the runtime maintains the waits-for graph incrementally at O(edge
delta) cost per lock operation.

Entity keys are opaque hashables: the simulator interns entities to
dense integer ids, while direct users (tests, examples) may keep
strings — the table never inspects the keys beyond hashing/sorting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.entity import Entity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.waitsfor import SiteCellObserver

__all__ = ["EXCLUSIVE", "SHARED", "SiteLockManager"]

SHARED = "S"
EXCLUSIVE = "X"
_MODES = (SHARED, EXCLUSIVE)


class SiteLockManager:
    """Shared/exclusive locks for the entity replicas of one site.

    Lock requests are granted immediately when compatible (see module
    docstring), otherwise queued FIFO. Waiters can be cancelled (policy
    aborts) and holders force-released (wounds, aborts).
    """

    __slots__ = (
        "site", "_holders", "_queue", "_txn_held", "_txn_wait",
        "_slot", "_next_slot", "observer",
    )

    def __init__(self, site: str):
        self.site = site
        # entity -> {txn: mode}; insertion order is grant order, and the
        # *key* order (which entity became continuously held first) is
        # the historical release_all order.
        self._holders: dict[Entity, dict[int, str]] = {}
        # entity -> {txn: mode}; dict order is FIFO queue order.
        self._queue: dict[Entity, dict[int, str]] = {}
        # txn -> entities it holds / waits for at this site.
        self._txn_held: dict[int, set[Entity]] = {}
        self._txn_wait: dict[int, set[Entity]] = {}
        # entity -> monotone counter stamped when its _holders key was
        # created; orders release_all like the _holders dict scan did.
        self._slot: dict[Entity, int] = {}
        self._next_slot = 0
        # Receives wait/unwait/hold/unhold cell mutations (None = no
        # observer; the runtime attaches one for the policies that
        # consume the waits-for graph).
        self.observer: "SiteCellObserver | None" = None

    # ------------------------------------------------------------------
    # index upkeep
    # ------------------------------------------------------------------

    def _new_holder_cell(self, entity: Entity) -> dict[int, str]:
        holders = self._holders.get(entity)
        if holders is None:
            holders = self._holders[entity] = {}
            self._slot[entity] = self._next_slot
            self._next_slot += 1
        return holders

    def _drop_holder_cell_if_empty(self, entity: Entity) -> None:
        if not self._holders.get(entity, True):
            del self._holders[entity]
            del self._slot[entity]

    def _index_add(
        self, index: dict[int, set[Entity]], txn: int, entity: Entity
    ) -> None:
        entities = index.get(txn)
        if entities is None:
            entities = index[txn] = set()
        entities.add(entity)

    def _index_discard(
        self, index: dict[int, set[Entity]], txn: int, entity: Entity
    ) -> None:
        entities = index.get(txn)
        if entities is not None:
            entities.discard(entity)
            if not entities:
                del index[txn]

    # ------------------------------------------------------------------
    # requests and releases
    # ------------------------------------------------------------------

    def request(self, txn: int, entity: Entity, mode: str = EXCLUSIVE) -> bool:
        """Request the lock in ``mode``; True if granted now.

        Raises:
            ValueError: if ``mode`` is unknown, if ``txn`` already holds
                or waits for the entity (the model's one-Lock-per-entity
                rule makes this a caller bug) — except for the defined
                S -> X upgrade — or on a second concurrent upgrade
                (which would deadlock the upgraders against each other).
        """
        if mode not in _MODES:
            raise ValueError(f"unknown lock mode {mode!r}")
        holders = self._holders.get(entity)
        if holders is None:
            # Free entity — the common case: the queue is empty by
            # invariant (waiters exist only under a holder), so grant
            # immediately with the cell bookkeeping inlined.
            self._slot[entity] = self._next_slot
            self._next_slot += 1
            self._holders[entity] = {txn: mode}
            held = self._txn_held.get(txn)
            if held is None:
                self._txn_held[txn] = {entity}
            else:
                held.add(entity)
            if self.observer is not None:
                self.observer.hold(entity, txn)
            return True
        if holders and txn in holders:
            if mode == SHARED or holders[txn] == EXCLUSIVE:
                raise ValueError(f"T{txn} already holds {entity!r}")
            return self._request_upgrade(txn, entity, holders)
        waited = self._txn_wait.get(txn)
        if waited is not None and entity in waited:
            raise ValueError(f"T{txn} already waits for {entity!r}")
        if not holders:
            # A transiently empty cell (mid-grant): reuse it.
            self._new_holder_cell(entity)[txn] = mode
            self._index_add(self._txn_held, txn, entity)
            if self.observer is not None:
                self.observer.hold(entity, txn)
            return True
        queue = self._queue.get(entity)
        if (
            mode == SHARED
            and not queue
            and all(m == SHARED for m in holders.values())
        ):
            holders[txn] = SHARED
            self._index_add(self._txn_held, txn, entity)
            if self.observer is not None:
                self.observer.hold(entity, txn)
            return True
        if queue is None:
            queue = self._queue[entity] = {}
        queue[txn] = mode
        self._index_add(self._txn_wait, txn, entity)
        if self.observer is not None:
            self.observer.wait(entity, txn)
        return False

    def _request_upgrade(
        self, txn: int, entity: Entity, holders: dict[int, str]
    ) -> bool:
        """S -> X upgrade of a current shared holder."""
        if len(holders) == 1:
            holders[txn] = EXCLUSIVE  # membership unchanged: no event
            return True
        queue = self._queue.get(entity)
        if queue:
            front_txn, front_mode = next(iter(queue.items()))
            if front_mode == EXCLUSIVE and front_txn in holders:
                raise ValueError(
                    f"T{txn} and T{front_txn} would deadlock upgrading "
                    f"{entity!r}"
                )
        # The upgrade waits at the *front* of the queue.
        rebuilt = {txn: EXCLUSIVE}
        if queue:
            rebuilt.update(queue)
        self._queue[entity] = rebuilt
        self._index_add(self._txn_wait, txn, entity)
        if self.observer is not None:
            self.observer.wait(entity, txn)
        return False

    def release(self, txn: int, entity: Entity) -> list[int]:
        """Release a held lock; returns the waiters granted by it.

        Zero, one, or many waiters can be granted: none while other
        shared holders remain, one for an exclusive (or upgrade) grant,
        many for a batch of consecutive shared requests.

        Raises:
            ValueError: if ``txn`` does not hold the entity.
        """
        holders = self._holders.get(entity)
        if not holders or txn not in holders:
            raise ValueError(f"T{txn} does not hold {entity!r}")
        del holders[txn]
        self._index_discard(self._txn_held, txn, entity)
        if self.observer is not None:
            self.observer.unhold(entity, txn)
        queue = self._queue.get(entity)
        if queue is None:
            # No waiters: nothing to cancel, nothing to grant.
            if not holders:
                del self._holders[entity]
                del self._slot[entity]
            return []
        # A pending upgrade of the releaser dies with its shared grant.
        if txn in queue:
            self._cancel_queued(txn, entity)
        granted = self._grant_from_queue(entity)
        self._drop_holder_cell_if_empty(entity)
        return granted

    def _grant_from_queue(self, entity: Entity) -> list[int]:
        """Grant whatever the queue's front is now entitled to."""
        queue = self._queue.get(entity)
        if not queue:
            return []
        holders = self._new_holder_cell(entity)
        granted: list[int] = []
        front_txn, front_mode = next(iter(queue.items()))
        if holders:
            if (
                front_mode == EXCLUSIVE
                and len(holders) == 1
                and front_txn in holders
            ):
                # A front-of-queue upgrade whose owner is now the sole
                # holder proceeds (already a holder: unwait only).
                del queue[front_txn]
                self._index_discard(self._txn_wait, front_txn, entity)
                if self.observer is not None:
                    self.observer.unwait(entity, front_txn)
                holders[front_txn] = EXCLUSIVE
                granted.append(front_txn)
            # A cancelled (or upgraded-away) writer can expose a front
            # read batch compatible with all-shared holders.
            share_batch = front_mode == SHARED and all(
                mode == SHARED for mode in holders.values()
            )
        else:
            del queue[front_txn]
            self._index_discard(self._txn_wait, front_txn, entity)
            holders[front_txn] = front_mode
            self._index_add(self._txn_held, front_txn, entity)
            if self.observer is not None:
                self.observer.unwait(entity, front_txn)
                self.observer.hold(entity, front_txn)
            granted.append(front_txn)
            share_batch = front_mode == SHARED
        if share_batch:
            while queue:
                txn, mode = next(iter(queue.items()))
                if mode != SHARED:
                    break
                del queue[txn]
                self._index_discard(self._txn_wait, txn, entity)
                holders[txn] = SHARED
                self._index_add(self._txn_held, txn, entity)
                if self.observer is not None:
                    self.observer.unwait(entity, txn)
                    self.observer.hold(entity, txn)
                granted.append(txn)
        if not queue:
            del self._queue[entity]
        self._drop_holder_cell_if_empty(entity)
        return granted

    def _cancel_queued(self, txn: int, entity: Entity) -> None:
        queue = self._queue.get(entity)
        if not queue or txn not in queue:
            return
        del queue[txn]
        self._index_discard(self._txn_wait, txn, entity)
        if self.observer is not None:
            self.observer.unwait(entity, txn)
        if not queue:
            del self._queue[entity]

    def cancel_wait(self, txn: int, entity: Entity) -> list[int]:
        """Remove ``txn`` from the wait queue of ``entity``.

        Returns the waiters granted by the removal: cancelling a
        queued writer can expose a front batch of shared requests that
        is compatible with the current shared holders (with exclusive
        grants nothing ever unblocks this way, matching the historical
        no-op). No-op for an absent ``txn``.
        """
        queue = self._queue.get(entity)
        if not queue or txn not in queue:
            return []
        self._cancel_queued(txn, entity)
        return self._grant_from_queue(entity)

    def release_all(self, txn: int) -> list[tuple[Entity, list[int]]]:
        """Release every lock ``txn`` holds at this site.

        O(1) when the transaction holds nothing here; otherwise
        proportional to its own held set. The release order is the
        ``_holders`` key order (slot order), matching the historical
        full-table scan exactly — grant cascades depend on it.

        Returns:
            ``(entity, granted_txns)`` for each released entity.
        """
        held = self._txn_held.get(txn)
        if not held:
            return []
        slot = self._slot
        ordered = sorted(held, key=slot.__getitem__)
        return [(entity, self.release(txn, entity)) for entity in ordered]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def holder(self, entity: Entity) -> int | None:
        """The sole holder of ``entity``, or None.

        With shared locks an entity can have many holders; this
        single-holder view (used by exclusive-only callers) answers
        None whenever the holder is not unique — use :meth:`holders`
        for the full list.
        """
        holders = self._holders.get(entity)
        if holders and len(holders) == 1:
            return next(iter(holders))
        return None

    def holders(self, entity: Entity) -> list[int]:
        """Every current holder of ``entity``, sorted."""
        return sorted(self._holders.get(entity, ()))

    def holders_map(self, entity: Entity) -> dict[int, str] | None:
        """The internal holder cell ``{txn: mode}`` (None when free).

        Hot-path accessor for the runtime: grant order preserved, no
        copy. Callers must not mutate it.
        """
        return self._holders.get(entity)

    def queue_map(self, entity: Entity) -> dict[int, str] | None:
        """The internal wait queue ``{txn: mode}`` in FIFO order.

        Hot-path accessor for the runtime; callers must not mutate it.
        """
        return self._queue.get(entity)

    def mode(self, entity: Entity) -> str | None:
        """The granted mode of ``entity`` (None when free)."""
        holders = self._holders.get(entity)
        if not holders:
            return None
        for m in holders.values():
            if m == EXCLUSIVE:
                return EXCLUSIVE
        return SHARED

    def waiters(self, entity: Entity) -> list[int]:
        return list(self._queue.get(entity, ()))

    def queued_mode(self, entity: Entity, txn: int) -> str | None:
        """The mode ``txn`` is queued for on ``entity`` (None if not
        queued)."""
        return self._queue.get(entity, {}).get(txn)

    def involved(self) -> list[int]:
        """Every transaction holding or waiting for a lock at this site.

        Used by the failure injector: a site crash touches exactly the
        transactions with lock state here.
        """
        txns = set(self._txn_held)
        txns.update(self._txn_wait)
        return sorted(txns)

    def is_involved(self, txn: int) -> bool:
        """O(1): does ``txn`` hold or wait for anything here?"""
        return txn in self._txn_held or txn in self._txn_wait

    def held_by(self, txn: int) -> list[Entity]:
        return sorted(self._txn_held.get(txn, ()))

    def waiting_for(self, txn: int) -> list[Entity]:
        return sorted(self._txn_wait.get(txn, ()))

    def __repr__(self) -> str:
        held = {e: dict(h) for e, h in self._holders.items()}
        queued = {e: list(q.items()) for e, q in self._queue.items()}
        return f"SiteLockManager({self.site!r}, held={held}, queued={queued})"
