"""Contention policies: what to do when a lock request hits a holder.

The *decision* vocabulary is small — wait, abort yourself, abort the
holder — and each classical scheme is a different mapping from the
(requester, holder) timestamp pair to a decision:

* blocking: always WAIT (deadlocks possible — the paper's regime);
* wound-wait [RSL]: older requester wounds (aborts) the holder, younger
  requester waits — no cycles can form, so deadlock-free;
* wait-die [RSL]: older requester waits, younger requester dies
  (aborts itself) — likewise deadlock-free;
* timeout: WAIT, but the runtime arms a timer that aborts the waiter;
* detection: WAIT, and a periodic detector breaks wait-for cycles by
  aborting the youngest participant.

Atomic commit adds a fourth decision: a holder that has *prepared*
(voted in a commit round, :mod:`repro.sim.commit`) can no longer be
unilaterally aborted, so the runtime downgrades ABORT_HOLDER to
WAIT_PREPARED — the requester blocks on the commit coordinator's
decision instead of wounding. The downgrade is safe for liveness
because a prepared transaction always receives a decision in finite
time (the coordinator retries through failures), so it cannot anchor a
permanent wait-for cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "BlockingPolicy",
    "Decision",
    "DetectionPolicy",
    "Policy",
    "TimeoutPolicy",
    "WaitDiePolicy",
    "WoundWaitPolicy",
    "make_policy",
]


class Decision(enum.Enum):
    """Outcome of a lock conflict.

    WAIT_PREPARED is never produced by a policy directly: the runtime
    substitutes it for ABORT_HOLDER when the holder sits in the
    PREPARED state of an atomic-commit round and therefore must keep
    its locks until the commit decision.
    """

    WAIT = "wait"
    ABORT_SELF = "abort-self"
    ABORT_HOLDER = "abort-holder"
    WAIT_PREPARED = "wait-prepared"


@dataclass(frozen=True)
class Policy:
    """Base policy: metadata plus the conflict rule (always WAIT)."""

    name: str = "blocking"
    uses_timeout: bool = False
    uses_detection: bool = False

    def on_conflict(
        self,
        requester_ts: float,
        holder_ts: float,
    ) -> Decision:
        """Decide a conflict given the two transactions' timestamps.

        Timestamps are first-start times; smaller = older. Retained
        across restarts so both RSL schemes are livelock-free.
        """
        return Decision.WAIT


class BlockingPolicy(Policy):
    """Pure waiting; deadlock possible."""

    def __init__(self) -> None:
        super().__init__(name="blocking")


class WoundWaitPolicy(Policy):
    """Older requester aborts the holder; younger requester waits."""

    def __init__(self) -> None:
        super().__init__(name="wound-wait")

    def on_conflict(self, requester_ts: float, holder_ts: float) -> Decision:
        if requester_ts < holder_ts:
            return Decision.ABORT_HOLDER
        return Decision.WAIT


class WaitDiePolicy(Policy):
    """Older requester waits; younger requester aborts itself."""

    def __init__(self) -> None:
        super().__init__(name="wait-die")

    def on_conflict(self, requester_ts: float, holder_ts: float) -> Decision:
        if requester_ts < holder_ts:
            return Decision.WAIT
        return Decision.ABORT_SELF


class TimeoutPolicy(Policy):
    """Wait, but the runtime aborts waits longer than the deadline."""

    def __init__(self) -> None:
        super().__init__(name="timeout", uses_timeout=True)


class DetectionPolicy(Policy):
    """Wait; a periodic wait-for-graph scan aborts cycle victims."""

    def __init__(self) -> None:
        super().__init__(name="detect", uses_detection=True)


_POLICIES = {
    "blocking": BlockingPolicy,
    "wound-wait": WoundWaitPolicy,
    "wait-die": WaitDiePolicy,
    "timeout": TimeoutPolicy,
    "detect": DetectionPolicy,
}


def make_policy(name: str) -> Policy:
    """Instantiate a policy by name.

    Raises:
        KeyError: for unknown names; valid ones are
            ``blocking, wound-wait, wait-die, timeout, detect``.
    """
    try:
        return _POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
