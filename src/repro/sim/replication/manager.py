"""Run-time replica state: placement, staleness, availability.

The :class:`ReplicaManager` is the simulator's single point of contact
with the replication layer. It owns

* the :class:`~repro.sim.replication.schema.ReplicatedSchema` derived
  from the run's workload spec (deterministic round-robin placement —
  no RNG stream is consumed, preserving run-level determinism);
* the protocol instance chosen by ``SimulationConfig.replica_protocol``;
* the *staleness* table, split into the two ways a copy can be unfit
  to serve reads under write-all-available:

  - **missed** — the copy provably missed a committed write: the write
    locked the replicas it could reach and this site was not among
    them. Only a later write that reaches the site clears it.
  - **unvalidated** — the site is freshly recovered and has not yet
    finished catching up. Its durable data may well be the latest
    version, but a recovering site cannot know what it missed, so it
    must *catch up before serving reads*: recovery starts an
    anti-entropy scan (one ``replica_catchup`` event per
    ``config.catchup_time``) that validates each copy against an up,
    fully current replica of the same entity — or, when no copy of an
    entity is fully current anywhere, by full-set reconciliation among
    the up copies that missed nothing (durable version stamps make the
    maximal version identifiable). Copies with no live source stay
    unvalidated and the scan retries; a fresh write (which targets
    every available replica, recovering ones included) also refreshes
    a copy early.

  A copy serves reads only when it is in neither set. Under strict
  ``rowa`` no committed write can ever skip a replica, so reads ignore
  the table; ``quorum`` masks staleness by version intersection
  instead of avoiding it. Catch-up events exist only when the schema
  is actually replicated *and* the protocol consults staleness
  (``rowa-available``): a single copy can never miss a write — a write
  to its entity needs the copy up — so single-copy recovery is
  trivially valid and the seed event stream is untouched;

* the availability integral: the fraction of entities whose read rule
  / write rule / both are currently satisfiable, integrated over
  simulated time. ``rowa`` loses write availability as soon as one
  replica site is down, ``rowa-available`` loses read availability
  while every current copy of an entity is crashed or awaiting
  catch-up, and ``quorum`` stays up through every minority failure.

Internally everything is keyed on the simulator's interned entity and
site ids (:meth:`~repro.sim.runtime.Simulator.entity_id` /
:meth:`~repro.sim.runtime.Simulator.site_id`): the hot per-lock calls
are :meth:`read_sids`/:meth:`write_sids`, and without fault injection
:meth:`constant_routes` precomputes every answer so the per-request
protocol call disappears entirely. The historical name-based methods
(``read_sites``, ``stale_replicas``, ...) remain as thin wrappers.

With ``replication_factor=1`` every entity has exactly its primary
replica, all protocols pick that single site, and the manager adds no
events, consumes no randomness, and changes no seed-era result field —
the bit-identical reduction the golden digest matrix pins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.entity import Entity, Site
from repro.sim.replication.protocols import make_replica_control
from repro.sim.replication.schema import ReplicatedSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator, _Instance

__all__ = ["ReplicaManager"]


class ReplicaManager:
    """Replica placement, staleness, and availability for one run."""

    __slots__ = (
        "sim", "schema", "control", "_replica_sids", "_hosted_eids",
        "_n_entities", "_missed", "_unvalidated", "_catchup_active",
        "_const_read", "_const_write",
        "_last_time", "_read_area", "_write_area", "_service_area",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        spec = sim.config.workload
        factor = spec.replication_factor if spec is not None else 1
        self.schema = ReplicatedSchema.round_robin(
            sim.system.schema, factor
        )
        self.control = make_replica_control(sim.config.replica_protocol)
        # Interned placement: eid -> ordered replica sids (primary
        # first), sid -> eids hosted there.
        site_id = sim.site_id
        self._replica_sids: list[tuple[int, ...]] = [
            tuple(site_id(s) for s in self.schema.replicas_of(name))
            for name in sim._entity_names
        ]
        self._hosted_eids: list[tuple[int, ...]] = [
            tuple(sorted(
                sim.entity_id(e) for e in self.schema.hosted_at(name)
            ))
            for name in sim._site_names
        ]
        self._n_entities = len(sim._entity_names)
        self._missed: dict[int, set[int]] = {}  # sid -> eids
        self._unvalidated: dict[int, set[int]] = {}  # sid -> eids
        self._catchup_active = (
            self.schema.is_replicated() and self.control.uses_staleness
        )
        if self._catchup_active:
            sim.register_handler("replica_catchup", self._on_catchup)
        # Routes valid whenever every site is up and nothing is stale
        # — the common state even in failure-enabled runs.
        self._const_read, self._const_write = self.constant_routes()
        self._last_time = 0.0
        self._read_area = 0.0
        self._write_area = 0.0
        self._service_area = 0.0

    # ------------------------------------------------------------------
    # site selection (called on every Lock issue)
    # ------------------------------------------------------------------

    def _up(self, sid: int) -> bool:
        # The failure injector is the single source of up/down truth;
        # its crash/recover handlers call the hooks below *before*
        # flipping state, so availability integration always covers the
        # pre-event interval with the pre-event state.
        sim = self.sim
        return sim.failures is None or sim._site_up[sid]

    def _is_stale(self, sid: int, eid: int) -> bool:
        return (
            eid in self._missed.get(sid, ())
            or eid in self._unvalidated.get(sid, ())
        )

    def _stale_sids(self, eid: int) -> tuple[int, ...]:
        if not self._missed and not self._unvalidated:
            return ()
        return tuple(
            sid
            for sid in self._replica_sids[eid]
            if self._is_stale(sid, eid)
        )

    def read_sids(
        self, eid: int, from_sid: int = -1
    ) -> tuple[int, ...] | None:
        """Replica sids a read of entity ``eid`` must lock now.

        ``from_sid`` is the requesting client's home site: during a
        partition episode only replicas on the client's side of the
        cut are eligible (a real client cannot reach the others).
        With ``from_sid < 0`` — availability integration, name-based
        wrappers — the rule counts as satisfiable if *some* side of
        the cut satisfies it.
        """
        sim = self.sim
        network = sim.network
        if network is not None and network.cut is not None:
            return self._route_under_cut(eid, from_sid, network, True)
        if sim.failures is None or (
            sim._down_count == 0
            and not self._missed
            and not self._unvalidated
        ):
            return self._const_read[eid]
        replicas = self._replica_sids[eid]
        site_up = sim._site_up
        up = [sid for sid in replicas if site_up[sid]]
        return self.control.read_sites(replicas, up, self._stale_sids(eid))

    def write_sids(
        self, eid: int, from_sid: int = -1
    ) -> tuple[int, ...] | None:
        """Replica sids a write of entity ``eid`` must lock now.

        ``from_sid`` as in :meth:`read_sids`.
        """
        sim = self.sim
        network = sim.network
        if network is not None and network.cut is not None:
            return self._route_under_cut(eid, from_sid, network, False)
        if sim.failures is None or sim._down_count == 0:
            return self._const_write[eid]
        replicas = self._replica_sids[eid]
        site_up = sim._site_up
        up = [sid for sid in replicas if site_up[sid]]
        return self.control.write_sites(replicas, up)

    def _route_under_cut(
        self, eid: int, from_sid: int, network, read: bool
    ) -> tuple[int, ...] | None:
        """Protocol routing restricted to one side of an active cut.

        Unreachable replicas are withheld from the protocol's ``up``
        list exactly as crashed ones are — so ``rowa`` writes fail
        fast (abort and retry rather than wedge on a fan-out that
        cannot arrive), ``rowa-available`` writes reach their side and
        mark the far side missed, and ``quorum`` keeps committing on
        whichever side holds a majority.
        """
        replicas = self._replica_sids[eid]
        control = self.control
        stale = self._stale_sids(eid) if read else ()
        if from_sid >= 0:
            probes: tuple[int, ...] = (from_sid,)
        else:
            # No client perspective: satisfiable if some side is.
            side = network.cut
            n_sites = len(self.sim._site_names)
            probes = (
                min(side),
                min(sid for sid in range(n_sites) if sid not in side),
            )
        for probe in probes:
            up = [
                sid
                for sid in replicas
                if self._up(sid) and network.reachable(probe, sid)
            ]
            sites = (
                control.read_sites(replicas, up, stale)
                if read
                else control.write_sites(replicas, up)
            )
            if sites is not None:
                return sites
        return None

    def cached_routes(
        self,
    ) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """The all-up/no-staleness route tables computed at init."""
        return self._const_read, self._const_write

    def constant_routes(
        self,
    ) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """Per-entity ``(read, write)`` routes valid for failure-free
        runs.

        Without fault injection no site is ever down and no copy ever
        goes stale, so every protocol's choice is a constant of the
        schema — the runtime indexes these tables instead of calling
        the protocol per request.
        """
        control = self.control
        reads: list[tuple[int, ...]] = []
        writes: list[tuple[int, ...]] = []
        for replicas in self._replica_sids:
            reads.append(control.read_sites(replicas, replicas, ()))
            writes.append(control.write_sites(replicas, replicas))
        return reads, writes

    # ------------------------------------------------------------------
    # name-based wrappers (tests, external callers)
    # ------------------------------------------------------------------

    def _names(
        self, sids: tuple[int, ...] | None
    ) -> tuple[Site, ...] | None:
        if sids is None:
            return None
        site_name = self.sim.site_name
        return tuple(site_name(sid) for sid in sids)

    def read_sites(self, entity: Entity) -> tuple[Site, ...] | None:
        """Replica site names a read of ``entity`` must lock (or None)."""
        return self._names(self.read_sids(self.sim.entity_id(entity)))

    def write_sites(self, entity: Entity) -> tuple[Site, ...] | None:
        """Replica site names a write of ``entity`` must lock (or None)."""
        return self._names(self.write_sids(self.sim.entity_id(entity)))

    def primary_of(self, entity: Entity) -> Site:
        return self.schema.primary_of(entity)

    def stale_replicas(self, entity: Entity) -> frozenset[Site]:
        """The replica sites of ``entity`` currently unfit for reads."""
        eid = self.sim.entity_id(entity)
        site_name = self.sim.site_name
        return frozenset(
            site_name(sid) for sid in self._stale_sids(eid)
        )

    def missed_replicas(self, entity: Entity) -> frozenset[Site]:
        """The replica sites that provably missed a committed write."""
        eid = self.sim.entity_id(entity)
        site_name = self.sim.site_name
        return frozenset(
            site_name(sid)
            for sid in self._replica_sids[eid]
            if eid in self._missed.get(sid, ())
        )

    # ------------------------------------------------------------------
    # state transitions (failure injector and commit hooks)
    # ------------------------------------------------------------------

    def _discard(
        self, table: dict[int, set[int]], sid: int, eid: int
    ) -> None:
        marks = table.get(sid)
        if marks:
            marks.discard(eid)
            if not marks:
                del table[sid]

    def on_crash(self, site: Site) -> None:
        """A site crashed (availability bookkeeping only).

        Its copies are unreachable while down; whether they are still
        *fit* on recovery is decided then. Must run *before* the
        injector marks the site down.
        """
        self._integrate()

    def on_recover(self, site: Site) -> None:
        """A site repaired: it must catch up before serving reads.

        Every hosted copy becomes unvalidated and an anti-entropy scan
        is scheduled ``config.catchup_time`` out — during that window
        the site takes writes (which validate the copies they refresh)
        but serves no reads. Must run *before* the injector marks the
        site up.
        """
        self._integrate()
        if not self._catchup_active:
            return
        sid = self.sim.site_id(site)
        hosted = self._hosted_eids[sid]
        if not hosted:
            return
        self._unvalidated.setdefault(sid, set()).update(hosted)
        self.sim.schedule(
            self.sim.config.catchup_time, ("replica_catchup", site)
        )

    def on_partition_cut(self) -> None:
        """A partition episode begins (availability bookkeeping only).

        Must run *before* the network model installs the cut, so the
        integral covers the pre-cut interval with pre-cut state — the
        same convention as :meth:`on_crash`.
        """
        self._integrate()

    def on_partition_heal(self) -> None:
        """A partition healed: copies that missed writes catch up.

        The partition-side analogue of a repair: every copy that
        missed a write while unreachable re-enters the anti-entropy
        scan and validates against a current replica. Must run
        *before* the network model clears the cut.
        """
        self._integrate()
        if not self._catchup_active:
            return
        sim = self.sim
        stale_sids = sorted(set(self._missed) | set(self._unvalidated))
        for sid in stale_sids:
            missed = self._missed.get(sid)
            if missed:
                self._unvalidated.setdefault(sid, set()).update(missed)
            sim.schedule(
                sim.config.catchup_time,
                ("replica_catchup", sim.site_name(sid)),
            )

    def _on_catchup(self, site: Site) -> None:
        """Anti-entropy scan: validate the site's copies where possible.

        A copy validates against any up, fully current replica of its
        entity; when *no* copy of the entity is fully current anywhere,
        the up copies that missed nothing reconcile among themselves
        (their durable version stamps identify the maximal version) and
        all validate together. Copies left without a source keep the
        scan alive — unless the run has drained, which would otherwise
        pad the queue with retries to the horizon.
        """
        sid = self.sim.site_id(site)
        if not self._up(sid):
            return  # crashed again; the next recovery rescans
        marks = self._unvalidated.get(sid)
        if not marks:
            return
        self._integrate()
        for eid in sorted(marks):
            if self._validate(sid, eid):
                marks.discard(eid)
        if not marks:
            del self._unvalidated[sid]
        elif self.sim.has_uncommitted():
            self.sim.schedule(
                self.sim.config.catchup_time, ("replica_catchup", site)
            )

    def _validate(self, sid: int, eid: int) -> bool:
        peers = [
            peer
            for peer in self._replica_sids[eid]
            if peer != sid and self._up(peer)
        ]
        if any(not self._is_stale(peer, eid) for peer in peers):
            # Synced from a fully current live copy — this also repairs
            # a copy that had missed writes.
            self._discard(self._missed, sid, eid)
            return True
        if eid in self._missed.get(sid, ()):
            return False  # outdated, and no current source to copy from
        # No copy of the entity is validated anywhere, but this one
        # missed nothing: its durable version is maximal (the simulator
        # stands in for the version-vector proof a real site would
        # assemble), so it revalidates — and so does every live peer
        # that missed nothing.
        for peer in peers:
            if eid not in self._missed.get(peer, ()):
                self._discard(self._unvalidated, peer, eid)
        return True

    def on_commit(self, inst: "_Instance") -> None:
        """Apply a committed transaction's writes to the staleness table.

        Every replica the write locked takes the new value — current
        and validated by construction; every replica it skipped (down,
        or excluded from the write quorum) missed it.
        """
        if not self._catchup_active:
            # rowa never skips a replica and quorum's read rule ignores
            # staleness, so for them commit-time bookkeeping cannot
            # change any observable state — skip the O(entities) scan.
            return
        written = inst.write_eids
        if not written:
            return
        lock_sites = inst.lock_sites
        replica_sids = self._replica_sids
        if not self._missed and not self._unvalidated:
            locked_everything = True
            for eid in written:
                reached = lock_sites.get(eid, ())
                if any(sid not in reached for sid in replica_sids[eid]):
                    locked_everything = False
                    break
            if locked_everything:
                # Nothing is stale and every write reached every
                # replica: the tables cannot change, so skip the
                # bookkeeping pass (the common failure-free case).
                return
        self._integrate()
        for eid in written:
            reached = set(lock_sites.get(eid, ()))
            for sid in replica_sids[eid]:
                if sid in reached:
                    self._discard(self._missed, sid, eid)
                    self._discard(self._unvalidated, sid, eid)
                else:
                    self._missed.setdefault(sid, set()).add(eid)

    def finalize(self) -> None:
        """Close the availability integral and publish it to the result."""
        self._integrate()
        result = self.sim.result
        result.read_avail_area = self._read_area
        result.write_avail_area = self._write_area
        result.service_avail_area = self._service_area

    # ------------------------------------------------------------------
    # availability integration
    # ------------------------------------------------------------------

    def _integrate(self) -> None:
        """Accumulate availability over [last state change, now]."""
        now = self.sim.now
        dt = now - self._last_time
        self._last_time = now
        if dt <= 0:
            return
        n = self._n_entities
        if not n:
            return
        readable = writable = serviceable = 0
        for eid in range(n):
            read_ok = self.read_sids(eid) is not None
            write_ok = self.write_sids(eid) is not None
            readable += read_ok
            writable += write_ok
            serviceable += read_ok and write_ok
        self._read_area += dt * readable / n
        self._write_area += dt * writable / n
        self._service_area += dt * serviceable / n
