"""Run-time replica state: placement, staleness, availability.

The :class:`ReplicaManager` is the simulator's single point of contact
with the replication layer. It owns

* the :class:`~repro.sim.replication.schema.ReplicatedSchema` derived
  from the run's workload spec (deterministic round-robin placement —
  no RNG stream is consumed, preserving run-level determinism);
* the protocol instance chosen by ``SimulationConfig.replica_protocol``;
* the *staleness* table, split into the two ways a copy can be unfit
  to serve reads under write-all-available:

  - **missed** — the copy provably missed a committed write: the write
    locked the replicas it could reach and this site was not among
    them. Only a later write that reaches the site clears it.
  - **unvalidated** — the site is freshly recovered and has not yet
    finished catching up. Its durable data may well be the latest
    version, but a recovering site cannot know what it missed, so it
    must *catch up before serving reads*: recovery starts an
    anti-entropy scan (one ``replica_catchup`` event per
    ``config.catchup_time``) that validates each copy against an up,
    fully current replica of the same entity — or, when no copy of an
    entity is fully current anywhere, by full-set reconciliation among
    the up copies that missed nothing (durable version stamps make the
    maximal version identifiable). Copies with no live source stay
    unvalidated and the scan retries; a fresh write (which targets
    every available replica, recovering ones included) also refreshes
    a copy early.

  A copy serves reads only when it is in neither set. Under strict
  ``rowa`` no committed write can ever skip a replica, so reads ignore
  the table; ``quorum`` masks staleness by version intersection
  instead of avoiding it. Catch-up events exist only when the schema
  is actually replicated *and* the protocol consults staleness
  (``rowa-available``): a single copy can never miss a write — a write
  to its entity needs the copy up — so single-copy recovery is
  trivially valid and the seed event stream is untouched;

* the availability integral: the fraction of entities whose read rule
  / write rule / both are currently satisfiable, integrated over
  simulated time. ``rowa`` loses write availability as soon as one
  replica site is down, ``rowa-available`` loses read availability
  while every current copy of an entity is crashed or awaiting
  catch-up, and ``quorum`` stays up through every minority failure.

With ``replication_factor=1`` every entity has exactly its primary
replica, all protocols pick that single site, and the manager adds no
events, consumes no randomness, and changes no seed-era result field —
the bit-identical reduction the golden digest matrix pins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.entity import Entity, Site
from repro.sim.replication.protocols import make_replica_control
from repro.sim.replication.schema import ReplicatedSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator, _Instance

__all__ = ["ReplicaManager"]


class ReplicaManager:
    """Replica placement, staleness, and availability for one run."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        spec = sim.config.workload
        factor = spec.replication_factor if spec is not None else 1
        self.schema = ReplicatedSchema.round_robin(
            sim.system.schema, factor
        )
        self.control = make_replica_control(sim.config.replica_protocol)
        self._missed: dict[Site, set[Entity]] = {}
        self._unvalidated: dict[Site, set[Entity]] = {}
        self._catchup_active = (
            self.schema.is_replicated() and self.control.uses_staleness
        )
        if self._catchup_active:
            sim.register_handler("replica_catchup", self._on_catchup)
        self._entities = sorted(self.schema.entities)
        self._last_time = 0.0
        self._read_area = 0.0
        self._write_area = 0.0
        self._service_area = 0.0

    # ------------------------------------------------------------------
    # site selection (called on every Lock issue)
    # ------------------------------------------------------------------

    def _up(self, site: Site) -> bool:
        # The failure injector is the single source of up/down truth;
        # its crash/recover handlers call the hooks below *before*
        # flipping state, so availability integration always covers the
        # pre-event interval with the pre-event state.
        return self.sim.site_is_up(site)

    def _is_stale(self, site: Site, entity: Entity) -> bool:
        return (
            entity in self._missed.get(site, ())
            or entity in self._unvalidated.get(site, ())
        )

    def _stale_at(self, entity: Entity) -> frozenset[Site]:
        return frozenset(
            site
            for site in self.schema.replicas_of(entity)
            if self._is_stale(site, entity)
        )

    def read_sites(self, entity: Entity) -> tuple[Site, ...] | None:
        """Replicas a read of ``entity`` must lock now (or None)."""
        replicas = self.schema.replicas_of(entity)
        up = [site for site in replicas if self._up(site)]
        return self.control.read_sites(replicas, up, self._stale_at(entity))

    def write_sites(self, entity: Entity) -> tuple[Site, ...] | None:
        """Replicas a write of ``entity`` must lock now (or None)."""
        replicas = self.schema.replicas_of(entity)
        up = [site for site in replicas if self._up(site)]
        return self.control.write_sites(replicas, up)

    def primary_of(self, entity: Entity) -> Site:
        return self.schema.primary_of(entity)

    def stale_replicas(self, entity: Entity) -> frozenset[Site]:
        """The replica sites of ``entity`` currently unfit for reads."""
        return self._stale_at(entity)

    def missed_replicas(self, entity: Entity) -> frozenset[Site]:
        """The replica sites that provably missed a committed write."""
        return frozenset(
            site
            for site in self.schema.replicas_of(entity)
            if entity in self._missed.get(site, ())
        )

    # ------------------------------------------------------------------
    # state transitions (failure injector and commit hooks)
    # ------------------------------------------------------------------

    def _discard(
        self, table: dict[Site, set[Entity]], site: Site, entity: Entity
    ) -> None:
        marks = table.get(site)
        if marks:
            marks.discard(entity)
            if not marks:
                del table[site]

    def on_crash(self, site: Site) -> None:
        """A site crashed (availability bookkeeping only).

        Its copies are unreachable while down; whether they are still
        *fit* on recovery is decided then. Must run *before* the
        injector marks the site down.
        """
        self._integrate()

    def on_recover(self, site: Site) -> None:
        """A site repaired: it must catch up before serving reads.

        Every hosted copy becomes unvalidated and an anti-entropy scan
        is scheduled ``config.catchup_time`` out — during that window
        the site takes writes (which validate the copies they refresh)
        but serves no reads. Must run *before* the injector marks the
        site up.
        """
        self._integrate()
        if not self._catchup_active:
            return
        hosted = self.schema.hosted_at(site)
        if not hosted:
            return
        self._unvalidated.setdefault(site, set()).update(hosted)
        self.sim.schedule(
            self.sim.config.catchup_time, ("replica_catchup", site)
        )

    def _on_catchup(self, site: Site) -> None:
        """Anti-entropy scan: validate the site's copies where possible.

        A copy validates against any up, fully current replica of its
        entity; when *no* copy of the entity is fully current anywhere,
        the up copies that missed nothing reconcile among themselves
        (their durable version stamps identify the maximal version) and
        all validate together. Copies left without a source keep the
        scan alive — unless the run has drained, which would otherwise
        pad the queue with retries to the horizon.
        """
        if not self._up(site):
            return  # crashed again; the next recovery rescans
        marks = self._unvalidated.get(site)
        if not marks:
            return
        self._integrate()
        for entity in sorted(marks):
            if self._validate(site, entity):
                marks.discard(entity)
        if not marks:
            del self._unvalidated[site]
        elif self.sim.has_uncommitted():
            self.sim.schedule(
                self.sim.config.catchup_time, ("replica_catchup", site)
            )

    def _validate(self, site: Site, entity: Entity) -> bool:
        peers = [
            peer
            for peer in self.schema.replicas_of(entity)
            if peer != site and self._up(peer)
        ]
        if any(not self._is_stale(peer, entity) for peer in peers):
            # Synced from a fully current live copy — this also repairs
            # a copy that had missed writes.
            self._discard(self._missed, site, entity)
            return True
        if entity in self._missed.get(site, ()):
            return False  # outdated, and no current source to copy from
        # No copy of the entity is validated anywhere, but this one
        # missed nothing: its durable version is maximal (the simulator
        # stands in for the version-vector proof a real site would
        # assemble), so it revalidates — and so does every live peer
        # that missed nothing.
        for peer in peers:
            if entity not in self._missed.get(peer, ()):
                self._discard(self._unvalidated, peer, entity)
        return True

    def on_commit(self, inst: "_Instance") -> None:
        """Apply a committed transaction's writes to the staleness table.

        Every replica the write locked takes the new value — current
        and validated by construction; every replica it skipped (down,
        or excluded from the write quorum) missed it.
        """
        if not self._catchup_active:
            # rowa never skips a replica and quorum's read rule ignores
            # staleness, so for them commit-time bookkeeping cannot
            # change any observable state — skip the O(entities) scan.
            return
        txn = self.sim.system[inst.index]
        written = txn.entities - txn.read_set
        if not written:
            return
        if (
            not self._missed
            and not self._unvalidated
            and all(
                set(self.schema.replicas_of(entity))
                <= set(inst.lock_sites.get(entity, ()))
                for entity in written
            )
        ):
            # Nothing is stale and every write reached every replica:
            # the tables cannot change, so skip the O(entities) pass
            # (the common failure-free case).
            return
        self._integrate()
        for entity in sorted(written):
            reached = set(inst.lock_sites.get(entity, ()))
            for site in self.schema.replicas_of(entity):
                if site in reached:
                    self._discard(self._missed, site, entity)
                    self._discard(self._unvalidated, site, entity)
                else:
                    self._missed.setdefault(site, set()).add(entity)

    def finalize(self) -> None:
        """Close the availability integral and publish it to the result."""
        self._integrate()
        result = self.sim.result
        result.read_avail_area = self._read_area
        result.write_avail_area = self._write_area
        result.service_avail_area = self._service_area

    # ------------------------------------------------------------------
    # availability integration
    # ------------------------------------------------------------------

    def _integrate(self) -> None:
        """Accumulate availability over [last state change, now]."""
        now = self.sim.now
        dt = now - self._last_time
        self._last_time = now
        if dt <= 0:
            return
        entities = self._entities
        if not entities:
            return
        readable = writable = serviceable = 0
        for entity in entities:
            read_ok = self.read_sites(entity) is not None
            write_ok = self.write_sites(entity) is not None
            readable += read_ok
            writable += write_ok
            serviceable += read_ok and write_ok
        n = len(entities)
        self._read_area += dt * readable / n
        self._write_area += dt * writable / n
        self._service_area += dt * serviceable / n
