"""Replica control: replicated schemas and pluggable protocols.

The paper's model stores each entity at exactly one site; this package
adds the replication layer a production system needs to serve reads at
scale and survive site crashes. A :class:`ReplicatedSchema` maps each
*logical* entity of a :class:`~repro.core.entity.DatabaseSchema` to an
ordered tuple of replica sites (primary first), and a replica-control
protocol decides, per access, which replicas a transaction must lock:

* ``rowa`` — read-one-write-all: reads lock one replica (shared),
  writes lock every replica (exclusive). One crashed replica makes the
  whole entity unwritable — the availability collapse of write-all
  schemes under failures (Gray & Lamport, *Consensus on Transaction
  Commit*).
* ``rowa-available`` — write-all-available: writes skip crashed
  replicas, so the entity stays writable while any replica is up; the
  price is *staleness* — a recovering site missed writes and must not
  serve reads until a fresh write catches its copy up.
* ``quorum`` — majority read and write quorums: any two quorums
  intersect, so reads always see a current copy and failures of a
  minority are masked without reconfiguration (Sutra & Shapiro,
  *Fault-Tolerant Partial Replication*).

The :class:`ReplicaManager` owns the run-time state — which sites are
up, which replicas are stale — integrates the per-protocol
availability metric, and is what the simulator consults on every lock
request. With ``replication_factor=1`` every protocol degenerates to
the single-copy behaviour of the seed simulator, bit for bit.
"""

from repro.sim.replication.manager import ReplicaManager
from repro.sim.replication.protocols import (
    MajorityQuorum,
    ReadOneWriteAll,
    ReplicaControl,
    WriteAllAvailable,
    make_replica_control,
    replica_control_names,
    register_replica_control,
)
from repro.sim.replication.schema import ReplicatedSchema

__all__ = [
    "MajorityQuorum",
    "ReadOneWriteAll",
    "ReplicaControl",
    "ReplicaManager",
    "ReplicatedSchema",
    "WriteAllAvailable",
    "make_replica_control",
    "register_replica_control",
    "replica_control_names",
]
