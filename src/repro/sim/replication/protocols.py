"""Replica-control protocols: which replicas must a transaction lock?

A protocol is a pure site-selection rule — it owns no state. Given an
entity's ordered replica tuple, the set of sites currently up, and the
set of replicas known stale, it answers two questions:

* :meth:`ReplicaControl.read_sites` — the replicas a *read* must lock
  in shared mode, or None when no legal read set exists right now;
* :meth:`ReplicaControl.write_sites` — the replicas a *write* must
  lock in exclusive mode, or None when the entity is unwritable.

Choices are deterministic (replica-tuple order, primaries preferred),
so a simulation run never consumes randomness here — the bit-identical
reduction at ``replication_factor=1`` and the parallel sweep guarantee
both rest on that.

The registry mirrors :mod:`repro.sim.commit`: protocols register under
a name and the simulator instantiates them from
``SimulationConfig.replica_protocol``.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.core.entity import Site

__all__ = [
    "MajorityQuorum",
    "ReadOneWriteAll",
    "ReplicaControl",
    "WriteAllAvailable",
    "make_replica_control",
    "register_replica_control",
    "replica_control_names",
]


def majority(n: int) -> int:
    """The majority quorum size over ``n`` replicas."""
    return n // 2 + 1


class ReplicaControl:
    """Base class for replica-control protocols.

    Attributes:
        name: registry key, also shown in results.
        uses_staleness: True when the protocol's read rule must avoid
            replicas that missed writes (only write-all-available; the
            quorum protocol masks staleness by intersection, and under
            strict ROWA no committed write can ever miss a replica).
    """

    name: str = "?"
    uses_staleness: bool = False

    def read_sites(
        self,
        replicas: Sequence[Site],
        up: Collection[Site],
        stale: Collection[Site],
    ) -> tuple[Site, ...] | None:
        """Sites a read must lock (shared), or None if unavailable.

        Args:
            replicas: the entity's replica sites, primary first.
            up: sites currently up (superset membership test).
            stale: replica sites whose copy missed a committed write.
        """
        raise NotImplementedError

    def write_sites(
        self,
        replicas: Sequence[Site],
        up: Collection[Site],
    ) -> tuple[Site, ...] | None:
        """Sites a write must lock (exclusive), or None if unavailable."""
        raise NotImplementedError


_PROTOCOLS: dict[str, type[ReplicaControl]] = {}


def register_replica_control(
    cls: type[ReplicaControl],
) -> type[ReplicaControl]:
    """Class decorator: add ``cls`` to the protocol registry."""
    _PROTOCOLS[cls.name] = cls
    return cls


def replica_control_names() -> list[str]:
    """The registered protocol names, sorted."""
    return sorted(_PROTOCOLS)


def make_replica_control(name: str) -> ReplicaControl:
    """Instantiate a replica-control protocol by name.

    Raises:
        KeyError: for unknown names.
    """
    try:
        return _PROTOCOLS[name]()
    except KeyError:
        raise KeyError(
            f"unknown replica protocol {name!r}; "
            f"choose from {replica_control_names()}"
        ) from None


@register_replica_control
class ReadOneWriteAll(ReplicaControl):
    """``rowa`` — read any one replica, write all of them.

    Reads are cheap (one shared lock, primary preferred) and always
    current, because a write only ever commits when *every* replica
    took it — which is exactly the protocol's weakness: one crashed
    replica blocks all writes to the entity until it repairs. At
    ``replication_factor=1`` this is the seed simulator's behaviour.
    """

    name = "rowa"

    def read_sites(self, replicas, up, stale):
        for site in replicas:
            if site in up:
                return (site,)
        return None

    def write_sites(self, replicas, up):
        if all(site in up for site in replicas):
            return tuple(replicas)
        return None


@register_replica_control
class WriteAllAvailable(ReplicaControl):
    """``rowa-available`` — write all *available* replicas.

    Writes skip crashed replicas, so one up replica keeps the entity
    writable; the skipped copies are stale until a later write (which
    always targets every up replica) refreshes them. Reads must
    therefore avoid stale replicas: a recovering site serves no reads
    for an entity until it has caught up. Without a catch-up log a
    recovering site cannot know what it missed, so recovery is
    conservative — the crash itself marks every replica the site hosts
    stale (see :class:`~repro.sim.replication.manager.ReplicaManager`).
    """

    name = "rowa-available"
    uses_staleness = True

    def read_sites(self, replicas, up, stale):
        for site in replicas:
            if site in up and site not in stale:
                return (site,)
        return None

    def write_sites(self, replicas, up):
        sites = tuple(site for site in replicas if site in up)
        return sites or None


@register_replica_control
class MajorityQuorum(ReplicaControl):
    """``quorum`` — majority read and write quorums.

    Any two majorities intersect, so every read quorum contains at
    least one replica that took every committed write — staleness is
    masked by version comparison rather than avoided, and any minority
    of crashed sites is tolerated without reconfiguration. The cost is
    read latency: every read locks a majority instead of one copy.
    """

    name = "quorum"

    def read_sites(self, replicas, up, stale):
        return self._quorum(replicas, up)

    def write_sites(self, replicas, up):
        return self._quorum(replicas, up)

    @staticmethod
    def _quorum(replicas, up):
        need = majority(len(replicas))
        chosen = []
        for site in replicas:
            if site in up:
                chosen.append(site)
                if len(chosen) == need:
                    return tuple(chosen)
        return None
