"""Logical entities mapped to replica sets over a base schema.

A :class:`~repro.core.entity.DatabaseSchema` is the paper's partition
of entities into pairwise-disjoint sites; a :class:`ReplicatedSchema`
layers replica placement on top of it. The base placement stays the
*primary* copy — transaction structure (per-site chains, cross-site
arcs) is still built over primaries, so the static theory is untouched
— and replication is purely a property of how the simulator acquires
locks.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.entity import DatabaseSchema, Entity, Site

__all__ = ["ReplicatedSchema"]


class ReplicatedSchema:
    """Replica placement: each entity at an ordered tuple of sites.

    The first replica of every entity is its *primary* — the site of
    the base schema's placement; further replicas are distinct other
    sites. ``replication_factor`` is the declared target copy count
    (actual tuples are clamped to the number of sites available).

    Args:
        base: the underlying single-copy schema (primaries).
        replicas: entity -> replica site tuple; must cover every entity
            of ``base``, start with its primary, and list distinct
            sites.

    Raises:
        ValueError: on missing entities, wrong primaries, duplicate
            replica sites, or unknown sites.
    """

    __slots__ = ("_base", "_replicas", "_hosted", "replication_factor")

    def __init__(
        self,
        base: DatabaseSchema,
        replicas: Mapping[Entity, Sequence[Site]],
        replication_factor: int | None = None,
    ):
        self._base = base
        table: dict[Entity, tuple[Site, ...]] = {}
        hosted: dict[Site, set[Entity]] = {site: set() for site in base.sites}
        for entity in base.entities:
            if entity not in replicas:
                raise ValueError(f"entity {entity!r} has no replica set")
            sites = tuple(replicas[entity])
            if not sites or sites[0] != base.site_of(entity):
                raise ValueError(
                    f"replica set of {entity!r} must start with its "
                    f"primary {base.site_of(entity)!r}, got {sites!r}"
                )
            if len(set(sites)) != len(sites):
                raise ValueError(
                    f"replica set of {entity!r} repeats a site: {sites!r}"
                )
            for site in sites:
                if site not in hosted:
                    raise ValueError(
                        f"replica site {site!r} of {entity!r} is not in "
                        f"the base schema"
                    )
                hosted[site].add(entity)
            table[entity] = sites
        self._replicas = table
        self._hosted = {
            site: frozenset(entities) for site, entities in hosted.items()
        }
        if replication_factor is None:
            replication_factor = max(
                (len(sites) for sites in table.values()), default=1
            )
        self.replication_factor = replication_factor

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def round_robin(
        cls, base: DatabaseSchema, factor: int
    ) -> "ReplicatedSchema":
        """Deterministic placement: primary plus the next sites in a
        rotation.

        Entity ``i`` (in sorted entity order) takes its primary and the
        ``factor - 1`` sites following position ``i`` of the sorted
        non-primary site list — a deterministic, seed-free spread that
        balances replicas across sites. ``factor`` is clamped to the
        site count, so ``factor=1`` (or a single-site schema) leaves
        the base placement untouched.

        Raises:
            ValueError: if ``factor < 1``.
        """
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        sites = sorted(base.sites)
        replicas: dict[Entity, tuple[Site, ...]] = {}
        for pos, entity in enumerate(sorted(base.entities)):
            home = base.site_of(entity)
            others = [site for site in sites if site != home]
            extra = min(factor, len(sites)) - 1
            start = pos % len(others) if others else 0
            chosen = [
                others[(start + k) % len(others)] for k in range(extra)
            ]
            replicas[entity] = (home, *chosen)
        return cls(base, replicas, replication_factor=factor)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def base(self) -> DatabaseSchema:
        """The underlying single-copy (primary) schema."""
        return self._base

    @property
    def entities(self) -> frozenset[Entity]:
        return self._base.entities

    @property
    def sites(self) -> frozenset[Site]:
        return self._base.sites

    def replicas_of(self, entity: Entity) -> tuple[Site, ...]:
        """The replica sites of ``entity``, primary first.

        Raises:
            KeyError: if the entity is not in the schema.
        """
        return self._replicas[entity]

    def primary_of(self, entity: Entity) -> Site:
        """The primary (base-schema) site of ``entity``."""
        return self._replicas[entity][0]

    def hosted_at(self, site: Site) -> frozenset[Entity]:
        """Every entity with a replica at ``site`` (empty if unknown)."""
        return self._hosted.get(site, frozenset())

    def is_replicated(self) -> bool:
        """True if any entity has more than one replica."""
        return any(len(sites) > 1 for sites in self._replicas.values())

    def __repr__(self) -> str:
        pairs = {
            entity: self._replicas[entity]
            for entity in sorted(self._replicas)
        }
        return (
            f"ReplicatedSchema(factor={self.replication_factor}, {pairs})"
        )
