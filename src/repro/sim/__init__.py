"""Discrete-event simulation of a distributed lock scheduler.

The paper reasons statically about *all* legal interleavings; this
package provides the dynamic counterpart — a simulator that executes a
:class:`repro.core.TransactionSystem` across its sites under a chosen
contention policy:

* ``blocking`` — pure waiting; deadlocks are possible and detected when
  the event queue drains with work remaining (this is the regime the
  paper's certificates speak about);
* ``wound-wait`` / ``wait-die`` — the timestamp prevention schemes of
  Rosenkrantz, Stearns & Lewis [RSL], the practical baselines;
* ``timeout`` — abort-and-restart on lock waits exceeding a deadline;
* ``detect`` — periodic wait-for-graph cycle detection with youngest-
  victim abort.

Orthogonally to the policy, an atomic-commit protocol
(:mod:`repro.sim.commit`: ``instant``, ``two-phase``,
``presumed-abort``) decides when a finished transaction is durably
committed, and a fault injector (:mod:`repro.sim.failures`) can crash
and repair sites — together they turn the lock-conflict model into a
full distributed-transaction system with blocked participants,
coordinator recovery, and abort cascades. An arrival process
(:mod:`repro.sim.arrivals`, ``arrival_rate > 0``) opens the system:
fresh transactions keep arriving on a Poisson clock and steady-state
metrics (throughput, concurrency, latency percentiles) are measured
past a warm-up window. A replica-control layer
(:mod:`repro.sim.replication`, ``WorkloadSpec.replication_factor > 1``)
maps each logical entity to a replica set of sites and routes reads
(shared locks) and writes (exclusive locks) through ``rowa``,
``rowa-available``, or ``quorum`` — failures then cost availability,
which the run integrates per protocol. A durability model
(:mod:`repro.sim.durability`, ``SimulationConfig(durability=
DurabilityConfig(...))``) gives each site a simulated write-ahead log:
protocol force points cost real flush time, crashes truncate state to
the log (with optional tail-loss / torn-write / amnesia faults), and
recovery replays the log, re-acquires the log-implied locks, and
resolves in-doubt transactions by protocol inquiry.

Every run records a trace of committed operations which replays as a
legal :class:`repro.core.Schedule`, so runtime serializability is
checked with the same D(S) machinery the theory uses.

An observability layer (:mod:`repro.sim.observe`, enabled through
``SimulationConfig(observe=ObserveConfig(...))``) taps the run's probe
stream for structured event traces (JSONL / Chrome ``trace_event``),
windowed simulated-time metrics attached to the result, and a flight
recorder that dumps the recent past on deadlocks, crashes, and abort
cascades — at zero cost when disabled.
"""

from repro.sim.arrivals import ArrivalProcess, OpenSystem
from repro.sim.commit import (
    CommitProtocol,
    InstantCommit,
    PresumedAbortCommit,
    TwoPhaseCommit,
    make_protocol,
    protocol_names,
)
from repro.sim.durability import DurabilityConfig, DurabilityManager
from repro.sim.events import EventQueue, HandlerRegistry
from repro.sim.failures import FailureInjector
from repro.sim.locks import SiteLockManager
from repro.sim.metrics import SimulationResult, percentile, percentiles
from repro.sim.observe import (
    EventTracer,
    FlightRecorder,
    MetricsSampler,
    ObserveConfig,
    ObserverHub,
    ProbeSink,
)
from repro.sim.replication import (
    ReplicaControl,
    ReplicaManager,
    ReplicatedSchema,
    make_replica_control,
    replica_control_names,
)
from repro.sim.policies import (
    BlockingPolicy,
    DetectionPolicy,
    Policy,
    TimeoutPolicy,
    WaitDiePolicy,
    WoundWaitPolicy,
    make_policy,
)
from repro.sim.runtime import (
    SimulationConfig,
    Simulator,
    find_deadlocking_seed,
    simulate,
)
from repro.sim.waitsfor import WaitsForGraph
from repro.sim.workload import (
    WorkloadSpec,
    random_schema,
    random_system,
    random_transaction,
)

__all__ = [
    "ArrivalProcess",
    "BlockingPolicy",
    "CommitProtocol",
    "DetectionPolicy",
    "DurabilityConfig",
    "DurabilityManager",
    "EventQueue",
    "EventTracer",
    "FailureInjector",
    "FlightRecorder",
    "HandlerRegistry",
    "InstantCommit",
    "MetricsSampler",
    "ObserveConfig",
    "ObserverHub",
    "OpenSystem",
    "Policy",
    "ProbeSink",
    "PresumedAbortCommit",
    "ReplicaControl",
    "ReplicaManager",
    "ReplicatedSchema",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SiteLockManager",
    "TimeoutPolicy",
    "TwoPhaseCommit",
    "WaitDiePolicy",
    "WaitsForGraph",
    "WorkloadSpec",
    "WoundWaitPolicy",
    "find_deadlocking_seed",
    "make_policy",
    "make_protocol",
    "make_replica_control",
    "percentile",
    "percentiles",
    "protocol_names",
    "random_schema",
    "replica_control_names",
    "random_system",
    "random_transaction",
    "simulate",
]
