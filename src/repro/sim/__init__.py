"""Discrete-event simulation of a distributed lock scheduler.

The paper reasons statically about *all* legal interleavings; this
package provides the dynamic counterpart — a simulator that executes a
:class:`repro.core.TransactionSystem` across its sites under a chosen
contention policy:

* ``blocking`` — pure waiting; deadlocks are possible and detected when
  the event queue drains with work remaining (this is the regime the
  paper's certificates speak about);
* ``wound-wait`` / ``wait-die`` — the timestamp prevention schemes of
  Rosenkrantz, Stearns & Lewis [RSL], the practical baselines;
* ``timeout`` — abort-and-restart on lock waits exceeding a deadline;
* ``detect`` — periodic wait-for-graph cycle detection with youngest-
  victim abort.

Every run records a trace of committed operations which replays as a
legal :class:`repro.core.Schedule`, so runtime serializability is
checked with the same D(S) machinery the theory uses.
"""

from repro.sim.locks import SiteLockManager
from repro.sim.metrics import SimulationResult
from repro.sim.policies import (
    BlockingPolicy,
    DetectionPolicy,
    Policy,
    TimeoutPolicy,
    WaitDiePolicy,
    WoundWaitPolicy,
    make_policy,
)
from repro.sim.runtime import (
    SimulationConfig,
    Simulator,
    find_deadlocking_seed,
    simulate,
)
from repro.sim.workload import (
    WorkloadSpec,
    random_schema,
    random_system,
    random_transaction,
)

__all__ = [
    "BlockingPolicy",
    "DetectionPolicy",
    "Policy",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SiteLockManager",
    "TimeoutPolicy",
    "WaitDiePolicy",
    "WorkloadSpec",
    "WoundWaitPolicy",
    "find_deadlocking_seed",
    "make_policy",
    "random_schema",
    "random_system",
    "random_transaction",
    "simulate",
]
