"""Open-system arrivals: transactions injected on a Poisson clock.

The closed-batch simulator replays a fixed set of transactions once;
this subsystem turns the run into an *open system* in the queueing
sense — clients keep arriving with exponential interarrival times
(rate ``config.arrival_rate``) and each arrival is a freshly generated
transaction drawn from the run's :class:`~repro.sim.workload.
WorkloadSpec` over a schema fixed for the whole run. Together with the
warm-up window this is what makes steady-state throughput and latency
percentiles meaningful: contention is sustained rather than a single
transient burst.

Determinism is layered the same way as the failure injector:

* the *clock* stream (interarrival gaps) is private, so enabling
  arrivals never perturbs restart jitter or the closed batch's spread;
* each arrival's transaction is generated from a *per-arrival seed*
  mixed from ``(config.seed, arrival index)``, so arrival ``n`` is the
  same transaction no matter what happened before it — the property
  the parallel sweep runner's bit-identical guarantee rests on;
* the schema derives from ``config.workload_seed`` alone, so runs with
  different ``seed`` (replicates) stress the *same* database.

Injection stops at ``config.max_transactions`` arrivals, or as soon as
the next arrival would land past ``config.max_time``; the run then
drains naturally.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.entity import DatabaseSchema
from repro.core.system import TransactionSystem
from repro.core.transaction import Transaction
from repro.sim.workload import (
    CompiledWorkload,
    WorkloadSpec,
    random_schema,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator

__all__ = ["ArrivalProcess", "OpenSystem"]


class OpenSystem:
    """Growable stand-in for :class:`TransactionSystem` in open runs.

    The runtime only needs indexing, length, and the merged schema
    while executing; rebuilding an immutable ``TransactionSystem`` per
    arrival would make a run quadratic in the number of injections, so
    arrivals append here in O(1) and :meth:`frozen` materializes the
    real thing once, when the run ends (the trace-replay machinery
    needs the full accessor indexes).
    """

    __slots__ = ("schema", "transactions")

    def __init__(
        self, transactions: Iterable[Transaction], schema: DatabaseSchema
    ):
        self.transactions: list[Transaction] = list(transactions)
        self.schema = schema

    def __len__(self) -> int:
        return len(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    def __iter__(self):
        return iter(self.transactions)

    def append(self, txn: Transaction) -> int:
        """Add a transaction; its entities must be in ``schema``."""
        self.transactions.append(txn)
        return len(self.transactions) - 1

    def frozen(self) -> TransactionSystem:
        """The accumulated transactions as a real TransactionSystem.

        The run schema already covers every member — it was merged from
        the closed batch's and the arrival process's schemas at
        simulator construction, and :meth:`append` admits only
        transactions over it — so the freeze hands it over instead of
        re-merging one schema per transaction (which made freezing a
        long batch+arrival run linear in run length times schema size).
        """
        return TransactionSystem(self.transactions, schema=self.schema)


class ArrivalProcess:
    """Injects freshly generated transactions via simulator events."""

    __slots__ = (
        "sim", "spec", "_clock", "schema", "compiled", "injected",
        "finished", "_base_names", "_gen_rng",
    )

    def __init__(self, sim: "Simulator"):
        config = sim.config
        if config.arrival_rate <= 0:
            raise ValueError("arrival process needs arrival_rate > 0")
        self.sim = sim
        self.spec = config.workload or WorkloadSpec()
        # Private clock stream: arrivals must not perturb the main RNG.
        self._clock = random.Random(
            (config.seed + 2) * 1_000_003 + 0xA441
        )
        # The database is a property of the workload, not the replicate:
        # seeds vary the traffic, workload_seed varies the schema.
        schema_rng = random.Random(
            (config.workload_seed + 1) * 9_176_117 + 0x5C4E
        )
        self.schema = random_schema(
            schema_rng, self.spec.n_entities, self.spec.n_sites
        )
        # A closed batch may already place entities with pool names
        # (generated workloads are all named e0..eN): the batch's
        # placement wins for shared entities, so the merged schema is
        # always consistent and the injected traffic contends with the
        # batch on the shared part of the database.
        base_schema = sim.system.schema
        shared = [
            entity
            for entity in sorted(self.schema.entities)
            if entity in base_schema
        ]
        if shared:
            placement = {
                entity: self.schema.site_of(entity)
                for entity in sorted(self.schema.entities)
            }
            for entity in shared:
                placement[entity] = base_schema.site_of(entity)
            self.schema = DatabaseSchema(placement)
        # Per-spec generation tables, compiled once: every arrival
        # draws from them and builds its transaction on the trusted
        # (validation-free) path — bit-identical to random_transaction.
        self.compiled = CompiledWorkload(self.spec, self.schema)
        # One Random reused across arrivals: re-seeding puts it in
        # exactly the state a fresh Random(seed) would start in, minus
        # the per-arrival object construction.
        self._gen_rng = random.Random()
        self.injected = 0
        self.finished = False
        self._base_names: frozenset[str] = frozenset()

    def attach(self) -> None:
        """Register the event handler and start the Poisson clock."""
        sim = self.sim
        sim.register_handler("arrive", self._on_arrive)
        self._base_names = frozenset(t.name for t in sim.system)
        self._schedule_next()

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def _arrival_seed(self, index: int) -> int:
        """Per-arrival workload seed, mixed from (run seed, index)."""
        return (
            self.sim.config.seed * 2_654_435_761 + index * 40_503 + 1
        ) & 0xFFFF_FFFF

    def _name(self, index: int) -> str:
        name = f"TX{index + 1}"
        while name in self._base_names:  # collision with the closed batch
            name += "'"
        return name

    def _schedule_next(self) -> None:
        sim = self.sim
        limit = sim.config.max_transactions
        if 0 < limit <= self.injected:
            self.finished = True
            return
        gap = self._clock.expovariate(sim.config.arrival_rate)
        if sim.now + gap > sim.config.max_time:
            # Past the horizon: stop injecting and let the queue drain.
            self.finished = True
            return
        sim.schedule(gap, ("arrive",))

    def _on_arrive(self) -> None:
        index = self.injected
        rng = self._gen_rng
        rng.seed(self._arrival_seed(index))
        txn = self.compiled.generate(self._name(index), rng)
        self.injected += 1
        self.sim.add_transaction(txn)
        self._schedule_next()
