"""Fault injection: sites crash and recover during a run.

A crash-recovery model in the style of Gray & Lamport's *Consensus on
Transaction Commit*: each site fails independently with exponential
interarrival times (rate ``config.failure_rate`` per site) and stays
down for an exponential repair period (mean ``config.repair_time``).

A crash wipes the site's volatile state:

* every RUNNING transaction holding or waiting for a lock there
  aborts (``crash_aborts``) and restarts later — under contention one
  crash fans out into an abort cascade;
* what happens to PREPARED transactions depends on the durability
  model. **Legacy behavior** (``config.durability`` unset, the
  default): their vote and retained locks survive by fiat — an
  idealized write-ahead log with free, infallible forces — so their
  locks stay held across the crash and they block until the commit
  decision arrives. **With a durability model**
  (:mod:`repro.sim.durability`): only what the site *forced to its
  log* survives. The injector calls
  :meth:`~repro.sim.durability.DurabilityManager.on_site_crash` after
  the abort cascade — cancelling in-flight flushes, applying the
  tail-loss/torn-write/amnesia faults, and wiping the site's lock
  table — and :meth:`~repro.sim.durability.DurabilityManager.
  on_site_recover` after repair, which replays the log, re-acquires
  exactly the log-implied retained locks, and resolves the in-doubt
  transactions by protocol inquiry;
* while down, the site receives no messages (the commit protocols see
  lost PREPAREs/VOTEs/decisions and retry or abort) and accepts no new
  operations — a transaction issuing work to a down site crash-aborts.

The injector draws from its own RNG stream, so enabling failures never
perturbs arrival or restart randomness, and ``failure_rate=0`` (the
default) creates no injector at all — zero-rate runs are bit-identical
to the pre-subsystem simulator. Crash scheduling stops once every
transaction has committed, letting the event queue drain naturally.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.runtime import Simulator

__all__ = ["FailureInjector"]


class FailureInjector:
    """Crashes and repairs sites via registered simulator events."""

    __slots__ = ("sim", "_rng")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        config = sim.config
        if config.failure_rate <= 0:
            raise ValueError("failure injection needs failure_rate > 0")
        # A private stream: failures must not perturb the main RNG.
        self._rng = random.Random((config.seed + 1) * 1_000_003 + 0x5EED)

    def attach(self) -> None:
        """Register event handlers and schedule the first crashes."""
        sim = self.sim
        sim.register_handler("site_crash", self._on_crash)
        sim.register_handler("site_recover", self._on_recover)
        for site in sim.site_names():
            self._schedule_crash(site)

    def site_up(self, site: str) -> bool:
        """Whether ``site`` is currently up.

        The simulator's interned flag array is the single store of
        up/down truth; the injector only drives its transitions.
        """
        return self.sim.site_is_up(site)

    def mark_down(self, site: str) -> None:
        """Record ``site`` as crashed (state only, no abort cascade)."""
        self.sim._mark_site(site, False)

    def mark_up(self, site: str) -> None:
        """Record ``site`` as repaired."""
        self.sim._mark_site(site, True)

    @property
    def down_sites(self) -> list[str]:
        """The currently crashed sites, sorted."""
        sim = self.sim
        return [
            site for site in sim.site_names() if not sim.site_is_up(site)
        ]

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _schedule_crash(self, site: str) -> None:
        gap = self._rng.expovariate(self.sim.config.failure_rate)
        self.sim.schedule(gap, ("site_crash", site))

    def _on_crash(self, site: str) -> None:
        sim = self.sim
        # The replica layer integrates availability over the pre-crash
        # interval before the state flips (the copies' catch-up duty is
        # imposed at recovery, not here).
        sim.replicas.on_crash(site)
        self.mark_down(site)
        sim.result.crashes += 1
        sim.crash_site(site)
        if sim.durability is not None:
            # Truncate the survivors' state to the site's log: cancel
            # in-flight flushes, draw the storage faults, wipe the
            # lock table (recovery replay re-acquires what the log
            # implies).
            sim.durability.on_site_crash(site)
        repair = max(self.sim.config.repair_time, 1e-9)
        downtime = self._rng.expovariate(1.0 / repair)
        sim.schedule(downtime, ("site_recover", site))

    def _work_pending(self) -> bool:
        """Whether another crash of this site could still matter.

        A recovery is the *only* point where a site's crash chain can
        end, so an instantaneous "nothing to do right now" answer here
        silently ends fault injection for the site for the rest of the
        run. Three sources of pending work keep the chain alive:

        * uncommitted transactions (closed batch or injected arrivals);
        * an arrival process short of its horizon — a recovery landing
          in an idle gap between Poisson arrivals must reschedule,
          because more traffic is already on the clock;
        * retained locks still awaiting their release message (a commit
          decision retransmitting to a down participant): the protocol
          conversation is still in flight and its targets can crash
          again, even though every transaction already counts as
          committed.

        Only when all three are exhausted may the chain stop; otherwise
        it would pad the queue with crash/recover pairs up to the time
        horizon, inflating ``end_time`` and the crash count.
        """
        sim = self.sim
        if sim.has_uncommitted():  # covers the first two bullets
            return True
        return sim._retained_total > 0

    def _on_recover(self, site: str) -> None:
        sim = self.sim
        sim.replicas.on_recover(site)
        self.mark_up(site)
        if sim.durability is not None:
            # Replay the site's log: re-acquire the log-implied
            # retained locks and open in-doubt inquiries.
            sim.durability.on_site_recover(site)
        if self._work_pending():
            self._schedule_crash(site)
