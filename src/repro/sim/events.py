"""A minimal discrete-event kernel: queue plus handler registry.

Events are opaque payloads ordered by (time, sequence number); the
sequence number makes simulation runs deterministic under equal
timestamps.

Payloads are tuples whose first element is the event *kind*; a
:class:`HandlerRegistry` maps kinds to typed handlers so subsystems
(the commit protocols, the failure injector) can add their own event
vocabulary without the core loop enumerating every kind.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["EventQueue", "HandlerRegistry"]


class EventQueue:
    """A deterministic priority queue of timed events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time``.

        Raises:
            ValueError: on negative or non-finite times.
        """
        if not (time >= 0):
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``.

        Raises:
            IndexError: when the queue is empty.
        """
        time, _seq, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class HandlerRegistry:
    """Dispatch table from event kinds to handlers.

    A payload ``(kind, *args)`` is routed to the handler registered for
    ``kind``, called as ``handler(*args)``. Kinds are claimed exactly
    once, so two subsystems cannot silently shadow each other's events.
    """

    # No __slots__: one instance per run, and instrumentation (the
    # waits-for invariant suite) shadows ``dispatch`` per instance.

    def __init__(self) -> None:
        self._handlers: dict[str, Callable[..., None]] = {}

    def register(self, kind: str, handler: Callable[..., None]) -> None:
        """Claim ``kind`` for ``handler``.

        Raises:
            ValueError: if the kind is already registered.
        """
        if kind in self._handlers:
            raise ValueError(f"event kind {kind!r} already registered")
        self._handlers[kind] = handler

    def dispatch(self, payload: tuple) -> None:
        """Route ``payload`` to its handler.

        Raises:
            RuntimeError: for payloads of unregistered kinds.
        """
        try:
            handler = self._handlers[payload[0]]
        except KeyError:
            raise RuntimeError(f"unknown event {payload!r}") from None
        handler(*payload[1:])

    def kinds(self) -> list[str]:
        """The registered event kinds, sorted."""
        return sorted(self._handlers)

    def __contains__(self, kind: str) -> bool:
        return kind in self._handlers
