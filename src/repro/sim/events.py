"""A minimal discrete-event kernel: a time-ordered event queue.

Events are opaque payloads ordered by (time, sequence number); the
sequence number makes simulation runs deterministic under equal
timestamps.
"""

from __future__ import annotations

import heapq
from typing import Any

__all__ = ["EventQueue"]


class EventQueue:
    """A deterministic priority queue of timed events."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time``.

        Raises:
            ValueError: on negative or non-finite times.
        """
        if not (time >= 0):
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``.

        Raises:
            IndexError: when the queue is empty.
        """
        time, _seq, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
