"""Result records and summary formatting for simulation runs."""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field

from repro.util.render import format_table

__all__ = ["SimulationResult", "percentile", "percentiles"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values``.

    ``q`` is in percent: ``percentile(vals, 95)`` is the smallest value
    such that at least 95% of the samples are <= it. Empty ``values``
    yields 0.0.
    """
    return percentiles(values, (q,))[0]


def percentiles(
    values: list[float], qs: "tuple[float, ...] | list[float]"
) -> list[float]:
    """Nearest-rank percentiles for every ``q`` in ``qs``, sorting once.

    Equivalent to ``[percentile(values, q) for q in qs]`` but the input
    is sorted a single time however many quantiles are requested (the
    p50/p95/p99 reporting path used to sort the same list three times).
    Empty ``values`` yields 0.0 for every requested quantile; empty
    ``qs`` yields an empty list either way.
    """
    if not values:
        return [0.0] * len(qs)
    ordered = sorted(values)
    n = len(ordered)
    return [
        ordered[min(max(math.ceil(q / 100.0 * n), 1), n) - 1] for q in qs
    ]


@dataclass
class SimulationResult:
    """Everything observed during one simulation run.

    Attributes:
        policy: policy name.
        commit_protocol: atomic-commit protocol name.
        replica_protocol: replica-control protocol name (``rowa``,
            ``rowa-available``, ``quorum``).
        replication_factor: copies of each entity in the run's schema
            (1 = the paper's single-copy model).
        committed: number of transactions that committed.
        total: number of transactions in the system.
        end_time: simulated time at which the run ended.
        aborts: total aborts (all causes).
        wounds: aborts caused by wound-wait.
        deaths: self-aborts caused by wait-die.
        timeouts: aborts caused by lock-wait timeouts.
        detected: aborts issued by the deadlock detector.
        crash_aborts: aborts caused by site crashes (failure injection).
        unavailable_aborts: the subset of ``crash_aborts`` where the
            replica-control protocol found no legal replica set for a
            lock (rowa with a crashed replica, quorum with a lost
            majority) — replica-level unavailability rather than loss
            of the transaction's own volatile state.
        commit_aborts: aborts decided by a failed atomic-commit round
            (a participant crashed before voting).
        crashes: site crashes injected during the run.
        deadlocked: True if the run ended in a permanent deadlock
            (blocking policy only).
        deadlock_cycle: the wait-for cycle at the deadlock, as
            transaction indices.
        waits: number of lock requests that had to wait.
        wait_time: total simulated time spent waiting for locks.
        commit_messages: commit-protocol messages sent (PREPARE, VOTE,
            COMMIT/ABORT, ACK, and retransmissions).
        acceptor_messages: the subset of ``commit_messages`` addressed
            to or relayed by Paxos Commit acceptors (votes to the 2F+1
            registrars, accepted-state relays to the leader, and
            phase-1 recovery round trips after a takeover). Zero for
            the non-replicated-coordinator protocols.
        coordinator_takeovers: commit rounds whose leadership moved to
            another acceptor site because the current leader stayed
            down past ``commit_timeout`` (Paxos Commit's non-blocking
            path; always zero for 2PC, which can only stall).
        prepared_blocks: lock conflicts where a wound was downgraded to
            a wait because the holder was PREPARED (or committed with
            its release message still in flight).
        prepared_block_time: total time waiters spent blocked behind a
            PREPARED holder — the blocked-on-coordinator time. Overlaps
            wait_time: it attributes a *portion* of the waiting to the
            commit protocol.
        latencies: per-transaction commit latency (first start to
            commit), indexed like the system.
        exec_latencies: execution-phase latency (first start to last
            operation), -1 for uncommitted transactions.
        commit_latencies: commit-phase latency (last operation to the
            commit decision), -1 for uncommitted transactions. Zero
            under the instant protocol.
        serializable: whether the committed trace is serializable
            (filled by the runtime via the D(S) test); None if the run
            did not commit everything.
        truncated: True if the run hit the event or time budget.
        injected: transactions injected by the open-system arrival
            process (0 for closed-batch runs; the closed batch is
            counted in ``total`` alongside the injected arrivals).
        warmup_time: start of the measurement window; commits and
            in-flight time before it are excluded from the steady-state
            metrics (0 measures the whole run).
        measured_committed: commits inside the measurement window.
        inflight_area: integral of the in-flight transaction count over
            the measurement window (started-but-uncommitted clients,
            including aborted ones awaiting restart); divided by the
            window length it gives the mean concurrency level.
        start_times: per-transaction first-start time, indexed like the
            system (used to restrict latency percentiles to the
            steady-state window).
        read_avail_area: integral over simulated time of the fraction
            of entities whose replica-control *read* rule was
            satisfiable (a read quorum/replica was reachable).
        write_avail_area: same for the write rule.
        service_avail_area: same for both rules at once — divided by
            ``end_time`` this is the headline availability metric.
        net_sent: physical message copies put on the wire by the
            network model (originals, retransmissions, duplicates;
            data only — acks are counted in ``net_acks``). The ledger
            identity ``net_sent == net_delivered + net_dropped +
            net_duplicates + net_inflight`` holds at every instant;
            all counters stay 0 without a network model.
        net_delivered: copies that arrived fresh and dispatched their
            payload.
        net_dropped: copies eaten in flight — loss draw, partition
            cut, or arrival at a crashed site.
        net_duplicates: copies suppressed by sequence-number dedup
            (the payload had already been dispatched).
        net_retransmits: timer-driven resends of unacked messages.
        net_acks: acknowledgement copies put on the wire.
        net_inflight: copies still in the event queue when the run
            ended (the in-flight-at-end term of the ledger).
        partitions: partition episodes that started during the run.
        partition_time: total simulated time some partition cut was
            active (episodes never overlap, so this is a plain sum).
        log_forces: forced write-ahead-log writes completed (prepare,
            decision, acceptor accept/ballot records); each cost
            ``flush_time`` on its site's timeline. Zero without a
            durability model.
        tail_losses: crashes where the log's tail record was lost —
            the disk acknowledged a write it never persisted.
        torn_writes: crashes where the final log record was torn
            (partially written, unreadable at replay).
        amnesia_wipes: crashes that wiped a site's entire log; the
            site rejoined as a fresh replica.
        log_replays: recoveries that replayed a non-empty log.
        in_doubt_resolved: in-doubt (prepared, undecided) participant
            states resolved — by an arriving decision, a
            ``cm_status`` inquiry answer, or presumption against a
            stale attempt.
        retained_lock_time: total time lock entries sat retained past
            their holder's PREPARE, summed over entries (the
            window other transactions can block on a vote that is
            waiting for its coordinator — the EXP-RECOVERY metric).
        timeseries: windowed metrics recorded by the observability
            sampler (:class:`repro.sim.observe.MetricsSampler`), as a
            plain-JSON dict; None unless the run enabled it.
        attribution: contention analytics recorded by the latency
            attribution engine (:class:`repro.sim.observe.
            LatencyAttribution`) — conserved latency segments, hot
            cells, blame graph, abort cost — as a plain-JSON dict;
            None unless the run enabled it.
    """

    policy: str
    commit_protocol: str = "instant"
    replica_protocol: str = "rowa"
    replication_factor: int = 1
    committed: int = 0
    total: int = 0
    end_time: float = 0.0
    aborts: int = 0
    wounds: int = 0
    deaths: int = 0
    timeouts: int = 0
    detected: int = 0
    crash_aborts: int = 0
    unavailable_aborts: int = 0
    commit_aborts: int = 0
    crashes: int = 0
    deadlocked: bool = False
    deadlock_cycle: tuple[int, ...] = ()
    waits: int = 0
    wait_time: float = 0.0
    commit_messages: int = 0
    acceptor_messages: int = 0
    coordinator_takeovers: int = 0
    prepared_blocks: int = 0
    prepared_block_time: float = 0.0
    latencies: list[float] = field(default_factory=list)
    exec_latencies: list[float] = field(default_factory=list)
    commit_latencies: list[float] = field(default_factory=list)
    serializable: bool | None = None
    truncated: bool = False
    injected: int = 0
    warmup_time: float = 0.0
    measured_committed: int = 0
    inflight_area: float = 0.0
    start_times: list[float] = field(default_factory=list)
    read_avail_area: float = 0.0
    write_avail_area: float = 0.0
    service_avail_area: float = 0.0
    net_sent: int = 0
    net_delivered: int = 0
    net_dropped: int = 0
    net_duplicates: int = 0
    net_retransmits: int = 0
    net_acks: int = 0
    net_inflight: int = 0
    partitions: int = 0
    partition_time: float = 0.0
    log_forces: int = 0
    tail_losses: int = 0
    torn_writes: int = 0
    amnesia_wipes: int = 0
    log_replays: int = 0
    in_doubt_resolved: int = 0
    retained_lock_time: float = 0.0
    timeseries: dict | None = None
    attribution: dict | None = None

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The result as a plain-JSON dict (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["deadlock_cycle"] = list(data["deadlock_cycle"])
        return data

    def to_json(self, indent: int | None = None) -> str:
        """JSON text round-trippable through :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys are ignored, so records written by newer versions
        (or sweep records carrying extra columns) still load.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "deadlock_cycle" in kwargs:
            kwargs["deadlock_cycle"] = tuple(kwargs["deadlock_cycle"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def _availability(self, area: float) -> float:
        if self.end_time <= 0:
            return 1.0
        return area / self.end_time

    @property
    def read_availability(self) -> float:
        """Fraction of run time the read rule was satisfiable
        (entity-averaged)."""
        return self._availability(self.read_avail_area)

    @property
    def write_availability(self) -> float:
        """Fraction of run time the write rule was satisfiable
        (entity-averaged)."""
        return self._availability(self.write_avail_area)

    @property
    def availability(self) -> float:
        """Fraction of run time both rules held — full service."""
        return self._availability(self.service_avail_area)

    @property
    def throughput(self) -> float:
        """Commits per unit simulated time (0 for empty runs)."""
        if self.end_time <= 0:
            return 0.0
        return self.committed / self.end_time

    @staticmethod
    def _mean_done(latencies: list[float]) -> float:
        done = [lat for lat in latencies if lat >= 0]
        if not done:
            return 0.0
        return sum(done) / len(done)

    @property
    def mean_latency(self) -> float:
        return self._mean_done(self.latencies)

    @property
    def mean_exec_latency(self) -> float:
        """Mean execution-phase latency of committed transactions."""
        return self._mean_done(self.exec_latencies)

    @property
    def mean_commit_latency(self) -> float:
        """Mean commit-phase latency of committed transactions."""
        return self._mean_done(self.commit_latencies)

    @property
    def measured_duration(self) -> float:
        """Length of the steady-state measurement window."""
        return max(0.0, self.end_time - self.warmup_time)

    @property
    def steady_throughput(self) -> float:
        """Commits per unit time inside the measurement window."""
        duration = self.measured_duration
        if duration <= 0:
            return 0.0
        return self.measured_committed / duration

    @property
    def mean_inflight(self) -> float:
        """Time-averaged in-flight concurrency over the window."""
        duration = self.measured_duration
        if duration <= 0:
            return 0.0
        return self.inflight_area / duration

    def _window_latencies(self, latencies: list[float]) -> list[float]:
        """Committed latencies of transactions started in the window."""
        if not self.start_times:
            return [lat for lat in latencies if lat >= 0]
        return [
            lat
            for lat, start in zip(latencies, self.start_times)
            if lat >= 0 and start >= self.warmup_time
        ]

    def latency_percentiles(self, kind: str = "total") -> dict[str, float]:
        """p50/p95/p99 latency of committed steady-state transactions.

        Args:
            kind: ``"total"`` (start to commit), ``"exec"`` (start to
                last operation), or ``"commit"`` (commit-phase only).
        """
        sources = {
            "total": self.latencies,
            "exec": self.exec_latencies,
            "commit": self.commit_latencies,
        }
        try:
            values = self._window_latencies(sources[kind])
        except KeyError:
            raise ValueError(
                f"unknown latency kind {kind!r}; "
                f"choose from {sorted(sources)}"
            ) from None
        p50, p95, p99 = percentiles(values, (50, 95, 99))
        return {"p50": p50, "p95": p95, "p99": p99}

    @property
    def aborts_by_cause(self) -> dict[str, int]:
        """Abort counts keyed by cause."""
        return {
            "wound": self.wounds,
            "death": self.deaths,
            "timeout": self.timeouts,
            "detected": self.detected,
            "crash": self.crash_aborts,
            "commit": self.commit_aborts,
        }

    def summary_row(self) -> list[object]:
        """One table row for multi-policy comparisons."""
        return [
            self.policy,
            self.commit_protocol,
            f"{self.committed}/{self.total}",
            f"{self.end_time:.1f}",
            self.aborts,
            "yes" if self.deadlocked else "no",
            f"{self.mean_latency:.1f}",
            f"{self.mean_commit_latency:.1f}",
            self.commit_messages,
            "-" if self.serializable is None
            else ("yes" if self.serializable else "NO"),
        ]

    @staticmethod
    def summary_table(results: list["SimulationResult"]) -> str:
        """Aligned comparison table across policies."""
        headers = [
            "policy", "commit", "committed", "time", "aborts", "deadlock",
            "latency", "c-latency", "msgs", "serializable",
        ]
        return format_table(
            headers, [r.summary_row() for r in results]
        )

    def open_summary_row(self) -> list[object]:
        """One table row for open-system (steady-state) comparisons."""
        total = self.latency_percentiles("total")
        exec_p = self.latency_percentiles("exec")
        commit_p = self.latency_percentiles("commit")
        return [
            self.policy,
            self.commit_protocol,
            self.injected,
            f"{self.committed}/{self.total}",
            self.aborts,
            f"{self.steady_throughput:.3f}",
            f"{self.mean_inflight:.1f}",
            f"{total['p50']:.1f}",
            f"{total['p95']:.1f}",
            f"{total['p99']:.1f}",
            f"{exec_p['p95']:.1f}",
            f"{commit_p['p95']:.1f}",
        ]

    @staticmethod
    def open_summary_table(results: list["SimulationResult"]) -> str:
        """Steady-state comparison table for open-system runs."""
        headers = [
            "policy", "commit", "injected", "committed", "aborts",
            "thruput", "inflight", "p50", "p95", "p99", "exec-p95",
            "commit-p95",
        ]
        return format_table(
            headers, [r.open_summary_row() for r in results]
        )
