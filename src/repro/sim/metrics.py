"""Result records and summary formatting for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.render import format_table

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything observed during one simulation run.

    Attributes:
        policy: policy name.
        committed: number of transactions that committed.
        total: number of transactions in the system.
        end_time: simulated time at which the run ended.
        aborts: total aborts (all causes).
        wounds: aborts caused by wound-wait.
        deaths: self-aborts caused by wait-die.
        timeouts: aborts caused by lock-wait timeouts.
        detected: aborts issued by the deadlock detector.
        deadlocked: True if the run ended in a permanent deadlock
            (blocking policy only).
        deadlock_cycle: the wait-for cycle at the deadlock, as
            transaction indices.
        waits: number of lock requests that had to wait.
        wait_time: total simulated time spent waiting for locks.
        latencies: per-transaction commit latency (first start to
            commit), indexed like the system.
        serializable: whether the committed trace is serializable
            (filled by the runtime via the D(S) test); None if the run
            did not commit everything.
        truncated: True if the run hit the event or time budget.
    """

    policy: str
    committed: int = 0
    total: int = 0
    end_time: float = 0.0
    aborts: int = 0
    wounds: int = 0
    deaths: int = 0
    timeouts: int = 0
    detected: int = 0
    deadlocked: bool = False
    deadlock_cycle: tuple[int, ...] = ()
    waits: int = 0
    wait_time: float = 0.0
    latencies: list[float] = field(default_factory=list)
    serializable: bool | None = None
    truncated: bool = False

    @property
    def throughput(self) -> float:
        """Commits per unit simulated time (0 for empty runs)."""
        if self.end_time <= 0:
            return 0.0
        return self.committed / self.end_time

    @property
    def mean_latency(self) -> float:
        done = [lat for lat in self.latencies if lat >= 0]
        if not done:
            return 0.0
        return sum(done) / len(done)

    def summary_row(self) -> list[object]:
        """One table row for multi-policy comparisons."""
        return [
            self.policy,
            f"{self.committed}/{self.total}",
            f"{self.end_time:.1f}",
            self.aborts,
            "yes" if self.deadlocked else "no",
            f"{self.mean_latency:.1f}",
            "-" if self.serializable is None
            else ("yes" if self.serializable else "NO"),
        ]

    @staticmethod
    def summary_table(results: list["SimulationResult"]) -> str:
        """Aligned comparison table across policies."""
        headers = [
            "policy", "committed", "time", "aborts", "deadlock",
            "latency", "serializable",
        ]
        return format_table(
            headers, [r.summary_row() for r in results]
        )
