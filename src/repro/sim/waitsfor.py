"""An incrementally maintained waits-for graph.

The historical detector rebuilt the waits-for graph from scratch on
every detection tick by scanning *every* transaction instance — in
long open-system runs almost all of them committed long ago, so the
scan grew linearly with run length while the live graph stayed small.

:class:`WaitsForGraph` instead tracks the graph edge-by-edge as lock
cells change. Each :class:`~repro.sim.locks.SiteLockManager` carries a
:class:`SiteCellObserver` that forwards the four primitive mutations —
a transaction starts waiting, stops waiting, becomes a holder, stops
holding — so every update costs exactly the number of edges that
actually appear or disappear (one blocked request can see several
holders, and one waiter can block at several cells — hence reference
counts, not booleans). A snapshot-diff design was measured quadratic
in queue depth under saturation; the delta protocol is O(degree).

The detector consumes the graph through :meth:`cycle`, which feeds
:func:`repro.util.graphs.find_cycle` the waiters in ascending id order
with ascending-id successor lists. That is the order the from-scratch
rebuild produced for small runs (instances were scanned in index
order, and successor sets of small ints iterate ascending), so every
pinned artifact — the 120-cell golden digest matrix included — is
unchanged; for larger graphs it *canonicalizes* a successor order that
a hash-table set used to leave to table layout.

:meth:`as_sets` exposes the graph in the rebuild's shape so property
tests can assert ``incremental == from-scratch`` after every event.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.util.graphs import find_cycle

__all__ = ["SiteCellObserver", "WaitsForGraph"]


class WaitsForGraph:
    """Refcounted waiter -> holder edges, updated per cell mutation."""

    __slots__ = (
        "_edges", "_waiters", "_holders", "_blocked_sorted", "mutations",
    )

    def __init__(self) -> None:
        # waiter -> {holder: refcount}; a waiter key exists only while
        # it has at least one edge.
        self._edges: dict[int, dict[int, int]] = {}
        # cell key -> current waiter / holder sets (mirror of the lock
        # tables, maintained through the observer protocol).
        self._waiters: dict[int, set[int]] = {}
        self._holders: dict[int, set[int]] = {}
        # The _edges keys kept ascending (insort on first edge, bisect
        # removal on last): the detector needs its DFS start order
        # sorted on every scan, and under saturation the blocked set is
        # hundreds strong while only a handful of waiters enter or
        # leave it between scans — re-sorting per scan cost more than
        # the searches themselves.
        self._blocked_sorted: list[int] = []
        # Monotone counter bumped on every cell mutation. A detection
        # scan that found no cycle can be skipped entirely while the
        # counter stands still: edge state is unchanged, and deletions
        # alone cannot create a cycle — so "still acyclic" needs no
        # proof. The detector records the counter value of its last
        # clean scan.
        self.mutations = 0

    def observer(self, key_base: int, stride: int) -> "SiteCellObserver":
        """An observer mapping entity ``eid`` to cell ``eid * stride +
        key_base``."""
        return SiteCellObserver(self, key_base, stride)

    # ------------------------------------------------------------------
    # mutation protocol (driven by the lock tables)
    # ------------------------------------------------------------------

    def wait(self, key: int, txn: int) -> None:
        """``txn`` joined the cell's queue."""
        self.mutations += 1
        holders = self._holders.get(key)
        if holders:
            counts = self._edges.get(txn)
            if counts is None:
                counts = self._edges[txn] = {}
                insort(self._blocked_sorted, txn)
            for holder in holders:
                counts[holder] = counts.get(holder, 0) + 1
        waiters = self._waiters.get(key)
        if waiters is None:
            waiters = self._waiters[key] = set()
        waiters.add(txn)

    def unwait(self, key: int, txn: int) -> None:
        """``txn`` left the cell's queue (granted or cancelled)."""
        self.mutations += 1
        waiters = self._waiters[key]
        waiters.discard(txn)
        if not waiters:
            del self._waiters[key]
        holders = self._holders.get(key)
        if holders:
            counts = self._edges[txn]
            for holder in holders:
                remaining = counts[holder] - 1
                if remaining:
                    counts[holder] = remaining
                else:
                    del counts[holder]
            if not counts:
                del self._edges[txn]
                blocked = self._blocked_sorted
                del blocked[bisect_left(blocked, txn)]

    def hold(self, key: int, txn: int) -> None:
        """``txn`` became a holder of the cell."""
        self.mutations += 1
        waiters = self._waiters.get(key)
        if waiters:
            edges = self._edges
            for waiter in waiters:
                counts = edges.get(waiter)
                if counts is None:
                    counts = edges[waiter] = {}
                    insort(self._blocked_sorted, waiter)
                counts[txn] = counts.get(txn, 0) + 1
        holders = self._holders.get(key)
        if holders is None:
            holders = self._holders[key] = set()
        holders.add(txn)

    def unhold(self, key: int, txn: int) -> None:
        """``txn`` stopped holding the cell."""
        self.mutations += 1
        holders = self._holders[key]
        holders.discard(txn)
        if not holders:
            del self._holders[key]
        waiters = self._waiters.get(key)
        if waiters:
            edges = self._edges
            blocked = self._blocked_sorted
            for waiter in waiters:
                counts = edges[waiter]
                remaining = counts[txn] - 1
                if remaining:
                    counts[txn] = remaining
                else:
                    del counts[txn]
                if not counts:
                    del edges[waiter]
                    del blocked[bisect_left(blocked, waiter)]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def waiters(self) -> list[int]:
        """The transactions currently having at least one edge."""
        return list(self._edges)

    def blocked_sorted(self) -> list[int]:
        """The blocked transactions in ascending id order.

        A borrowed view of the incrementally maintained list — always
        equal to ``sorted(self._edges)``; callers must not mutate it.
        """
        return self._blocked_sorted

    def cycle(self) -> list[int] | None:
        """One directed cycle (waiter ids, in order), or None.

        Deterministic: DFS starts from waiters in ascending id order
        and expands successors in ascending id order.
        """
        edges = self._edges
        if not edges:
            return None
        empty = ()

        def successors(u: int):
            counts = edges.get(u)
            return sorted(counts) if counts else empty

        return find_cycle(sorted(edges), successors)

    def as_sets(self) -> dict[int, set[int]]:
        """The graph as ``{waiter: {holders}}`` (rebuild-comparable)."""
        return {
            waiter: set(counts) for waiter, counts in self._edges.items()
        }

    def __bool__(self) -> bool:
        return bool(self._edges)

    def __repr__(self) -> str:
        return f"WaitsForGraph({self.as_sets()!r})"


class SiteCellObserver:
    """Forwards one site's lock-cell mutations into the shared graph.

    Keys are ``entity_id * stride + key_base`` — dense ints, no tuple
    allocation on the hot path.
    """

    __slots__ = ("_graph", "_base", "_stride")

    def __init__(self, graph: WaitsForGraph, key_base: int, stride: int):
        self._graph = graph
        self._base = key_base
        self._stride = stride

    def wait(self, entity: int, txn: int) -> None:
        self._graph.wait(entity * self._stride + self._base, txn)

    def unwait(self, entity: int, txn: int) -> None:
        self._graph.unwait(entity * self._stride + self._base, txn)

    def hold(self, entity: int, txn: int) -> None:
        self._graph.hold(entity * self._stride + self._base, txn)

    def unhold(self, entity: int, txn: int) -> None:
        self._graph.unhold(entity * self._stride + self._base, txn)
