"""Simulated-time metrics: windowed time series from the probe stream.

:class:`MetricsSampler` maintains gauges driven purely by probes —
in-flight transactions (``begin``/``arrive`` up, ``commit`` down),
blocked lock requests and per-site queue depths (``wait``/``unwait``)
— and integrates them over simulated time, closing an aggregation
window every ``window`` time units. Each window records the
time-averaged gauges, the waits-for edge count and lock-queue depths
at window close, and the abort/commit/arrival counts (hence rates) of
the window.

The sampler also mirrors the run loop's steady-state in-flight
integral *exactly*: it advances its clock on the same dispatched
events, with the same warmup gating and the same operand order, so
``timeseries["inflight_area"]`` equals ``SimulationResult.
inflight_area`` bit for bit — the transparency suite pins that
time-averaged concurrency from the series matches the result
aggregate. (The one divergence: a run truncated by ``max_events``
integrates its final event in the run loop but never dispatches it,
so the sampler never sees it.)

The whole series is attached to the result as ``result.timeseries``
(a plain-JSON dict, so it survives ``SimulationResult.to_json()`` and
sweep-worker pickling).
"""

from __future__ import annotations

from repro.sim.observe.probes import ProbeSink

__all__ = ["MetricsSampler"]


class MetricsSampler(ProbeSink):
    """Windowed gauges and rates over simulated time."""

    def __init__(self, window: float, warmup_time: float = 0.0):
        if window <= 0:
            raise ValueError("metrics window must be positive")
        self.window = float(window)
        self._warmup = warmup_time
        self._sim = None
        # clock mirror of the run loop
        self._last = 0.0
        self.inflight_area = 0.0  # warmup-gated mirror of the result
        # gauges
        self._inflight = 0
        self._blocked = 0
        self._queue_depth: list[int] = []
        # current-window accumulators (full-time, not warmup-gated)
        self._wlast = 0.0
        self._boundary = self.window
        self._win_inflight = 0.0
        self._win_blocked = 0.0
        self._aborts = 0
        self._commits = 0
        self._arrivals = 0
        self.windows: list[dict] = []

    def bind(self, sim) -> None:
        self._sim = sim
        self._queue_depth = [0] * len(sim._site_names)

    # ------------------------------------------------------------------
    # probe stream
    # ------------------------------------------------------------------

    def on_probe(self, kind: str, time: float, args: tuple) -> None:
        if kind == "event":
            # The dispatch probe fires after the run loop advanced
            # _now, so ``time`` is the new clock; integrate the gauges
            # over the elapsed interval before the handlers mutate
            # them — the same order the run loop integrates in.
            last = self._last
            if time > last:
                lo = self._warmup if self._warmup > last else last
                if time > lo:
                    self.inflight_area += self._inflight * (time - lo)
                self._advance(time)
                self._last = time
            if args[0] == "begin":
                self._inflight += 1
        elif kind == "wait":
            self._blocked += 1
            self._queue_depth[args[0]] += 1
        elif kind == "unwait":
            self._blocked -= 1
            self._queue_depth[args[0]] -= 1
        elif kind == "commit":
            self._inflight -= 1
            self._commits += 1
        elif kind == "arrive":
            self._inflight += 1
            self._arrivals += 1
        elif kind == "abort":
            self._aborts += 1

    # ------------------------------------------------------------------
    # window bookkeeping
    # ------------------------------------------------------------------

    def _advance(self, t: float) -> None:
        """Integrate window gauges up to ``t``, closing full windows."""
        while t >= self._boundary:
            boundary = self._boundary
            self._integrate_to(boundary)
            self._close(boundary - self.window, boundary)
        self._integrate_to(t)

    def _integrate_to(self, t: float) -> None:
        dt = t - self._wlast
        if dt > 0:
            self._win_inflight += self._inflight * dt
            self._win_blocked += self._blocked * dt
            self._wlast = t

    def _close(self, t0: float, t1: float) -> None:
        width = t1 - t0
        self.windows.append({
            "t0": t0,
            "t1": t1,
            "inflight_mean": self._win_inflight / width,
            "blocked_mean": self._win_blocked / width,
            "wf_edges": self._edge_count(),
            "queue_depths": list(self._queue_depth),
            "max_queue_depth": max(self._queue_depth, default=0),
            "aborts": self._aborts,
            "commits": self._commits,
            "arrivals": self._arrivals,
            "abort_rate": self._aborts / width,
        })
        self._win_inflight = 0.0
        self._win_blocked = 0.0
        self._aborts = self._commits = self._arrivals = 0
        self._boundary = t1 + self.window

    def _edge_count(self) -> int:
        """Distinct waits-for edges right now.

        Reads the incrementally maintained graph when the policy keeps
        one; otherwise falls back to the from-scratch rebuild (cold —
        once per window close, never per event).
        """
        sim = self._sim
        wf = sim._waits_for
        if wf is not None:
            return sum(len(counts) for counts in wf._edges.values())
        return sum(len(h) for h in sim._wait_for_edges().values())

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------

    def finalize(self, sim, result) -> None:
        end = sim._now
        t0 = self._boundary - self.window
        if end > t0 or self._aborts or self._commits or self._arrivals:
            # Close the trailing partial window at the run's end time.
            self._integrate_to(end)
            self._close(t0, end if end > t0 else self._boundary)
        result.timeseries = self.series()

    def series(self) -> dict:
        """The time series as a plain-JSON dict."""
        return {
            "window": self.window,
            "warmup_time": self._warmup,
            "inflight_area": self.inflight_area,
            "windows": self.windows,
        }
