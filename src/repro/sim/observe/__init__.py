"""Zero-cost observability: probes, tracing, metrics, flight recorder.

The package splits into the attach-time interposition machinery
(:mod:`~repro.sim.observe.probes` — :class:`ObserveConfig`,
:class:`ObserverHub`, :class:`ProbeSink`) and four stock consumers:

* :class:`EventTracer` (:mod:`~repro.sim.observe.trace`) — bounded
  ring buffer of structured events with JSONL and Chrome
  ``trace_event`` exporters;
* :class:`MetricsSampler` (:mod:`~repro.sim.observe.sampler`) —
  windowed simulated-time series of concurrency, blocking, waits-for
  pressure, queue depths, and abort rates, attached to the result as
  ``result.timeseries``;
* :class:`FlightRecorder` (:mod:`~repro.sim.observe.flight`) —
  anomaly-triggered dumps of the last-N events plus a waits-for DOT
  snapshot;
* :class:`LatencyAttribution` (:mod:`~repro.sim.observe.attribution`)
  — critical-path latency attribution: conserved per-transaction
  segment decomposition, per-cell contention profiles with
  hot-entity/convoy detection, a time-weighted blame graph, and
  abort-cost accounting, attached as ``result.attribution`` (online)
  or replayed over a saved JSONL trace (``repro analyze``).

Enable any of them through ``SimulationConfig(observe=
ObserveConfig(...))``; with the field unset the simulator runs the
exact pre-observability instruction stream (no flag checks on any hot
path — see the :mod:`~repro.sim.observe.probes` docstring for why
disabled mode is provably free). ``ObserveConfig(sample_every=N)``
bounds the traced-run overhead by 1-in-N transaction sampling of the
tracer and attribution streams.
"""

from repro.sim.observe.attribution import (
    LatencyAttribution,
    LatencyAttributor,
)
from repro.sim.observe.flight import FlightRecorder
from repro.sim.observe.probes import ObserveConfig, ObserverHub, ProbeSink
from repro.sim.observe.sampler import MetricsSampler
from repro.sim.observe.trace import EventTracer

__all__ = [
    "EventTracer",
    "FlightRecorder",
    "LatencyAttribution",
    "LatencyAttributor",
    "MetricsSampler",
    "ObserveConfig",
    "ObserverHub",
    "ProbeSink",
]
