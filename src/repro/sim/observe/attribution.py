"""Critical-path latency attribution over the probe stream.

:class:`LatencyAttribution` consumes the :class:`~repro.sim.observe.
probes.ObserverHub` probe stream (online, as a
:class:`~repro.sim.observe.probes.ProbeSink`, or offline over a saved
JSONL trace via :func:`replay_jsonl`) and decomposes every
transaction's measured latency into conserved segments:

=========== =========================================================
segment     time a transaction spent ...
=========== =========================================================
admission   aborted and waiting out the restart backoff before its
            next attempt (plus any other pre-issue queueing)
lock_wait   blocked at a lock cell whose holders were still executing
coordinator blocked behind a PREPARED (or committed-with-release-in-
            flight) holder, or inside a commit round that later
            aborted — stalls a commit coordinator is responsible for
fanout      every issued operation in flight on the network (replica
            fan-out and cross-site issue hops) with none in service
service     executing operations (the closure term, see below)
commit      the final, successful commit round, net of log forces
log_force   inside the commit round with a forced log write in flight
            at the transaction's sites (durability model only)
=========== =========================================================

**Conservation.** For every committed transaction the engine observes
the exact same boundary instants the runtime records (probe times are
dispatch times), so ``exec_latency = exec_done - start`` and
``commit_latency = commit - exec_done`` reproduce the result's own
latency split bit for bit. The ``service`` segment is then defined as
the *closure term* ``exec_latency - admission - lock_wait -
coordinator - fanout`` (left-associated, exactly that expression) and
``commit`` as ``commit_latency - log_force`` (the measured log-force
time is carved out of the commit window it lives inside), which makes
the decomposition conserve with **zero tolerance** by construction:
IEEE float addition does not reassociate, so a naively reordered sum
could drift by an ulp, but the canonical identity

    ``service == exec_latency - admission - lock_wait - coordinator
    - fanout``  and  ``commit == commit_latency - log_force``

holds exactly. The independently *measured* service time is kept as a
drift diagnostic (``conservation.max_service_drift``); a negative
closure term would mean the engine double-charged a wait and fails
:meth:`LatencyAttribution.check`.

**Attribution rules.** A transaction blocked at several cells at once
charges the whole interval to its *primary* blocker — the
earliest-opened still-active wait — keeping the decomposition exact
(no fractional splitting). Blame-graph edges (waiter -> holder,
annotated with the contended cell) charge the full blocked interval
to every current holder of the primary cell, so a shared lock with
``k`` holders produces ``k`` edges covering the same wall interval;
per-cell profile time is charged once. Failed commit rounds fold into
``coordinator`` (the decomposition's segments must live inside the
final exec/commit split, and a round that aborted is coordinator
stall, not useful commit time).

**Sampling.** Under 1-in-N transaction sampling (``ObserveConfig.
sample_every``) the hub withholds the per-transaction probes of
unsampled transactions, but always delivers ``counter`` and ``abort``
probes so the LIFO cause pairing stays exact; abort *counts* per
cause are then exact while blocked-time, blame and wasted-time
figures are estimates over the sampled population — the summary is
marked ``sampled: true`` accordingly.
"""

from __future__ import annotations

from repro.sim.observe.probes import EVENT_TXN_ARG, ProbeSink
from repro.sim.observe.trace import CAUSE_OF_COUNTER

__all__ = [
    "LatencyAttribution",
    "LatencyAttributor",
    "SEGMENTS",
    "analyze_trace",
    "render_report",
    "replay_jsonl",
]

#: Segment names, in canonical (conservation) order.
SEGMENTS = (
    "admission", "lock_wait", "coordinator", "fanout", "service",
    "commit", "log_force",
)

(
    _ADMISSION, _LOCK, _COORD, _FANOUT, _SERVICE, _COMMIT, _LOGFORCE,
) = range(7)

_CELL_KINDS = frozenset({"wait", "unwait", "hold", "unhold"})


class _TxnState:
    """Single-timeline attribution state of one tracked transaction."""

    __slots__ = (
        "txn", "start", "exec_done", "commit", "attempt",
        "attempt_start", "last", "aborted", "prepared", "in_service",
        "in_net", "in_flush", "wait_cells", "seg", "done",
        "measured_service",
    )

    def __init__(self, txn: int, now: float):
        self.txn = txn
        self.start = now
        self.exec_done = -1.0
        self.commit = -1.0
        self.attempt = 0
        self.attempt_start = now
        self.last = now
        self.aborted = False
        self.prepared = False
        self.in_service = 0
        self.in_net = 0
        self.in_flush = 0
        self.wait_cells: dict = {}  # cell -> wait-open time (ordered)
        self.seg = [0.0] * 7
        self.done = False
        self.measured_service = 0.0


class _CellStats:
    """Contention profile of one (site, entity) lock cell."""

    __slots__ = (
        "blocked", "waits", "depth", "depth_since", "peak_depth",
        "convoy",
    )

    def __init__(self):
        self.blocked = 0.0  # primary-blocker time charged to the cell
        self.waits = 0  # wait probes (queueing episodes)
        self.depth = 0  # current waiter-queue depth
        self.depth_since = 0.0
        self.peak_depth = 0
        self.convoy = 0.0  # time spent at convoy depth

    def set_depth(self, depth: int, now: float, threshold: int):
        if self.depth >= threshold:
            self.convoy += now - self.depth_since
        self.depth = depth
        self.depth_since = now
        if depth > self.peak_depth:
            self.peak_depth = depth


class LatencyAttribution:
    """The attribution engine: feed probes, then :meth:`summary`.

    Cells are keyed by whatever ``(site, entity)`` pair the probes
    carry — interned ids online, names when replaying a formatted
    JSONL trace — and resolved to names only when the summary is
    built.
    """

    def __init__(
        self,
        sample_every: int = 1,
        convoy_threshold: int = 3,
        top_cells: int = 16,
        top_edges: int = 32,
    ):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = sample_every
        self.convoy_threshold = convoy_threshold
        self.top_cells = top_cells
        self.top_edges = top_edges
        self._states: dict[int, _TxnState] = {}
        self._cells: dict = {}  # cell -> _CellStats
        self._holders: dict = {}  # cell -> set of holder txns
        # txn -> {cell: None}.  Ordered like _waiters: cell keys are
        # interned int pairs online but name pairs offline, and the
        # prepared branch settles waiters per held cell, so a set here
        # would make the settlement (and hence float-summation) order
        # hash-dependent and break online == offline bit-equality.
        self._held_by: dict = {}
        self._waiters: dict = {}  # cell -> {waiter txn: None} (ordered)
        self._prepared: set = set()  # PREPARED / release-in-flight
        self._causes: list[str] = []  # LIFO of armed abort causes
        self._edges: dict = {}  # (waiter, holder, cell) -> blocked time
        self._abort_cause_counts: dict = {}
        self._abort_cause_wasted: dict = {}
        self._wasted = 0.0
        self._useful = 0.0
        self._committed = 0
        self._aborts_seen = 0
        self._end = 0.0
        #: per-committed-transaction segments (canonical order) plus
        #: the boundary instants, for conservation checks and tests.
        self.transactions: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # the single-timeline state machine
    # ------------------------------------------------------------------

    def _classify(self, st: _TxnState):
        """(segment index, primary cell or None) for the next interval."""
        if st.aborted:
            return _ADMISSION, None
        if st.wait_cells:
            cell = next(iter(st.wait_cells))
            holders = self._holders.get(cell)
            if holders and not self._prepared.isdisjoint(holders):
                return _COORD, cell
            return _LOCK, cell
        if st.prepared:
            if st.in_flush > 0:
                return _LOGFORCE, None
            return _COMMIT, None
        if st.in_service == 0 and st.in_net > 0:
            return _FANOUT, None
        return _SERVICE, None

    def _advance(self, st: _TxnState, now: float) -> None:
        dt = now - st.last
        if dt > 0.0 and not st.done:
            bucket, cell = self._classify(st)
            st.seg[bucket] += dt
            if bucket == _SERVICE:
                st.measured_service += dt
            if cell is not None:
                stats = self._cells.get(cell)
                if stats is None:
                    stats = self._cells[cell] = _CellStats()
                stats.blocked += dt
                edges = self._edges
                for holder in self._holders.get(cell, ()):
                    key = (st.txn, holder, cell)
                    edges[key] = edges.get(key, 0.0) + dt
        st.last = now

    def _advance_waiters(self, cell, now: float) -> None:
        """Settle clocks of a cell's waiters before its state changes."""
        waiters = self._waiters.get(cell)
        if waiters:
            states = self._states
            for txn in waiters:
                st = states.get(txn)
                if st is not None:
                    self._advance(st, now)

    def _cell_stats(self, cell) -> _CellStats:
        stats = self._cells.get(cell)
        if stats is None:
            stats = self._cells[cell] = _CellStats()
        return stats

    # ------------------------------------------------------------------
    # probe intake
    # ------------------------------------------------------------------

    def feed(self, kind: str, now: float, args: tuple) -> None:
        """Consume one probe (raw or replayed); order matters."""
        if now > self._end:
            self._end = now
        states = self._states
        if kind == "event" or kind == "sched":
            ev = args[0]
            if ev == "net_deliver":
                # A chaos-wrapped logical send: the wrapper's payload
                # slot carries the inner message, so recursing at send
                # time opens the same in-network interval a direct send
                # would. The matching inner *event* probe fires at real
                # delivery (the channel re-dispatches through the
                # registry) and closes it; retransmitted and duplicated
                # copies travel as ``net_redeliver`` and stay invisible
                # — a lossy link simply stretches the open interval,
                # folding retransmission waits into the fanout and
                # coordinator segments.
                if kind == "sched":
                    self.feed("sched", now, tuple(args[4]))
                return
            idx = EVENT_TXN_ARG.get(ev)
            if idx is None:
                return
            st = states.get(args[idx])
            if kind == "event":
                if ev == "begin":
                    if st is None:
                        states[args[1]] = _TxnState(args[1], now)
                elif ev == "op_done":
                    if (
                        st is not None and not st.done
                        and st.attempt == args[3] and st.in_service > 0
                    ):
                        self._advance(st, now)
                        st.in_service -= 1
                elif ev == "issue" or ev == "replica_req":
                    attempt = args[3] if ev == "issue" else args[4]
                    if (
                        st is not None and not st.done
                        and st.attempt == attempt and st.in_net > 0
                    ):
                        self._advance(st, now)
                        st.in_net -= 1
                elif ev == "dur_flush":
                    # A forced write completed (or was cancelled by a
                    # crash — the heap event fires either way, keeping
                    # the sched/event pair balanced).
                    if (
                        st is not None and not st.done
                        and st.in_flush > 0
                    ):
                        self._advance(st, now)
                        st.in_flush -= 1
                elif ev == "restart":
                    if (
                        st is not None and st.aborted
                        and st.attempt == args[2]
                    ):
                        self._advance(st, now)
                        st.aborted = False
                        st.attempt_start = now
                # timeout / cm_* carry no segment boundary of their own
            else:  # sched: a message/service interval opens now
                if st is None or st.done:
                    return
                if ev == "op_done":
                    if st.attempt == args[3]:
                        self._advance(st, now)
                        st.in_service += 1
                elif ev == "issue" or ev == "replica_req":
                    attempt = args[3] if ev == "issue" else args[4]
                    if st.attempt == attempt:
                        self._advance(st, now)
                        st.in_net += 1
                elif ev == "dur_flush":
                    # A forced log write opens at one of the txn's
                    # sites: inside the prepared window this interval
                    # is log-force, not commit, time.
                    self._advance(st, now)
                    st.in_flush += 1
        elif kind in _CELL_KINDS:
            cell = (args[0], args[1])
            txn = args[2]
            if kind == "wait":
                st = states.get(txn)
                if st is not None and not st.done:
                    self._advance(st, now)
                    st.wait_cells[cell] = now
                    waiters = self._waiters.setdefault(cell, {})
                    waiters[txn] = None
                    stats = self._cell_stats(cell)
                    stats.waits += 1
                    stats.set_depth(
                        len(waiters), now, self.convoy_threshold
                    )
            elif kind == "unwait":
                st = states.get(txn)
                if st is not None and cell in st.wait_cells:
                    self._advance(st, now)
                    del st.wait_cells[cell]
                    waiters = self._waiters.get(cell)
                    if waiters is not None and txn in waiters:
                        del waiters[txn]
                        self._cell_stats(cell).set_depth(
                            len(waiters), now, self.convoy_threshold
                        )
            elif kind == "hold":
                self._advance_waiters(cell, now)
                self._holders.setdefault(cell, set()).add(txn)
                self._held_by.setdefault(txn, {})[cell] = None
            else:  # unhold
                self._advance_waiters(cell, now)
                holders = self._holders.get(cell)
                if holders is not None:
                    holders.discard(txn)
                cells = self._held_by.get(txn)
                if cells is not None:
                    cells.pop(cell, None)
                    if not cells and txn in self._prepared:
                        # Release fan-out drained: the holder stops
                        # counting as a blocking coordinator.
                        self._prepared.discard(txn)
        elif kind == "counter":
            name = args[0]
            cause = CAUSE_OF_COUNTER.get(name)
            if cause is not None:
                causes = self._causes
                if (
                    cause == "unavailable"
                    and causes and causes[-1] == "crash"
                ):
                    causes[-1] = cause  # refinement, same abort
                else:
                    causes.append(cause)
        elif kind == "arrive":
            txn = args[0]
            if txn not in states:
                states[txn] = _TxnState(txn, now)
        elif kind == "prepared":
            txn = args[0]
            st = states.get(txn)
            if st is not None and not st.done:
                self._advance(st, now)
                st.prepared = True
                st.exec_done = now
            for cell in self._held_by.get(txn, ()):
                self._advance_waiters(cell, now)
            self._prepared.add(txn)
        elif kind == "commit":
            st = states.get(args[0])
            if st is not None and not st.done:
                self._finish(st, now)
        elif kind == "abort":
            self._on_abort(args[0], args[1], now)

    def _on_abort(self, txn: int, attempt: int, now: float) -> None:
        self._aborts_seen += 1
        cause = self._causes.pop() if self._causes else "cascade"
        counts = self._abort_cause_counts
        counts[cause] = counts.get(cause, 0) + 1
        st = self._states.get(txn)
        if st is None or st.done:
            return  # unsampled transaction: count the cause only
        self._advance(st, now)
        wasted = now - st.attempt_start
        if wasted > 0:
            self._wasted += wasted
            bucket = self._abort_cause_wasted
            bucket[cause] = bucket.get(cause, 0.0) + wasted
        # A failed commit round's stall is coordinator time: the final
        # split only has room for the *successful* round under commit
        # (and its log forces were wasted the same way).
        if st.seg[_COMMIT]:
            st.seg[_COORD] += st.seg[_COMMIT]
            st.seg[_COMMIT] = 0.0
        if st.seg[_LOGFORCE]:
            st.seg[_COORD] += st.seg[_LOGFORCE]
            st.seg[_LOGFORCE] = 0.0
        for cell in st.wait_cells:
            waiters = self._waiters.get(cell)
            if waiters is not None and txn in waiters:
                del waiters[txn]
                self._cell_stats(cell).set_depth(
                    len(waiters), now, self.convoy_threshold
                )
        st.wait_cells.clear()
        st.in_service = 0
        st.in_net = 0
        st.in_flush = 0
        st.prepared = False
        st.exec_done = -1.0
        st.aborted = True
        st.attempt = attempt + 1

    def _finish(self, st: _TxnState, now: float) -> None:
        self._advance(st, now)
        st.commit = now
        if st.exec_done < 0:
            st.exec_done = now  # instant commit: no prepared window
        st.done = True
        seg = st.seg
        exec_lat = st.exec_done - st.start
        commit_lat = st.commit - st.exec_done
        # The conservation closure: see the module docstring.
        seg[_SERVICE] = (
            exec_lat - seg[_ADMISSION] - seg[_LOCK] - seg[_COORD]
            - seg[_FANOUT]
        )
        seg[_COMMIT] = commit_lat - seg[_LOGFORCE]
        self._committed += 1
        self._useful += st.commit - st.start
        self.transactions[st.txn] = {
            "start": st.start,
            "exec_done": st.exec_done,
            "commit": st.commit,
            "segments": dict(zip(SEGMENTS, seg)),
            "measured_service": st.measured_service,
        }

    # ------------------------------------------------------------------
    # verification and summary
    # ------------------------------------------------------------------

    def check(self, tolerance: float = 1e-9) -> list[str]:
        """Conservation violations over the committed transactions.

        The canonical identity is exact by construction; what this
        actually verifies is that the recorded segments are internally
        consistent and that no segment (in particular the service
        closure term) went negative — the symptom of a double-charged
        interval or a truncated probe stream.
        """
        errors = []
        for txn, entry in self.transactions.items():
            seg = entry["segments"]
            exec_lat = entry["exec_done"] - entry["start"]
            commit_lat = entry["commit"] - entry["exec_done"]
            closure = (
                exec_lat - seg["admission"] - seg["lock_wait"]
                - seg["coordinator"] - seg["fanout"]
            )
            if seg["service"] != closure:
                errors.append(
                    f"T{txn}: service {seg['service']!r} != closure "
                    f"{closure!r}"
                )
            if seg["commit"] != commit_lat - seg["log_force"]:
                errors.append(
                    f"T{txn}: commit {seg['commit']!r} != "
                    f"{commit_lat!r} - log_force "
                    f"{seg['log_force']!r}"
                )
            for name, value in seg.items():
                if value < -tolerance:
                    errors.append(
                        f"T{txn}: negative {name} segment {value!r}"
                    )
        return errors

    def blame_edge_list(self, entity_name=str, site_name=str) -> list:
        """Blame edges, heaviest first, names resolved."""
        edges = sorted(
            self._edges.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            {
                "waiter": waiter,
                "holder": holder,
                "site": site_name(cell[0]),
                "entity": entity_name(cell[1]),
                "time": time,
            }
            for (waiter, holder, cell), time in edges
        ]

    def summary(self, entity_name=str, site_name=str) -> dict:
        """The attribution block: a plain-JSON aggregate of the run.

        ``entity_name`` / ``site_name`` resolve cell keys (interned
        ids online, already-resolved names offline).
        """
        # Close the convoy integrals at the last observed instant.
        for stats in self._cells.values():
            stats.set_depth(stats.depth, self._end, self.convoy_threshold)
        totals = dict.fromkeys(SEGMENTS, 0.0)
        max_drift = 0.0
        min_service = 0.0
        for entry in self.transactions.values():
            seg = entry["segments"]
            for name in SEGMENTS:
                totals[name] += seg[name]
            drift = abs(seg["service"] - entry["measured_service"])
            if drift > max_drift:
                max_drift = drift
            if seg["service"] < min_service:
                min_service = seg["service"]

        total_blocked = sum(s.blocked for s in self._cells.values())
        cells = sorted(
            self._cells.items(), key=lambda kv: (-kv[1].blocked, kv[0])
        )
        hot_cells = [
            {
                "site": site_name(cell[0]),
                "entity": entity_name(cell[1]),
                "blocked_time": stats.blocked,
                "waits": stats.waits,
                "convoy_time": stats.convoy,
                "peak_queue": stats.peak_depth,
                "share": (
                    stats.blocked / total_blocked if total_blocked else 0.0
                ),
            }
            for cell, stats in cells[: self.top_cells]
        ]
        entity_blocked: dict[str, float] = {}
        for cell, stats in self._cells.items():
            name = entity_name(cell[1])
            entity_blocked[name] = (
                entity_blocked.get(name, 0.0) + stats.blocked
            )
        hotspot = None
        if total_blocked > 0.0:
            top = max(sorted(entity_blocked), key=entity_blocked.get)
            hotspot = {
                "entity": top,
                "blocked_time": entity_blocked[top],
                "share": entity_blocked[top] / total_blocked,
            }

        edges = self.blame_edge_list(entity_name, site_name)
        blame_total = sum(e["time"] for e in edges)
        wasted = self._wasted
        useful = self._useful
        denom = wasted + useful
        by_cause = {
            cause: {
                "count": count,
                "wasted_time": self._abort_cause_wasted.get(cause, 0.0),
            }
            for cause, count in sorted(self._abort_cause_counts.items())
        }
        return {
            "sampled": self.sample_every > 1,
            "sample_every": self.sample_every,
            "tracked": len(self._states),
            "committed": self._committed,
            "aborts_seen": self._aborts_seen,
            "segments": totals,
            "conservation": {
                "transactions": self._committed,
                "exact": not self.check(),
                "min_service": min_service,
                "max_service_drift": max_drift,
            },
            "hot_cells": hot_cells,
            "hotspot": hotspot,
            "convoy_threshold": self.convoy_threshold,
            "blame": {
                "edges": edges[: self.top_edges],
                "edge_count": len(edges),
                "total_time": blame_total,
            },
            "aborts": {
                "by_cause": by_cause,
                "wasted_time": wasted,
                "useful_time": useful,
                "wasted_fraction": wasted / denom if denom else 0.0,
            },
        }


class LatencyAttributor(ProbeSink):
    """The online adapter: a probe sink wrapping the engine.

    At finalize it attaches the summary as ``result.attribution``
    (a plain dict, so it survives ``to_dict``/``from_json`` and
    pickling to sweep workers unchanged).
    """

    def __init__(self, sample_every: int = 1):
        self.engine = LatencyAttribution(sample_every=sample_every)
        self._entity_names: list[str] = []
        self._site_names: list[str] = []

    def bind(self, sim) -> None:
        self._entity_names = sim._entity_names
        self._site_names = sim._site_names

    def on_probe(self, kind: str, time: float, args: tuple) -> None:
        self.engine.feed(kind, time, args)

    def finalize(self, sim, result) -> None:
        result.attribution = self.engine.summary(
            self._entity_names.__getitem__,
            self._site_names.__getitem__,
        )

    def blame_edge_list(self) -> list:
        """The engine's blame edges with interned ids resolved."""
        return self.engine.blame_edge_list(
            self._entity_names.__getitem__,
            self._site_names.__getitem__,
        )


# ----------------------------------------------------------------------
# offline replay (the ``repro analyze`` backend)
# ----------------------------------------------------------------------


def replay_jsonl(records) -> LatencyAttribution:
    """Re-run the engine over formatted JSONL trace records.

    Accepts the dicts :func:`repro.sim.observe.trace.iter_formatted`
    emits (and ``load_trace`` returns); cells are keyed by their
    resolved names, causes re-derived from the counter records with
    the same LIFO the tracer uses, so offline results match the online
    sink wherever the ring kept the whole run.
    """
    engine = LatencyAttribution()
    for rec in records:
        kind = rec.get("kind")
        t = rec.get("t", 0.0)
        if kind in ("event", "sched"):
            engine.feed(kind, t, (rec["event"], *rec["args"]))
        elif kind in _CELL_KINDS:
            engine.feed(kind, t, (rec["site"], rec["entity"], rec["txn"]))
        elif kind == "counter":
            engine.feed(kind, t, (rec["name"], rec["value"]))
        elif kind == "abort":
            engine.feed(kind, t, (rec["txn"], rec["attempt"]))
        elif kind in ("arrive", "prepared", "commit"):
            engine.feed(kind, t, (rec["txn"],))
    return engine


def analyze_trace(path: str) -> tuple[dict, LatencyAttribution]:
    """Attribution summary of a saved JSONL trace file."""
    from repro.sim.observe.trace import load_trace

    fmt, records = load_trace(path)
    if fmt != "jsonl":
        raise ValueError(
            f"{path}: attribution needs the lossless JSONL trace "
            f"(--trace-jsonl), not a {fmt} export"
        )
    engine = replay_jsonl(records)
    return engine.summary(), engine


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------


def render_report(summary: dict, top: int = 8) -> str:
    """A human-readable attribution report."""
    lines = []
    committed = summary["committed"]
    tag = ""
    if summary.get("sampled"):
        tag = (
            f" [SAMPLED 1-in-{summary['sample_every']}: "
            f"estimates over the sampled population]"
        )
    lines.append(
        f"attribution: {committed} committed / "
        f"{summary['tracked']} tracked transactions{tag}"
    )
    totals = summary["segments"]
    grand = sum(totals.values())
    lines.append("  latency decomposition (totals over commits):")
    for name in SEGMENTS:
        value = totals[name]
        share = value / grand if grand else 0.0
        lines.append(f"    {name:<12} {value:>12.2f}  {share:>6.1%}")
    cons = summary["conservation"]
    lines.append(
        f"  conservation: exact={cons['exact']} over "
        f"{cons['transactions']} txns, service drift "
        f"{cons['max_service_drift']:.2e}"
    )
    if summary["hotspot"] is not None:
        hs = summary["hotspot"]
        lines.append(
            f"  hotspot entity: {hs['entity']} "
            f"({hs['share']:.1%} of all blocked time)"
        )
    if summary["hot_cells"]:
        lines.append(f"  top contended cells (of {len(summary['hot_cells'])}):")
        for cell in summary["hot_cells"][:top]:
            lines.append(
                f"    {cell['entity']}@{cell['site']:<10} "
                f"blocked {cell['blocked_time']:>10.2f} "
                f"({cell['share']:>5.1%})  waits {cell['waits']:<5} "
                f"convoy {cell['convoy_time']:>8.2f} "
                f"peakq {cell['peak_queue']}"
            )
    blame = summary["blame"]
    if blame["edges"]:
        lines.append(
            f"  blame graph: {blame['edge_count']} edges, "
            f"{blame['total_time']:.2f} blocked txn-time; heaviest:"
        )
        for edge in blame["edges"][:top]:
            lines.append(
                f"    T{edge['waiter']} -> T{edge['holder']} "
                f"on {edge['entity']}@{edge['site']} "
                f"({edge['time']:.2f})"
            )
    aborts = summary["aborts"]
    if aborts["by_cause"]:
        parts = ", ".join(
            f"{cause}={entry['count']} "
            f"(wasted {entry['wasted_time']:.1f})"
            for cause, entry in aborts["by_cause"].items()
        )
        lines.append(f"  abort cost: {parts}")
        lines.append(
            f"  wasted work: {aborts['wasted_time']:.2f} of "
            f"{aborts['wasted_time'] + aborts['useful_time']:.2f} "
            f"simulated txn-time "
            f"({aborts['wasted_fraction']:.1%} wasted)"
        )
    return "\n".join(lines)
