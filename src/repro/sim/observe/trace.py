"""Structured event tracing: bounded ring buffer plus exporters.

:class:`EventTracer` retains the most recent ``capacity`` probe
records and exports them as

* **JSONL** — one self-describing dict per line, the lossless format
  (:meth:`EventTracer.export_jsonl`);
* **Chrome ``trace_event`` JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``
  (:meth:`EventTracer.export_chrome`). Lock waits and holds become
  duration events on one track per (site, transaction); transaction
  lifecycle marks (arrive, prepared, commit, abort-with-cause) and
  runtime events (restarts, timeouts, detection scans, crashes,
  repairs, commit-round messages) become instants; the monitored
  result counters become Chrome counter tracks. One simulated time
  unit is rendered as one millisecond.

Abort causes are attributed when records are formatted: every cause
counter (wound, death, timeout, detected, crash, unavailable, commit)
is incremented by the runtime immediately before the abort it
explains, so a LIFO stack of armed causes pairs them up exactly even
through nested abort cascades; an abort with no armed cause is a
cascade victim (its locks were released by another abort's cleanup).
The one approximation: if the ring dropped the arming counter record
but kept the abort, that abort reports ``cascade``.
"""

from __future__ import annotations

import json
from collections import Counter, deque

from repro.sim.observe.probes import ProbeSink

__all__ = [
    "EventTracer",
    "iter_formatted",
    "load_trace",
    "summarize_trace",
]

#: counter name -> abort cause it arms.
CAUSE_OF_COUNTER = {
    "wounds": "wound",
    "deaths": "death",
    "timeouts": "timeout",
    "detected": "detected",
    "crash_aborts": "crash",
    "unavailable_aborts": "unavailable",
    "commit_aborts": "commit",
}

_CELL_KINDS = frozenset({"wait", "unwait", "hold", "unhold"})


def iter_formatted(records, entity_names, site_names):
    """Render raw ``(time, kind, args)`` records as dicts, in order.

    Performs the cause attribution described in the module docstring,
    so it must see the records in emission order.
    """
    causes: list[str] = []
    for time, kind, args in records:
        if kind == "event" or kind == "sched":
            yield {
                "t": time,
                "kind": kind,
                "event": args[0],
                "args": list(args[1:]),
            }
        elif kind in _CELL_KINDS:
            sid, eid, txn = args
            yield {
                "t": time,
                "kind": kind,
                "site": site_names[sid],
                "entity": entity_names[eid],
                "txn": txn,
            }
        elif kind == "counter":
            name, value = args
            cause = CAUSE_OF_COUNTER.get(name)
            if cause is not None:
                if cause == "unavailable" and causes and causes[-1] == "crash":
                    # _request_lock bumps crash_aborts then
                    # unavailable_aborts for the same abort; the
                    # refined cause wins.
                    causes[-1] = cause
                else:
                    causes.append(cause)
            yield {"t": time, "kind": "counter", "name": name, "value": value}
        elif kind == "abort":
            yield {
                "t": time,
                "kind": "abort",
                "txn": args[0],
                "attempt": args[1],
                "cause": causes.pop() if causes else "cascade",
            }
        else:  # arrive, prepared, commit
            yield {"t": time, "kind": kind, "txn": args[0]}


class EventTracer(ProbeSink):
    """Bounded ring buffer of probe records."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.total = 0  # records ever seen (dropped = total - len)
        self._entity_names: list[str] = []
        self._site_names: list[str] = []

    def bind(self, sim) -> None:
        self._entity_names = sim._entity_names
        self._site_names = sim._site_names

    def on_probe(self, kind: str, time: float, args: tuple) -> None:
        self.total += 1
        self._ring.append((time, kind, args))

    def finalize(self, sim, result) -> None:
        pass

    # ------------------------------------------------------------------
    # access and export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self.total - len(self._ring)

    def records(self) -> list[dict]:
        """The retained records as formatted dicts, oldest first."""
        return list(
            iter_formatted(self._ring, self._entity_names, self._site_names)
        )

    def export_jsonl(self, path: str) -> int:
        """Write one JSON record per line; returns the record count."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for record in iter_formatted(
                self._ring, self._entity_names, self._site_names
            ):
                fh.write(json.dumps(record, separators=(",", ":")))
                fh.write("\n")
                n += 1
        return n

    def export_chrome(self, path: str) -> int:
        """Write a Chrome ``trace_event`` JSON document.

        Returns the number of trace events written.
        """
        events = self.chrome_events()
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": len(self._ring),
                "dropped": self.dropped,
            },
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
        return len(events)

    def chrome_events(self) -> list[dict]:
        """The retained records as Chrome ``trace_event`` dicts.

        Layout: pid 0 is the runtime/transaction track group (tid =
        transaction id); pid ``1 + sid`` is one group per site, whose
        tids are again transaction ids, carrying that site's lock
        wait/hold spans.
        """
        scale = 1000.0  # 1 simulated unit -> 1000 us (renders as 1 ms)
        site_names = self._site_names
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "runtime"},
            }
        ]
        for sid, name in enumerate(site_names):
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": 1 + sid,
                "tid": 0,
                "args": {"name": f"site {name}"},
            })
        site_pid = {name: 1 + sid for sid, name in enumerate(site_names)}
        open_spans: dict[tuple, float] = {}
        last_time = 0.0

        def span(key, name, t0, t1, pid, tid):
            events.append({
                "name": name,
                "cat": key,
                "ph": "X",
                "ts": t0 * scale,
                "dur": (t1 - t0) * scale,
                "pid": pid,
                "tid": tid,
            })

        def instant(name, t, pid, tid, args=None):
            ev = {
                "name": name,
                "cat": "mark",
                "ph": "i",
                "s": "t",
                "ts": t * scale,
                "pid": pid,
                "tid": tid,
            }
            if args:
                ev["args"] = args
            events.append(ev)

        for rec in iter_formatted(
            self._ring, self._entity_names, site_names
        ):
            t = rec["t"]
            last_time = t if t > last_time else last_time
            kind = rec["kind"]
            if kind in ("wait", "hold"):
                open_spans[(kind, rec["site"], rec["entity"], rec["txn"])] = t
            elif kind in ("unwait", "unhold"):
                opener = "wait" if kind == "unwait" else "hold"
                key = (opener, rec["site"], rec["entity"], rec["txn"])
                t0 = open_spans.pop(key, None)
                if t0 is not None:
                    span(
                        "lock",
                        f"{opener} {rec['entity']}",
                        t0,
                        t,
                        site_pid[rec["site"]],
                        rec["txn"],
                    )
            elif kind == "counter":
                events.append({
                    "name": rec["name"],
                    "cat": "counter",
                    "ph": "C",
                    "ts": t * scale,
                    "pid": 0,
                    "args": {rec["name"]: rec["value"]},
                })
            elif kind == "abort":
                instant(
                    f"abort ({rec['cause']})",
                    t,
                    0,
                    rec["txn"],
                    {"attempt": rec["attempt"]},
                )
            elif kind in ("arrive", "prepared", "commit"):
                instant(kind, t, 0, rec["txn"])
            elif kind == "event":
                name = rec["event"]
                if name in (
                    "begin", "issue", "op_done", "replica_req", "arrive",
                ):
                    # Bulk execution events (the lock spans and the
                    # lifecycle instants already cover them).
                    continue
                args = rec["args"]
                tid = args[0] if args and isinstance(args[0], int) else 0
                instant(name, t, 0, tid)
        # Close any spans still open at the end of the ring.
        for (opener, site, entity, txn), t0 in open_spans.items():
            span(
                "lock",
                f"{opener} {entity}",
                t0,
                max(last_time, t0),
                site_pid[site],
                txn,
            )
        return events


# ----------------------------------------------------------------------
# trace-file inspection (the ``repro trace`` subcommand)
# ----------------------------------------------------------------------


def load_trace(path: str) -> tuple[str, list[dict]]:
    """Load a trace file; returns ``(format, items)``.

    ``format`` is ``"chrome"`` (items are trace events) or ``"jsonl"``
    (items are formatted probe records).
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # multiple lines: JSONL
    if isinstance(doc, dict) and "traceEvents" in doc:
        return "chrome", list(doc["traceEvents"])
    records = [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]
    return "jsonl", records


def _span(values) -> tuple[float, float]:
    lo = hi = None
    for v in values:
        if lo is None or v < lo:
            lo = v
        if hi is None or v > hi:
            hi = v
    return (lo or 0.0, hi or 0.0)


def summarize_trace(path: str, top_k: int = 5) -> str:
    """A human-readable summary of a trace file.

    JSONL traces additionally get an abort-cause breakdown and a
    top-``top_k`` blocking (entity, site) table — enough to diagnose a
    saved trace without the full ``repro analyze`` replay.
    """
    fmt, items = load_trace(path)
    lines = [f"{path}: {fmt} trace, {len(items)} records"]
    if not items:
        return "\n".join(lines)
    if fmt == "chrome":
        lo, hi = _span(
            ev["ts"] for ev in items if "ts" in ev and ev.get("ph") != "M"
        )
        lines.append(
            f"  time span: {lo / 1000.0:g} .. {hi / 1000.0:g} (sim units)"
        )
        by_phase = Counter(ev.get("ph", "?") for ev in items)
        lines.append(
            "  phases: "
            + ", ".join(f"{ph}={n}" for ph, n in sorted(by_phase.items()))
        )
        names = Counter(
            ev["name"]
            for ev in items
            if ev.get("ph") in ("X", "i", "C")
        )
        top = ", ".join(f"{name} x{n}" for name, n in names.most_common(8))
        lines.append(f"  top events: {top}")
    else:
        lo, hi = _span(rec["t"] for rec in items)
        lines.append(f"  time span: {lo:g} .. {hi:g} (sim units)")
        by_kind = Counter(rec["kind"] for rec in items)
        lines.append(
            "  kinds: "
            + ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
        )
        causes = Counter(
            rec["cause"] for rec in items if rec["kind"] == "abort"
        )
        if causes:
            lines.append(
                "  abort causes: "
                + ", ".join(
                    f"{c}={n}" for c, n in causes.most_common()
                )
            )
        waiters = Counter(
            rec["txn"] for rec in items if rec["kind"] == "wait"
        )
        if waiters:
            top = ", ".join(
                f"T{txn} x{n}" for txn, n in waiters.most_common(5)
            )
            lines.append(f"  most-blocked transactions: {top}")
        blocking = _blocking_cells(items, hi)
        if blocking:
            lines.append(
                f"  top blocking cells (entity@site, of "
                f"{len(blocking)}):"
            )
            for (entity, site), (blocked, waits) in sorted(
                blocking.items(), key=lambda kv: (-kv[1][0], kv[0])
            )[:top_k]:
                lines.append(
                    f"    {entity}@{site:<12} blocked {blocked:>10.2f}"
                    f"  waits {waits}"
                )
    return "\n".join(lines)


def _blocking_cells(items, end: float) -> dict:
    """Blocked time and wait counts per (entity, site) of a JSONL
    trace; waits still open when the ring ends are charged to its last
    timestamp."""
    open_waits: dict[tuple, float] = {}
    cells: dict[tuple, list] = {}
    for rec in items:
        kind = rec["kind"]
        if kind == "wait":
            key = (rec["site"], rec["entity"], rec["txn"])
            open_waits[key] = rec["t"]
            cell = cells.setdefault((rec["entity"], rec["site"]), [0.0, 0])
            cell[1] += 1
        elif kind == "unwait":
            key = (rec["site"], rec["entity"], rec["txn"])
            t0 = open_waits.pop(key, None)
            if t0 is not None:
                cell = cells.setdefault(
                    (rec["entity"], rec["site"]), [0.0, 0]
                )
                cell[0] += rec["t"] - t0
    for (site, entity, _txn), t0 in open_waits.items():
        cell = cells.setdefault((entity, site), [0.0, 0])
        cell[0] += max(end - t0, 0.0)
    return {key: tuple(value) for key, value in cells.items()}
