"""The flight recorder: anomaly-triggered post-mortem dumps.

:class:`FlightRecorder` keeps the last-N probe records in a ring and,
when an anomaly fires, writes a numbered dump pair into its output
directory:

* ``flight-NNN-<reason>.jsonl`` — the retained records, formatted like
  the tracer's JSONL export;
* ``flight-NNN-<reason>.dot`` — a waits-for graph snapshot at the
  moment of the anomaly (via :func:`repro.io.dot.waits_for_to_dot`),
  taken from the incrementally maintained graph when the policy keeps
  one and rebuilt from the lock tables otherwise.

Triggers:

* **deadlock detection** — the ``detected`` counter probe fires before
  the victim aborts, so the snapshot still contains the cycle;
* **site crash** — the ``crashes`` counter probe fires before the
  crash releases the site's locks;
* **abort cascade** — ``flight_cascade_threshold`` aborts within a
  single dispatched event (the cascade worklist runs synchronously, so
  per-event abort count is cascade depth).

Dumps stop after ``max_dumps`` anomalies so a pathological run cannot
fill the disk.
"""

from __future__ import annotations

import json
import os
from collections import deque

from repro.io.dot import waits_for_to_dot
from repro.sim.observe.probes import ProbeSink
from repro.sim.observe.trace import iter_formatted

__all__ = ["FlightRecorder"]


class FlightRecorder(ProbeSink):
    """Dump the recent past when the simulation hits an anomaly."""

    def __init__(
        self,
        out_dir: str,
        last_n: int = 256,
        cascade_threshold: int = 25,
        max_dumps: int = 16,
    ):
        self.out_dir = out_dir
        self.ring: deque = deque(maxlen=last_n)
        self.cascade_threshold = cascade_threshold
        self.max_dumps = max_dumps
        #: one dict per dump written: reason, time, events, dot paths.
        self.dumps: list[dict] = []
        self._cascade = 0
        self._sim = None

    def bind(self, sim) -> None:
        self._sim = sim
        os.makedirs(self.out_dir, exist_ok=True)

    def on_probe(self, kind: str, time: float, args: tuple) -> None:
        self.ring.append((time, kind, args))
        if kind == "event":
            self._cascade = 0
        elif kind == "abort":
            self._cascade += 1
            if self._cascade == self.cascade_threshold:
                self.dump("abort-cascade")
        elif kind == "counter":
            name = args[0]
            if name == "detected":
                self.dump("deadlock-detected")
            elif name == "crashes":
                self.dump("site-crash")

    def finalize(self, sim, result) -> None:
        pass

    def dump(self, reason: str) -> dict | None:
        """Write one dump pair; returns its manifest entry (or None
        once ``max_dumps`` is reached)."""
        if len(self.dumps) >= self.max_dumps:
            return None
        sim = self._sim
        stem = os.path.join(
            self.out_dir, f"flight-{len(self.dumps):03d}-{reason}"
        )
        events_path = stem + ".jsonl"
        with open(events_path, "w", encoding="utf-8") as fh:
            for record in iter_formatted(
                self.ring, sim._entity_names, sim._site_names
            ):
                fh.write(json.dumps(record, separators=(",", ":")))
                fh.write("\n")
        wf = sim._waits_for
        edges = wf.as_sets() if wf is not None else sim._wait_for_edges()
        dot_path = stem + ".dot"
        with open(dot_path, "w", encoding="utf-8") as fh:
            fh.write(waits_for_to_dot(edges))
        entry = {
            "reason": reason,
            "time": sim._now,
            "events": events_path,
            "waits_for": dot_path,
        }
        self.dumps.append(entry)
        return entry
