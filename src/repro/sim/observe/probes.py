"""Probe configuration and the attach-time interposition machinery.

The observability layer is **zero-cost when disabled** by construction:
no hot-path code ever tests an "is tracing on?" flag. Instead, every
probe is installed by *interposition* when — and only when — an
:class:`ObserverHub` attaches to a simulator:

* the run loop's per-event seam: :class:`~repro.sim.events.
  HandlerRegistry` deliberately has no ``__slots__`` so an instance
  attribute can shadow ``dispatch``; the hub installs a wrapper that
  emits an ``event`` probe and then routes to the handler table;
* lock-cell mutations: every :class:`~repro.sim.locks.SiteLockManager`
  already carries an (optional) observer consulted at each grant /
  wait / release; the hub replaces it with a tee that forwards to the
  original observer (the incremental waits-for graph, when present)
  and then emits ``wait``/``unwait``/``hold``/``unhold`` probes;
* result counters: the hub swaps ``sim.result.__class__`` to a
  subclass whose ``__setattr__`` emits a ``counter`` probe for the
  monitored cause/health counters (wounds, deaths, timeouts, detected,
  crash/unavailable/commit aborts, crashes, waits, commit messages,
  prepared blocks) — every one of those counters is incremented by the
  runtime immediately *before* the abort it explains, which is what
  lets the tracer attribute abort causes with a LIFO stack;
* transaction lifecycle: the hub shadows the instance methods the
  runtime and its subsystems invoke through attribute lookup
  (``add_transaction``, ``mark_prepared``, ``finish_commit``,
  ``_abort_task``) with wrappers emitting ``arrive`` / ``prepared`` /
  ``commit`` / ``abort`` probes;
* scheduling boundaries: ``sim.schedule`` is likewise an instance
  method invoked through attribute lookup by every send site (the
  issue/op fan-out, commit protocols, failure injection), so the hub
  shadows it with a wrapper emitting a ``sched`` probe — the payload
  at *send* time. Paired with the later ``event`` dispatch probe this
  exposes every service interval and network hop (queueing/fan-out
  boundaries) without any hot-path test in the disabled mode.

When 1-in-N transaction sampling is requested (``sample_every > 1``),
the hub withholds the per-transaction probes of unsampled
transactions from the *sample-aware* sinks (the tracer and the
attribution engine) while global probes — counters, detector and
crash events — and every ``abort`` / ``prepared`` / ``commit`` probe
still flow, keeping the LIFO abort-cause pairing and
blocked-on-coordinator classification exact. Whole-stream consumers
(the metrics sampler, the flight recorder, custom sinks) always see
everything.

With ``config.observe`` unset, none of this exists and the simulator
executes byte-for-byte the same instructions as before the layer was
added — the transparency suite pins digest equality for the enabled
mode too, since probes only *observe* (they draw no randomness,
schedule no events, and mutate no simulation state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.metrics import SimulationResult

__all__ = ["ObserveConfig", "ObserverHub", "ProbeSink"]


@dataclass(frozen=True)
class ObserveConfig:
    """What to observe during a run.

    Attributes:
        trace: keep a structured event trace (bounded ring buffer).
        trace_capacity: ring-buffer size of the tracer; older records
            are dropped once the buffer is full.
        metrics_window: width (in simulated time) of the metrics
            sampler's aggregation windows; 0 disables the sampler.
        flight_recorder: directory for flight-recorder dumps; None
            disables the recorder.
        flight_events: how many trailing probe records a dump retains.
        flight_cascade_threshold: aborts within a single dispatched
            event that count as an abort cascade worth dumping.
        attribution: run the latency-attribution engine
            (:mod:`repro.sim.observe.attribution`); the run's result
            gains an ``attribution`` block.
        sample_every: 1-in-N transaction sampling for the sample-aware
            sinks (tracer, attribution) — 1 observes everything.
            Sampled attribution is marked as an estimate.
    """

    trace: bool = False
    trace_capacity: int = 65536
    metrics_window: float = 0.0
    flight_recorder: str | None = None
    flight_events: int = 256
    flight_cascade_threshold: int = 25
    attribution: bool = False
    sample_every: int = 1

    def __post_init__(self):
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any consumer is requested at all."""
        return bool(
            self.trace
            or self.metrics_window > 0
            or self.flight_recorder
            or self.attribution
        )


class ProbeSink:
    """Interface of a probe consumer.

    Probes arrive as ``on_probe(kind, time, args)`` with ``kind`` one
    of:

    ========== ============================== ==========================
    kind       args                           meaning
    ========== ============================== ==========================
    event      the raw event payload tuple    an event left the queue
    sched      the raw event payload tuple    an event was scheduled
                                              (probe time = send time)
    wait       (sid, eid, txn)                txn queued at a lock cell
    unwait     (sid, eid, txn)                txn left the queue
    hold       (sid, eid, txn)                txn became a lock holder
    unhold     (sid, eid, txn)                txn released the cell
    counter    (name, new_value)              a result counter changed
    arrive     (txn,)                         open-system arrival
    prepared   (txn,)                         txn entered PREPARED
    commit     (txn,)                         txn committed
    abort      (txn, attempt)                 txn aborted this attempt
    ========== ============================== ==========================

    Under a network model the ``event``/``sched`` payloads include the
    retransmission channel's wrapper events (:data:`NET_EVENT_KINDS`);
    the protocol payload a ``net_deliver`` carries is dispatched — and
    probed — as its own event at delivery time.
    """

    def bind(self, sim) -> None:
        """Called once at attach time with the simulator."""

    def on_probe(self, kind: str, time: float, args: tuple) -> None:
        raise NotImplementedError

    def finalize(self, sim, result: SimulationResult) -> None:
        """Called once after the run loop drains."""


#: Result counters whose writes emit ``counter`` probes. Each abort
#: *cause* counter is bumped by the runtime immediately before the
#: abort it explains, so the probe stream carries enough order to
#: attribute causes.
MONITORED_COUNTERS = frozenset({
    "wounds", "deaths", "timeouts", "detected", "crash_aborts",
    "unavailable_aborts", "commit_aborts", "crashes", "waits",
    "commit_messages", "prepared_blocks",
    # Network-chaos ledger counters: each increment point in the
    # retransmission channel emits a probe, so a traced run's counter
    # stream replays the exact ledger history (``net_inflight`` is
    # derivable as sent - delivered - dropped - duplicates and is not
    # monitored — its churn would double the counter traffic).
    "net_sent", "net_delivered", "net_dropped", "net_duplicates",
    "net_retransmits", "net_acks", "partitions",
    # Durability counters: forces completing, storage faults at
    # crashes, replays, and in-doubt resolutions. The off path (no
    # durability model) never writes them, so enabling observability
    # on a durability-free run emits not one extra probe.
    "log_forces", "tail_losses", "torn_writes", "amnesia_wipes",
    "log_replays", "in_doubt_resolved",
})

#: Event kinds owned by the network-chaos layer. ``net_deliver``
#: wraps a logical send's first copy (its payload slot carries the
#: inner message); ``net_redeliver`` is a retransmitted or duplicated
#: copy; ``net_ack``/``net_retransmit`` are the ack path and the
#: backoff timer chain; the partition kinds mark episode edges. All
#: are *global*: they stay out of ``EVENT_TXN_ARG`` (the wrapper's
#: second slot is a channel sequence number, not a transaction id) and
#: are therefore never sampled out — the per-transaction view of a
#: wrapped message comes from the inner event probe the channel emits
#: when it dispatches the payload at delivery time.
NET_EVENT_KINDS = frozenset({
    "net_deliver", "net_redeliver", "net_ack", "net_retransmit",
    "net_partition_start", "net_partition_stop",
})

#: payload index of the transaction id per ``event``/``sched`` payload
#: kind; kinds absent from the table (``detect``, ``arrive``,
#: ``site_crash``/``site_recover``, the ``NET_EVENT_KINDS``) are
#: global and never sampled out.
EVENT_TXN_ARG = {
    "begin": 1, "issue": 1, "op_done": 1, "restart": 1, "timeout": 1,
    "replica_req": 1, "cm_prepare": 1, "cm_vote": 1, "cm_retry": 1,
    "cm_release": 1, "cm_learn": 1, "cm_state": 1,
    "cm_inquire": 1, "cm_status": 1, "cm_refuse": 1,
    "dur_flush": 1, "dur_requery": 1,
}

#: probe kinds delivered to sample-aware sinks for *every*
#: transaction even under 1-in-N sampling: counters and aborts keep
#: the LIFO cause pairing exact; prepared/commit keep the
#: blocked-on-coordinator holder classification exact.
_SAMPLE_ALWAYS = frozenset({"counter", "abort", "prepared", "commit"})

_CELL_PROBES = frozenset({"wait", "unwait", "hold", "unhold"})


def _sample_keep(kind: str, args: tuple, every: int) -> bool:
    """Whether a probe reaches the sample-aware sinks (1-in-N)."""
    if kind in _SAMPLE_ALWAYS:
        return True
    if kind == "event" or kind == "sched":
        idx = EVENT_TXN_ARG.get(args[0])
        return idx is None or args[idx] % every == 0
    if kind == "arrive":
        return args[0] % every == 0
    return args[2] % every == 0  # cell probes: (sid, eid, txn)


class _CountedResult(SimulationResult):
    """A result whose monitored counter writes emit probes.

    Installed by ``result.__class__`` swap at attach time and swapped
    back at finalize (so sweep workers can pickle the result).
    """

    _probe = None  # set per instance at attach

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name in MONITORED_COUNTERS and self._probe is not None:
            self._probe(name, value)


class ObserverHub:
    """Builds the configured sinks and interposes them on a simulator.

    Construction wires nothing; :meth:`attach` installs every probe.
    Extra custom sinks may be passed alongside the configured ones::

        hub = ObserverHub(sim, ObserveConfig(trace=True), [my_sink])
        hub.attach()
        sim.observe = hub   # so run() finalizes it
    """

    def __init__(self, sim, config: ObserveConfig, extra_sinks=()):
        # Local imports: the consumers import io/dot machinery the hot
        # path never needs, and keeping them here keeps the probes
        # module dependency-light.
        from repro.sim.observe.attribution import LatencyAttributor
        from repro.sim.observe.flight import FlightRecorder
        from repro.sim.observe.sampler import MetricsSampler
        from repro.sim.observe.trace import EventTracer

        self.sim = sim
        self.config = config
        self.tracer: EventTracer | None = (
            EventTracer(config.trace_capacity) if config.trace else None
        )
        self.sampler: MetricsSampler | None = (
            MetricsSampler(config.metrics_window, sim.config.warmup_time)
            if config.metrics_window > 0
            else None
        )
        self.flight: FlightRecorder | None = (
            FlightRecorder(
                config.flight_recorder,
                last_n=config.flight_events,
                cascade_threshold=config.flight_cascade_threshold,
            )
            if config.flight_recorder
            else None
        )
        self.attribution: LatencyAttributor | None = (
            LatencyAttributor(sample_every=config.sample_every)
            if config.attribution
            else None
        )
        self._sinks: list[ProbeSink] = [
            sink
            for sink in (
                self.tracer, self.sampler, self.flight, self.attribution
            )
            if sink is not None
        ]
        self._sinks.extend(extra_sinks)
        # 1-in-N sampling: the tracer and the attribution engine are
        # sample-aware; whole-stream sinks always see everything.
        self._every = config.sample_every
        if self._every > 1:
            aware = [
                s
                for s in (self.tracer, self.attribution)
                if s is not None
            ]
            self._full: tuple = tuple(
                s for s in self._sinks if s not in aware
            )
            self._sampled: tuple = tuple(aware)
        else:
            self._full = tuple(self._sinks)
            self._sampled = ()
        self._attached = False

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def _emit(self, kind: str, args: tuple) -> None:
        t = self.sim._now
        for sink in self._full:
            sink.on_probe(kind, t, args)
        if self._sampled and _sample_keep(kind, args, self._every):
            for sink in self._sampled:
                sink.on_probe(kind, t, args)

    def _on_counter(self, name: str, value) -> None:
        self._emit("counter", (name, value))

    # ------------------------------------------------------------------
    # interposition
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Install every probe on the simulator (idempotent)."""
        if self._attached:
            return
        self._attached = True
        sim = self.sim
        for sink in self._sinks:
            sink.bind(sim)
        sinks = tuple(self._sinks)

        # 1. Per-event probe through the registry's dispatch seam.
        registry = sim._registry
        handlers = registry._handlers  # shared dict; grows in place

        if not self._sampled:
            def dispatch(
                payload, _handlers=handlers, _sinks=sinks, _sim=sim
            ):
                now = _sim._now
                for sink in _sinks:
                    sink.on_probe("event", now, payload)
                _handlers[payload[0]](*payload[1:])
        else:
            def dispatch(
                payload, _handlers=handlers, _full=self._full,
                _sampled=self._sampled, _sim=sim, _every=self._every,
                _txn_arg=EVENT_TXN_ARG.get,
            ):
                now = _sim._now
                for sink in _full:
                    sink.on_probe("event", now, payload)
                idx = _txn_arg(payload[0])
                if idx is None or payload[idx] % _every == 0:
                    for sink in _sampled:
                        sink.on_probe("event", now, payload)
                _handlers[payload[0]](*payload[1:])

        registry.dispatch = dispatch

        # 1b. Scheduling probes: ``sim.schedule`` is invoked through
        # attribute lookup by every send site, so an instance-attribute
        # shadow exposes each payload at *send* time — the opening
        # boundary of every service interval and network hop.
        orig_schedule = sim.schedule

        def schedule(
            delay, payload, _orig=orig_schedule, _emit=self._emit
        ):
            _emit("sched", payload)
            _orig(delay, payload)

        sim.schedule = schedule

        # 2. Lock-cell probes: tee in front of each site's observer.
        for sid, site in enumerate(sim._site_list):
            site.observer = _TeeCellObserver(self, sid, site.observer)

        # 3. Counter probes via the result-class swap.
        result = sim.result
        result.__class__ = _CountedResult
        object.__setattr__(result, "_probe", self._on_counter)

        # 4. Lifecycle probes via instance-method shadowing. All four
        # originals are invoked through attribute lookup at call time
        # (by the commit protocols, the arrival process, and the abort
        # cascade driver), so shadowing intercepts every call site.
        emit = self._emit

        orig_add = sim.add_transaction

        def add_transaction(txn):
            index = orig_add(txn)
            emit("arrive", (index,))
            return index

        sim.add_transaction = add_transaction

        orig_prepared = sim.mark_prepared

        def mark_prepared(inst):
            orig_prepared(inst)
            emit("prepared", (inst.index,))

        sim.mark_prepared = mark_prepared

        orig_commit = sim.finish_commit

        def finish_commit(inst):
            orig_commit(inst)
            emit("commit", (inst.index,))

        sim.finish_commit = finish_commit

        # _abort_task is a generator function; the runtime drives a
        # freshly created generator immediately (LIFO cascade), and
        # the task body aborts iff the instance is still RUNNING at
        # creation — so emitting here, under the same guard, reports
        # exactly the aborts that happen.
        from repro.sim.runtime import _RUNNING

        orig_abort_task = sim._abort_task

        def _abort_task(inst):
            if inst.status == _RUNNING:
                emit("abort", (inst.index, inst.attempt))
            return orig_abort_task(inst)

        sim._abort_task = _abort_task

    def finalize(self) -> None:
        """Flush sinks onto the result and restore picklability."""
        sim = self.sim
        result = sim.result
        for sink in self._sinks:
            sink.finalize(sim, result)
        if result.__class__ is _CountedResult:
            if "_probe" in result.__dict__:
                del result.__dict__["_probe"]
            result.__class__ = SimulationResult


class _TeeCellObserver:
    """Forwards cell mutations to the original observer, then probes.

    The original observer (the incremental waits-for graph's per-site
    adapter) runs first so every probe fires against fully updated
    graph state.
    """

    __slots__ = ("_hub", "_sid", "_inner")

    def __init__(self, hub: ObserverHub, sid: int, inner):
        self._hub = hub
        self._sid = sid
        self._inner = inner

    def wait(self, entity: int, txn: int) -> None:
        inner = self._inner
        if inner is not None:
            inner.wait(entity, txn)
        self._hub._emit("wait", (self._sid, entity, txn))

    def unwait(self, entity: int, txn: int) -> None:
        inner = self._inner
        if inner is not None:
            inner.unwait(entity, txn)
        self._hub._emit("unwait", (self._sid, entity, txn))

    def hold(self, entity: int, txn: int) -> None:
        inner = self._inner
        if inner is not None:
            inner.hold(entity, txn)
        self._hub._emit("hold", (self._sid, entity, txn))

    def unhold(self, entity: int, txn: int) -> None:
        inner = self._inner
        if inner is not None:
            inner.unhold(entity, txn)
        self._hub._emit("unhold", (self._sid, entity, txn))
