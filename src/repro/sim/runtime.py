"""The distributed lock-scheduler simulator.

Executes a :class:`repro.core.TransactionSystem` as a discrete-event
simulation: every transaction is a client walking its partial order,
issuing each operation to the site of its entity once all predecessors
completed. Because transactions are partial orders, a client can have
several operations in flight at different sites — including several
blocked lock requests — which is exactly the distributed behaviour the
paper's model captures and centralized simulators miss.

Lock conflicts are resolved by the configured policy
(:mod:`repro.sim.policies`); aborted transactions release their locks
and restart from scratch after a delay, keeping their original
timestamp (so wound-wait and wait-die are livelock-free).

The committed operations form a trace that replays as a legal
:class:`repro.core.Schedule`; the runtime closes the loop with the
static theory by testing that trace for serializability with the same
D(S) machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.operations import OpKind
from repro.core.schedule import Schedule
from repro.core.serialization import is_serializable
from repro.core.system import GlobalNode, TransactionSystem
from repro.sim.events import EventQueue
from repro.sim.locks import SiteLockManager
from repro.sim.metrics import SimulationResult
from repro.sim.policies import Decision, Policy, make_policy
from repro.util.bitset import bits_of
from repro.util.graphs import find_cycle

__all__ = ["SimulationConfig", "Simulator", "simulate"]

_RUNNING = "running"
_COMMITTED = "committed"
_ABORTED = "aborted"


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of a run.

    Attributes:
        service_time: simulated duration of one operation at a site.
        network_delay: extra latency charged when an operation depends
            on a predecessor that completed at a *different* site (the
            cross-site coordination message of the distributed model).
        arrival_spread: transactions start uniformly in
            [0, arrival_spread].
        restart_delay: wait before an aborted transaction retries.
        restart_jitter: extra uniform jitter added to restarts (avoids
            lock-step retry storms).
        timeout: lock-wait deadline for the timeout policy.
        detection_interval: period of the wait-for-graph scan for the
            detection policy.
        max_time: hard stop for the simulated clock.
        max_events: hard stop on processed events.
        seed: RNG seed (arrivals and jitter).
    """

    service_time: float = 1.0
    network_delay: float = 0.0
    arrival_spread: float = 2.0
    restart_delay: float = 4.0
    restart_jitter: float = 2.0
    timeout: float = 12.0
    detection_interval: float = 8.0
    max_time: float = 100_000.0
    max_events: int = 1_000_000
    seed: int = 0


class _Instance:
    """Mutable execution state of one transaction."""

    __slots__ = (
        "index", "status", "timestamp", "attempt", "done", "issued",
        "waiting", "commit_time", "start_time",
    )

    def __init__(self, index: int):
        self.index = index
        self.status = _RUNNING
        self.timestamp = 0.0  # first-start time; kept across restarts
        self.attempt = 0
        self.done = 0  # bitmask of completed nodes
        self.issued = 0  # bitmask of issued nodes
        self.waiting: dict[str, float] = {}  # entity -> wait start time
        self.commit_time = -1.0
        self.start_time = 0.0


class Simulator:
    """One simulation run over a system, policy, and configuration."""

    def __init__(
        self,
        system: TransactionSystem,
        policy: Policy | str = "blocking",
        config: SimulationConfig | None = None,
    ):
        self.system = system
        self.policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)
        self._queue = EventQueue()
        self._sites = {
            site: SiteLockManager(site) for site in system.schema.sites
        }
        self._instances = [_Instance(i) for i in range(len(system))]
        self._now = 0.0
        self._events_processed = 0
        self._trace: list[tuple[float, int, int, int, int]] = []
        self._trace_seq = 0
        self.result = SimulationResult(
            policy=self.policy.name, total=len(system)
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _site_for_entity(self, entity: str) -> SiteLockManager:
        return self._sites[self.system.schema.site_of(entity)]

    def _push(self, delay: float, payload: tuple) -> None:
        self._queue.push(self._now + delay, payload)

    def _ready_nodes(self, inst: _Instance) -> list[int]:
        t = self.system[inst.index]
        pending = t.dag.all_nodes_mask() & ~inst.issued
        return [
            u
            for u in bits_of(pending)
            if t.dag.ancestors(u) & ~inst.done == 0
        ]

    # ------------------------------------------------------------------
    # issuing operations
    # ------------------------------------------------------------------

    def _cross_site_delay(self, txn: int, node: int) -> float:
        """Network latency when a direct predecessor ran at another
        site."""
        if self.config.network_delay <= 0:
            return 0.0
        t = self.system[txn]
        site = self.system.schema.site_of(t.ops[node].entity)
        for pred in bits_of(t.dag.predecessors(node)):
            pred_site = self.system.schema.site_of(t.ops[pred].entity)
            if pred_site != site:
                return self.config.network_delay
        return 0.0

    def _issue_ready(self, inst: _Instance) -> None:
        if inst.status != _RUNNING:
            return
        for node in self._ready_nodes(inst):
            inst.issued |= 1 << node
            delay = self._cross_site_delay(inst.index, node)
            if delay > 0:
                self._push(
                    delay, ("issue", inst.index, node, inst.attempt)
                )
                continue
            self._issue_one(inst, node)
            if inst.status != _RUNNING:
                return  # the request aborted us (wait-die)

    def _issue_one(self, inst: _Instance, node: int) -> None:
        op = self.system[inst.index].ops[node]
        if op.kind is OpKind.LOCK:
            self._request_lock(inst, node)
        else:
            self._push(
                self.config.service_time,
                ("op_done", inst.index, node, inst.attempt),
            )

    def _on_issue(self, txn: int, node: int, attempt: int) -> None:
        """A cross-site coordination message arrived: issue the op."""
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return
        self._issue_one(inst, node)

    def _request_lock(self, inst: _Instance, node: int) -> None:
        op = self.system[inst.index].ops[node]
        site = self._site_for_entity(op.entity)
        if site.request(inst.index, op.entity):
            self._push(
                self.config.service_time,
                ("op_done", inst.index, node, inst.attempt),
            )
            return
        holder = site.holder(op.entity)
        assert holder is not None and holder != inst.index
        decision = self.policy.on_conflict(
            inst.timestamp, self._instances[holder].timestamp
        )
        if decision is Decision.ABORT_SELF:
            site.cancel_wait(inst.index, op.entity)
            self.result.deaths += 1
            self._abort(inst)
            return
        # WAIT and ABORT_HOLDER both leave the requester in the queue.
        inst.waiting[op.entity] = self._now
        self.result.waits += 1
        if decision is Decision.ABORT_HOLDER:
            self.result.wounds += 1
            self._abort(self._instances[holder])
            return
        if self.policy.uses_timeout:
            self._push(
                self.config.timeout,
                ("timeout", inst.index, node, inst.attempt),
            )

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_grant(self, txn: int, entity: str) -> None:
        """A queued request of ``txn`` was granted by a release.

        Besides waking the new holder, the remaining waiters re-run the
        policy's conflict rule against the *new* holder: under
        wound-wait an old transaction must not linger behind a young one
        that just inherited the lock (it wounds it), and under wait-die
        a young waiter behind a newly-granted older holder dies. Without
        this re-evaluation the RSL schemes lose their deadlock-freedom
        guarantee.
        """
        inst = self._instances[txn]
        if inst.status != _RUNNING or entity not in inst.waiting:
            # Defensive: aborts remove waiters from the queues, so a
            # stale grant indicates a bookkeeping bug; hand the lock back
            # rather than wedging the site.
            site = self._site_for_entity(entity)
            granted = site.release(txn, entity)
            if granted is not None:
                self._on_grant(granted, entity)
            return
        self.result.wait_time += self._now - inst.waiting.pop(entity)
        node = self.system[txn].lock_node(entity)
        self._push(
            self.config.service_time, ("op_done", txn, node, inst.attempt)
        )
        self._reevaluate_waiters(entity, inst)

    def _reevaluate_waiters(self, entity: str, holder: _Instance) -> None:
        site = self._site_for_entity(entity)
        for waiter in list(site.waiters(entity)):
            if holder.status != _RUNNING:
                return  # the holder was wounded; releases re-grant
            w_inst = self._instances[waiter]
            decision = self.policy.on_conflict(
                w_inst.timestamp, holder.timestamp
            )
            if decision is Decision.ABORT_HOLDER:
                self.result.wounds += 1
                self._abort(holder)
                return
            if decision is Decision.ABORT_SELF:
                self.result.deaths += 1
                self._abort(w_inst)

    def _on_op_done(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _RUNNING or inst.attempt != attempt:
            return  # stale event from an aborted attempt
        t = self.system[txn]
        op = t.ops[node]
        inst.done |= 1 << node
        self._trace.append((self._now, self._trace_seq, txn, node, attempt))
        self._trace_seq += 1
        if op.kind is OpKind.UNLOCK:
            site = self._site_for_entity(op.entity)
            granted = site.release(txn, op.entity)
            if granted is not None:
                self._on_grant(granted, op.entity)
        if inst.done == t.dag.all_nodes_mask():
            inst.status = _COMMITTED
            inst.commit_time = self._now
            self.result.committed += 1
        else:
            self._issue_ready(inst)

    def _abort(self, inst: _Instance) -> None:
        """Release everything, forget progress, schedule a restart."""
        if inst.status != _RUNNING:
            return
        inst.status = _ABORTED
        self.result.aborts += 1
        txn = inst.index
        for entity in list(inst.waiting):
            self._site_for_entity(entity).cancel_wait(txn, entity)
        inst.waiting.clear()
        for site in self._sites.values():
            for entity, granted in site.release_all(txn):
                if granted is not None:
                    self._on_grant(granted, entity)
        inst.done = 0
        inst.issued = 0
        inst.attempt += 1
        delay = self.config.restart_delay + self._rng.uniform(
            0, self.config.restart_jitter
        )
        self._push(delay, ("restart", txn, inst.attempt))

    def _on_restart(self, txn: int, attempt: int) -> None:
        inst = self._instances[txn]
        if inst.status != _ABORTED or inst.attempt != attempt:
            return
        inst.status = _RUNNING
        self._issue_ready(inst)

    def _on_timeout(self, txn: int, node: int, attempt: int) -> None:
        inst = self._instances[txn]
        entity = self.system[txn].ops[node].entity
        if (
            inst.status == _RUNNING
            and inst.attempt == attempt
            and entity in inst.waiting
        ):
            self.result.timeouts += 1
            self._abort(inst)

    # ------------------------------------------------------------------
    # deadlock machinery
    # ------------------------------------------------------------------

    def _wait_for_edges(self) -> dict[int, set[int]]:
        """Waits-for graph: waiter -> holder, one edge per blocked
        request."""
        edges: dict[int, set[int]] = {}
        for inst in self._instances:
            if inst.status != _RUNNING:
                continue
            for entity in inst.waiting:
                holder = self._site_for_entity(entity).holder(entity)
                if holder is not None:
                    edges.setdefault(inst.index, set()).add(holder)
        return edges

    def _on_detect(self) -> None:
        edges = self._wait_for_edges()
        cycle = find_cycle(list(edges), lambda u: edges.get(u, ()))
        if cycle:
            victim = max(cycle, key=lambda i: self._instances[i].timestamp)
            self.result.detected += 1
            self._abort(self._instances[victim])
        if any(i.status != _COMMITTED for i in self._instances):
            self._push(self.config.detection_interval, ("detect",))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result record."""
        config = self.config
        for inst in self._instances:
            start = self._rng.uniform(0, config.arrival_spread)
            inst.timestamp = start
            inst.start_time = start
            self._queue.push(start, ("begin", inst.index))
        if self.policy.uses_detection:
            self._queue.push(config.detection_interval, ("detect",))

        while self._queue:
            time, payload = self._queue.pop()
            if time > config.max_time:
                self.result.truncated = True
                break
            self._now = time
            self._events_processed += 1
            if self._events_processed > config.max_events:
                self.result.truncated = True
                break
            kind = payload[0]
            if kind == "begin":
                self._issue_ready(self._instances[payload[1]])
            elif kind == "issue":
                self._on_issue(payload[1], payload[2], payload[3])
            elif kind == "op_done":
                self._on_op_done(payload[1], payload[2], payload[3])
            elif kind == "restart":
                self._on_restart(payload[1], payload[2])
            elif kind == "timeout":
                self._on_timeout(payload[1], payload[2], payload[3])
            elif kind == "detect":
                self._on_detect()
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event {payload!r}")

        self.result.end_time = self._now
        if self.result.committed < len(self.system):
            if not self._queue and not self.result.truncated:
                self.result.deadlocked = True
                edges = self._wait_for_edges()
                cycle = find_cycle(list(edges), lambda u: edges.get(u, ()))
                if cycle:
                    self.result.deadlock_cycle = tuple(cycle)
        self.result.latencies = [
            (inst.commit_time - inst.start_time)
            if inst.commit_time >= 0
            else -1.0
            for inst in self._instances
        ]
        self.result.serializable = self._check_serializability()
        return self.result

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------

    def _final_steps(self, committed_only: bool) -> list[GlobalNode]:
        steps = []
        for _time, _seq, txn, node, attempt in sorted(self._trace):
            inst = self._instances[txn]
            if committed_only and inst.status != _COMMITTED:
                continue
            if inst.status == _ABORTED:
                continue
            if attempt == inst.attempt:
                steps.append(GlobalNode(txn, node))
        return steps

    def _check_serializability(self) -> bool | None:
        """Replay the final attempts' operations as a Schedule and test
        D(S').

        Includes the partial progress of still-running transactions:
        their completed operations are part of the history too (this is
        what makes the Lemma 1 / D(S') connection exact at deadlocks).
        """
        try:
            schedule = Schedule(self.system, self._final_steps(False))
        except Exception:  # pragma: no cover - indicates a runtime bug
            return False
        return is_serializable(schedule)

    def committed_schedule(self) -> Schedule:
        """The committed trace as a validated Schedule."""
        return Schedule(self.system, self._final_steps(True))


def simulate(
    system: TransactionSystem,
    policy: Policy | str = "blocking",
    config: SimulationConfig | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(system, policy, config).run()


def find_deadlocking_seed(
    system: TransactionSystem,
    max_seeds: int = 200,
    config: SimulationConfig | None = None,
) -> tuple[int, SimulationResult] | None:
    """Search arrival orders for one that wedges the blocking scheduler.

    A cheap dynamic fuzzer: statically refuted systems usually wedge
    within a few seeds, while certified systems never do (the property
    tests rely on exactly that asymmetry).

    Args:
        system: the system to stress.
        max_seeds: how many seeds to try.
        config: base configuration; its seed field is overridden.

    Returns:
        ``(seed, result)`` for the first deadlocking run, or None.
    """
    base = config or SimulationConfig()
    for seed in range(max_seeds):
        candidate = SimulationConfig(
            service_time=base.service_time,
            network_delay=base.network_delay,
            arrival_spread=base.arrival_spread,
            restart_delay=base.restart_delay,
            restart_jitter=base.restart_jitter,
            timeout=base.timeout,
            detection_interval=base.detection_interval,
            max_time=base.max_time,
            max_events=base.max_events,
            seed=seed,
        )
        result = simulate(system, "blocking", candidate)
        if result.deadlocked:
            return seed, result
    return None
